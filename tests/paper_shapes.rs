//! Scaled-down assertions of the paper's key experimental shapes. These are
//! the invariants EXPERIMENTS.md reports at full scale; here they run at
//! smoke scale so the suite stays fast while still guarding the claims.

use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::analysis;
use adamel_data::{
    make_mel_split, monitor_incremental, EntityType, MonitorConfig, MonitorWorld, MusicConfig,
    MusicWorld, Scenario, SplitCounts,
};
use adamel_schema::FeatureMode;

/// Fig. 8's collapse: λ = 1 removes all supervision from AdaMEL-zero.
#[test]
fn lambda_one_collapses_adamel_zero() {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 5);
    let records = world.records_of(EntityType::Artist, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        1,
    );
    let run = |lambda: f32| {
        let cfg = AdamelConfig::tiny().with_lambda(lambda);
        let mut model = AdamelModel::new(cfg, world.schema().clone());
        fit(&mut model, Variant::Zero, &split.train, Some(&split.test), None);
        evaluate_prauc(&model, &split.test)
    };
    let tuned = run(0.98);
    let collapsed = run(1.0);
    assert!(
        tuned > collapsed + 0.1,
        "λ=0.98 ({tuned:.4}) should clearly beat λ=1 ({collapsed:.4})"
    );
}

/// Table 6's conclusion: both contrastive features beat either alone.
#[test]
fn contrastive_ablation_favors_both() {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 5);
    let records = world.records_of(EntityType::Artist, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        1,
    );
    let run = |mode: FeatureMode| {
        let cfg = AdamelConfig::tiny().with_feature_mode(mode);
        let mut model = AdamelModel::new(cfg, world.schema().clone());
        fit(&mut model, Variant::Base, &split.train, None, None);
        evaluate_prauc(&model, &split.test)
    };
    let both = run(FeatureMode::Both);
    let shared = run(FeatureMode::SharedOnly);
    let unique = run(FeatureMode::UniqueOnly);
    // Loose at smoke scale: both must not lose badly to either alone.
    assert!(
        both > shared.max(unique) - 0.05,
        "both {both:.4} vs shared {shared:.4} / unique {unique:.4}"
    );
}

/// Fig. 11's C2 structure: exactly the five target-only attributes.
#[test]
fn monitor_has_five_target_only_attributes() {
    let world = MonitorWorld::generate(&MonitorConfig::default(), 3);
    let schema = world.schema().clone();
    let split = make_mel_split(
        &world.records_for(None),
        "page_title",
        &world.seen_sources(),
        &world.unseen_sources(),
        Scenario::Overlapping,
        &SplitCounts::default(),
        1,
    );
    let target_only = analysis::target_only_attributes(&split.train, &split.test, &schema);
    assert_eq!(target_only.len(), 5, "target-only attributes: {target_only:?}");
}

/// Fig. 12's C3 structure: the top prod_type tokens of the two domains are
/// (nearly) disjoint.
#[test]
fn prod_type_distributions_shift_between_domains() {
    let world = MonitorWorld::generate(&MonitorConfig::default(), 3);
    let split = make_mel_split(
        &world.records_for(None),
        "page_title",
        &world.seen_sources(),
        &world.unseen_sources(),
        Scenario::Disjoint,
        &SplitCounts::default(),
        1,
    );
    let src = analysis::top_tokens(&split.train, "prod_type", 5);
    let tgt = analysis::top_tokens(&split.test, "prod_type", 5);
    let src_tokens: std::collections::HashSet<&str> = src.iter().map(|(t, _)| t.as_str()).collect();
    let overlap = tgt.iter().filter(|(t, _)| src_tokens.contains(t.as_str())).count();
    assert!(overlap <= 1, "top-5 prod_type overlap {overlap} too high");
}

/// Fig. 9's stability: re-adapting AdaMEL-hyb stays above 0.5 PRAUC at
/// every step of the incremental stream.
#[test]
fn incremental_adaptation_stays_stable() {
    let world = MonitorWorld::generate(&MonitorConfig::tiny(), 5);
    let stream = monitor_incremental(&world, 100, 30, 20, 4, 2, 1);
    let cfg = AdamelConfig::tiny();
    for step in &stream.steps {
        let mut model = AdamelModel::new(cfg.clone(), world.schema().clone());
        fit(&mut model, Variant::Hyb, &stream.train, Some(&step.target), Some(&stream.support));
        let scores = model.predict(&step.target.pairs);
        let labels: Vec<bool> = step.target.pairs.iter().map(|p| p.ground_truth()).collect();
        let prauc = adamel_metrics::pr_auc(&scores, &labels);
        assert!(prauc > 0.5, "PRAUC {prauc:.4} collapsed at {} sources", step.num_sources);
    }
}

/// §4.5 / §5.5: the AdaMEL parameter budget is orders of magnitude below
/// EntityMatcher's at matched text dimensions.
#[test]
fn adamel_is_much_smaller_than_entitymatcher() {
    use adamel_baselines::{BaselineConfig, EntityMatcher, EntityMatcherModel};
    let world = MonitorWorld::generate(&MonitorConfig::tiny(), 4);
    let schema = world.schema().clone();
    let adamel = AdamelModel::new(AdamelConfig::default(), schema.clone());
    let em = EntityMatcher::new(schema, BaselineConfig::default());
    assert!(
        em.num_parameters() > 3 * adamel.num_parameters(),
        "EntityMatcher {} vs AdaMEL {}",
        em.num_parameters(),
        adamel.num_parameters()
    );
}

/// Design ablation (DESIGN.md §7): the uniform-attention variant. Two
/// mechanism facts are pinned: (1) the attention output degenerates to the
/// constant 1/F distribution, and (2) with uniform attention the KL
/// adaptation term vanishes, so AdaMEL-zero becomes AdaMEL-base exactly.
/// (The *performance* comparison — where uniform attention is surprisingly
/// competitive on the synthetic corpora — is reported in EXPERIMENTS.md.)
#[test]
fn uniform_attention_ablation_mechanism() {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 5);
    let records = world.records_of(EntityType::Artist, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Disjoint,
        &SplitCounts::tiny(),
        1,
    );
    let cfg = AdamelConfig::tiny().with_uniform_attention(true);

    // (1) attention is the constant 1/F distribution.
    let model = AdamelModel::new(cfg.clone(), world.schema().clone());
    let att = model.attention(&split.test.pairs[..4]);
    let f = model.extractor().num_features() as f32;
    for i in 0..att.rows() {
        for &v in att.row(i) {
            assert!((v - 1.0 / f).abs() < 1e-6, "attention not uniform: {v}");
        }
    }

    // (2) with uniform attention the KL term contributes (essentially)
    // nothing: zero's first-epoch loss is the base loss scaled by (1-λ).
    // (Adam's ε and gradient clipping are not scale-invariant, so the full
    // trajectories drift — only the loss relation is exact.)
    let mut base = AdamelModel::new(cfg.clone(), world.schema().clone());
    let base_report = fit(&mut base, Variant::Base, &split.train, None, None);
    let lambda = cfg.lambda;
    let mut zero = AdamelModel::new(cfg, world.schema().clone());
    let zero_report = fit(&mut zero, Variant::Zero, &split.train, Some(&split.test), None);
    let expected = (1.0 - lambda) * base_report.epoch_losses[0];
    let actual = zero_report.epoch_losses[0];
    assert!(
        (actual - expected).abs() < 0.25 * expected.abs() + 1e-3,
        "first-epoch zero loss {actual} vs (1-λ)·base {expected}"
    );
    // And both still learn to rank.
    assert!(evaluate_prauc(&base, &split.test) > 0.55);
    assert!(evaluate_prauc(&zero, &split.test) > 0.55);
}
