//! End-to-end multi-source entity linkage: world generation → split →
//! training → evaluation, across all four AdaMEL variants.

use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};
use adamel_schema::Schema;

fn fixture() -> (Schema, adamel_data::MelSplit) {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 5);
    let records = world.records_of(EntityType::Artist, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        1,
    );
    (world.schema().clone(), split)
}

fn train(
    variant: Variant,
    schema: &Schema,
    split: &adamel_data::MelSplit,
    seed: u64,
) -> AdamelModel {
    let cfg = AdamelConfig::tiny().with_seed(seed);
    let mut model = AdamelModel::new(cfg, schema.clone());
    fit(
        &mut model,
        variant,
        &split.train,
        variant.uses_target().then_some(&split.test),
        variant.uses_support().then_some(&split.support),
    );
    model
}

#[test]
fn all_variants_beat_random_ranking() {
    let (schema, split) = fixture();
    for variant in Variant::ALL {
        let model = train(variant, &schema, &split, 1);
        let prauc = evaluate_prauc(&model, &split.test);
        // Random ranking on a balanced test set gives ~0.5.
        assert!(prauc > 0.55, "{} PRAUC {prauc} not above chance", variant.name());
    }
}

#[test]
fn adaptation_improves_over_base() {
    let (schema, split) = fixture();
    // Averaged over two seeds to damp single-run noise.
    let mean = |variant: Variant| -> f64 {
        [1u64, 2]
            .iter()
            .map(|&s| evaluate_prauc(&train(variant, &schema, &split, s), &split.test))
            .sum::<f64>()
            / 2.0
    };
    let base = mean(Variant::Base);
    let zero = mean(Variant::Zero);
    // At this smoke scale the support set is only ~30 pairs, so the zero
    // variant is the stable witness for "adaptation does not hurt"; the
    // full-scale comparison lives in the repro harness (Table 9).
    assert!(
        zero > base - 0.05,
        "AdaMEL-zero ({zero:.4}) should not fall below AdaMEL-base ({base:.4})"
    );
}

#[test]
fn training_and_evaluation_are_deterministic() {
    let (schema, split) = fixture();
    let a = evaluate_prauc(&train(Variant::Hyb, &schema, &split, 3), &split.test);
    let b = evaluate_prauc(&train(Variant::Hyb, &schema, &split, 3), &split.test);
    assert_eq!(a, b);
}

#[test]
fn disjoint_scenario_is_not_easier_for_base() {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 5);
    let records = world.records_of(EntityType::Artist, None);
    let schema = world.schema().clone();
    let eval_scenario = |scenario: Scenario| -> f64 {
        let split = make_mel_split(
            &records,
            "name",
            &[0, 1, 2],
            &[3, 4, 5, 6],
            scenario,
            &SplitCounts::tiny(),
            1,
        );
        evaluate_prauc(&train(Variant::Base, &schema, &split, 1), &split.test)
    };
    let s1 = eval_scenario(Scenario::Overlapping);
    let s2 = eval_scenario(Scenario::Disjoint);
    // Loose: disjoint should not be dramatically easier than overlapping.
    assert!(s2 <= s1 + 0.15, "disjoint {s2} unexpectedly much easier than overlapping {s1}");
}

#[test]
fn scores_are_probabilities_and_finite() {
    let (schema, split) = fixture();
    let model = train(Variant::Zero, &schema, &split, 1);
    for s in model.predict(&split.test.pairs) {
        assert!(s.is_finite() && (0.0..=1.0).contains(&s));
    }
}

#[test]
fn attention_remains_a_distribution_after_training() {
    let (schema, split) = fixture();
    let model = train(Variant::Hyb, &schema, &split, 1);
    let att = model.attention(&split.test.pairs);
    for i in 0..att.rows() {
        let sum: f32 = att.row(i).iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
        assert!(att.row(i).iter().all(|&v| v >= 0.0));
    }
}

#[test]
fn bench_repro_path_smoke() {
    // Exercises the full paper-reproduction path (world → experiment split →
    // run_method → metric) at a shrunk scale with a single run, so CI covers
    // the bench harness itself, not just the unit layers. Budget: well under
    // 30 s.
    use adamel_bench::{run_method, Method, Metric, MusicExperiment, Scale};
    let scale = Scale {
        music_artists: 30,
        monitor_products: 40,
        train_pairs_per_class: 40,
        weak_train_pairs_per_class: 80,
        test_pairs_per_class: 30,
        runs: 1,
    };
    let experiment = MusicExperiment::new(&scale, EntityType::Artist, 3);
    let split = experiment.split(&scale, Scenario::Overlapping, false, 3);
    let outcome = run_method(
        Method::AdamelZero,
        &experiment.schema(),
        &split,
        Metric::PrAuc,
        &AdamelConfig::tiny(),
        &adamel_baselines::BaselineConfig::tiny(),
        3,
    );
    assert!(
        outcome.score.is_finite() && (0.0..=1.0).contains(&outcome.score),
        "repro-path PRAUC {} out of range",
        outcome.score
    );
    assert!(outcome.num_parameters > 0);
}
