//! Cross-crate data-layer integration: CSV round trips of generated splits
//! and split reproducibility.

use adamel_data::csvio::{read_pairs, write_pairs};
use adamel_data::{make_mel_split, EntityType, MusicConfig, MusicWorld, Scenario, SplitCounts};
use std::io::BufReader;

#[test]
fn generated_split_round_trips_through_csv() {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 13);
    let records = world.records_of(EntityType::Track, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        4,
    );

    for domain in [&split.train, &split.support, &split.test] {
        let mut buf = Vec::new();
        write_pairs(domain, world.schema(), &mut buf).unwrap();
        let restored = read_pairs(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(restored.len(), domain.len());
        for (orig, back) in domain.pairs.iter().zip(&restored.pairs) {
            assert_eq!(orig.label, back.label);
            assert_eq!(orig.left.source, back.left.source);
            assert_eq!(orig.right.entity_id, back.right.entity_id);
            // Attribute values survive byte-exactly.
            for attr in world.schema().attributes() {
                assert_eq!(orig.left.get(attr), back.left.get(attr));
                assert_eq!(orig.right.get(attr), back.right.get(attr));
            }
        }
    }
}

#[test]
fn split_construction_is_reproducible_across_world_rebuilds() {
    let build = || {
        let world = MusicWorld::generate(&MusicConfig::tiny(), 13);
        let records = world.records_of(EntityType::Artist, None);
        make_mel_split(
            &records,
            "name",
            &[0, 1, 2],
            &[3, 4, 5, 6],
            Scenario::Disjoint,
            &SplitCounts::tiny(),
            7,
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a.train.len(), b.train.len());
    assert_eq!(a.train.labels(), b.train.labels());
    assert_eq!(a.test.ground_truth(), b.test.ground_truth());
    for (pa, pb) in a.test.pairs.iter().zip(&b.test.pairs) {
        assert_eq!(pa.left.values, pb.left.values);
    }
}

#[test]
fn train_support_and_test_respect_source_contracts() {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 13);
    let records = world.records_of(EntityType::Album, None);
    let seen = [0u32, 1, 2];
    let unseen = [3u32, 4, 5, 6];
    let split = make_mel_split(
        &records,
        "name",
        &seen,
        &unseen,
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        9,
    );
    // Every pair is cross-source.
    for domain in [&split.train, &split.support, &split.test] {
        for p in &domain.pairs {
            assert_ne!(p.left.source, p.right.source, "same-source pair leaked");
        }
    }
    // Train stays in seen sources; support/test touch unseen.
    for p in &split.train.pairs {
        assert!(seen.contains(&p.left.source.0) && seen.contains(&p.right.source.0));
    }
    for p in &split.test.pairs {
        assert!(unseen.contains(&p.left.source.0) || unseen.contains(&p.right.source.0));
    }
}
