//! Integration tests over the full baseline roster.

use adamel_baselines::{
    evaluate_prauc, BaselineConfig, CorDel, DeepMatcher, Ditto, EntityMatcher, EntityMatcherModel,
    Tler,
};
use adamel_data::{
    make_mel_split, EntityType, MelSplit, MusicConfig, MusicWorld, Scenario, SplitCounts,
};
use adamel_schema::Schema;

fn fixture() -> (Schema, MelSplit) {
    let world = MusicWorld::generate(&MusicConfig::tiny(), 9);
    let records = world.records_of(EntityType::Album, None);
    let split = make_mel_split(
        &records,
        "name",
        &[0, 1, 2],
        &[3, 4, 5, 6],
        Scenario::Overlapping,
        &SplitCounts::tiny(),
        2,
    );
    (world.schema().clone(), split)
}

fn roster(schema: &Schema) -> Vec<Box<dyn EntityMatcherModel>> {
    let cfg = BaselineConfig::tiny();
    vec![
        Box::new(Tler::new(schema.clone(), cfg.clone())),
        Box::new(DeepMatcher::new(schema.clone(), cfg.clone())),
        Box::new(EntityMatcher::new(schema.clone(), cfg.clone())),
        Box::new(Ditto::new(schema.clone(), cfg.clone())),
        Box::new(CorDel::new(schema.clone(), cfg)),
    ]
}

#[test]
fn every_baseline_trains_and_beats_chance() {
    let (schema, split) = fixture();
    for mut model in roster(&schema) {
        model.fit(&split.train);
        let prauc = evaluate_prauc(model.as_ref(), &split.test);
        assert!(prauc > 0.5, "{} PRAUC {prauc} at or below chance on an easy split", model.name());
        for s in model.predict(&split.test.pairs) {
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "{} bad score", model.name());
        }
    }
}

#[test]
fn parameter_count_ordering_matches_the_papers() {
    // §5.5: EntityMatcher is by far the largest; TLER (non-deep logistic
    // regression) the smallest.
    let (schema, _) = fixture();
    let models = roster(&schema);
    let params: Vec<(&str, usize)> =
        models.iter().map(|m| (m.name(), m.num_parameters())).collect();
    let em = params.iter().find(|(n, _)| *n == "EntityMatcher").unwrap().1;
    let tler = params.iter().find(|(n, _)| *n == "TLER").unwrap().1;
    for (name, p) in &params {
        if *name != "EntityMatcher" {
            assert!(em > *p, "EntityMatcher ({em}) not larger than {name} ({p})");
        }
        if *name != "TLER" {
            assert!(tler < *p, "TLER ({tler}) not smaller than {name} ({p})");
        }
    }
}

#[test]
fn baselines_are_deterministic_given_seed() {
    let (schema, split) = fixture();
    let run = || {
        let mut m = DeepMatcher::new(schema.clone(), BaselineConfig::tiny());
        m.fit(&split.train);
        m.predict(&split.test.pairs)
    };
    assert_eq!(run(), run());
}

#[test]
fn baselines_handle_pairs_with_only_missing_values() {
    use adamel_schema::{EntityPair, Record, SourceId};
    let (schema, split) = fixture();
    let empty_pair =
        EntityPair::unlabeled(Record::new(SourceId(0), 1), Record::new(SourceId(1), 2));
    for mut model in roster(&schema) {
        model.fit(&split.train);
        let scores = model.predict(std::slice::from_ref(&empty_pair));
        assert_eq!(scores.len(), 1);
        assert!(scores[0].is_finite(), "{} choked on empty pair", model.name());
    }
}
