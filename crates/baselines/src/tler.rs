//! TLER (Thirumuruganathan et al., 2018): non-deep transfer ER.
//!
//! TLER defines a *standard feature space* of classical string similarities
//! per attribute and trains a shallow model, reusing the seen labeled data
//! for new domains. Following the original, each attribute contributes
//! Levenshtein, Jaccard, overlap, Monge-Elkan, exact-match, numeric and
//! embedding-cosine similarities plus a both-missing indicator, classified
//! by logistic regression.

use crate::common::{BaselineConfig, EntityMatcherModel, MlpHead};
use adamel_schema::{Domain, EntityPair, Schema};
use adamel_tensor::Matrix;
use adamel_text::similarity as sim;
use adamel_text::tokenize_cropped;

/// Number of engineered features per attribute.
///
/// The original TLER feature space is deliberately *standard* (it predates
/// embedding-based similarity): token Jaccard, normalized edit distance,
/// exact match, and a both-missing indicator per attribute.
pub const FEATURES_PER_ATTRIBUTE: usize = 4;

/// The TLER baseline.
pub struct Tler {
    schema: Schema,
    head: MlpHead,
    cfg: BaselineConfig,
}

impl Tler {
    /// Builds TLER over an aligned schema.
    pub fn new(schema: Schema, cfg: BaselineConfig) -> Self {
        // Logistic regression: single linear layer to a logit.
        let head = MlpHead::new(&[schema.len() * FEATURES_PER_ATTRIBUTE, 1], cfg.clone());
        Self { schema, head, cfg }
    }

    /// The engineered feature row of one pair.
    pub fn features(&self, pair: &EntityPair) -> Vec<f32> {
        let mut row = Vec::with_capacity(self.schema.len() * FEATURES_PER_ATTRIBUTE);
        for attr in self.schema.attributes() {
            let la = pair.left.get(attr).unwrap_or("");
            let ra = pair.right.get(attr).unwrap_or("");
            let ta = tokenize_cropped(la, self.cfg.crop);
            let tb = tokenize_cropped(ra, self.cfg.crop);
            let both_missing = ta.is_empty() && tb.is_empty();
            if both_missing {
                row.extend_from_slice(&[0.0; FEATURES_PER_ATTRIBUTE - 1]);
                row.push(1.0);
            } else {
                row.push(sim::levenshtein_similarity(la, ra));
                row.push(sim::prefix_similarity(la, ra));
                row.push(sim::exact_match(&ta, &tb));
                row.push(0.0);
            }
        }
        row
    }

    fn encode(&self, pairs: &[EntityPair]) -> Matrix {
        let width = self.schema.len() * FEATURES_PER_ATTRIBUTE;
        let mut data = Vec::with_capacity(pairs.len() * width);
        for p in pairs {
            data.extend(self.features(p));
        }
        Matrix::from_vec(pairs.len(), width, data)
    }
}

impl EntityMatcherModel for Tler {
    fn name(&self) -> &'static str {
        "TLER"
    }

    fn fit(&mut self, train: &Domain) {
        let features = self.encode(&train.pairs);
        self.head.fit(&features, &train.labels());
    }

    fn predict(&self, pairs: &[EntityPair]) -> Vec<f32> {
        self.head.predict(&self.encode(pairs))
    }

    fn num_parameters(&self) -> usize {
        self.head.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{Record, SourceId};

    fn pair(l: &str, r: &str, id_l: u64, id_r: u64) -> EntityPair {
        let mut a = Record::new(SourceId(0), id_l);
        a.set("title", l);
        let mut b = Record::new(SourceId(1), id_r);
        b.set("title", r);
        EntityPair::labeled(a, b, id_l == id_r)
    }

    fn schema() -> Schema {
        Schema::new(vec!["title".into()])
    }

    #[test]
    fn features_are_bounded() {
        let t = Tler::new(schema(), BaselineConfig::tiny());
        let f = t.features(&pair("hey jude", "hey jude", 1, 1));
        assert_eq!(f.len(), FEATURES_PER_ATTRIBUTE);
        for v in &f {
            assert!((-1.001..=1.001).contains(v), "feature {v} out of range");
        }
        // Identical values: every similarity maxed, missing flag off.
        assert_eq!(f[0], 1.0);
        assert_eq!(f[2], 1.0);
        assert_eq!(f[3], 0.0);
    }

    #[test]
    fn missing_flag_set_when_both_empty() {
        let t = Tler::new(schema(), BaselineConfig::tiny());
        let mut a = Record::new(SourceId(0), 1);
        a.set("other", "x");
        let b = Record::new(SourceId(1), 1);
        let f = t.features(&EntityPair::labeled(a, b, true));
        assert_eq!(f[FEATURES_PER_ATTRIBUTE - 1], 1.0);
    }

    #[test]
    fn learns_similarity_signal() {
        let mut t = Tler::new(schema(), BaselineConfig::tiny());
        let mut train = Vec::new();
        for i in 0..10u64 {
            train.push(pair(&format!("song number {i}"), &format!("song number {i}"), i, i));
            train.push(pair(
                &format!("song number {i}"),
                &format!("different tune {}", i + 50),
                i,
                i + 100,
            ));
        }
        t.fit(&Domain::new(train));
        let pos = t.predict(&[pair("melody x", "melody x", 1, 1)])[0];
        let neg = t.predict(&[pair("melody x", "other thing", 1, 2)])[0];
        assert!(pos > neg + 0.1, "pos {pos} neg {neg}");
    }
}
