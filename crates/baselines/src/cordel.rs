//! CorDel-Attention (Wang et al., 2020): compare-and-contrast before
//! embedding.
//!
//! CorDel departs from the "twin" architectures by *first* comparing the
//! raw word tokens of the two records (filtering out the minor deviations
//! twins over-weight) and only then embedding: per attribute, the shared
//! tokens and each side's residual tokens are embedded separately, with a
//! word-level attention that up-weights informative (rare) tokens. A compact
//! classifier consumes the per-attribute blocks. The attention variant is
//! the one the paper reports as strongest on dirty/long attribute values.

use crate::common::{BaselineConfig, EntityMatcherModel, MlpHead};
use adamel_schema::{Domain, EntityPair, Schema};
use adamel_tensor::Matrix;
use adamel_text::{shared_and_unique, tokenize_cropped, HashedFastText, TfIdf};

/// The CorDel-Attention baseline.
pub struct CorDel {
    schema: Schema,
    embedder: HashedFastText,
    head: MlpHead,
    tfidf: TfIdf,
    cfg: BaselineConfig,
}

impl CorDel {
    /// Builds CorDel over an aligned schema.
    pub fn new(schema: Schema, cfg: BaselineConfig) -> Self {
        let embedder = HashedFastText::new(cfg.embed_dim, cfg.seed);
        // Per attribute: shared block + unique block (word-attention
        // weighted sums) + 2 scalar ratios.
        let input = schema.len() * (cfg.embed_dim * 2 + 2);
        let hidden = (cfg.embed_dim * 6).max(48);
        let head = MlpHead::new(&[input, hidden, 1], cfg.clone());
        Self { schema, embedder, head, tfidf: TfIdf::new(), cfg }
    }

    /// Word-level attention weight: rare tokens (high IDF) matter more; this
    /// is the deterministic counterpart of CorDel-Attention's learned word
    /// attention.
    fn word_weight(&self, token: &str) -> f32 {
        if self.tfidf.num_docs() == 0 {
            1.0
        } else {
            self.tfidf.idf(token)
        }
    }

    fn weighted_sum(&self, tokens: &[String]) -> Vec<f32> {
        let d = self.cfg.embed_dim;
        if tokens.is_empty() {
            return self.embedder.missing_vector().into_vec();
        }
        let mut acc = vec![0.0f32; d];
        let mut total = 0.0f32;
        for t in tokens {
            let w = self.word_weight(t);
            total += w;
            for (a, v) in acc.iter_mut().zip(self.embedder.embed_token(t)) {
                *a += w * v;
            }
        }
        if total > 0.0 {
            acc.iter_mut().for_each(|v| *v /= total);
        }
        acc
    }

    /// Compare-and-contrast features of one pair.
    pub fn features(&self, pair: &EntityPair) -> Vec<f32> {
        let d = self.cfg.embed_dim;
        let mut row = Vec::with_capacity(self.schema.len() * (d * 2 + 2));
        for attr in self.schema.attributes() {
            let ta =
                pair.left.get(attr).map(|v| tokenize_cropped(v, self.cfg.crop)).unwrap_or_default();
            let tb = pair
                .right
                .get(attr)
                .map(|v| tokenize_cropped(v, self.cfg.crop))
                .unwrap_or_default();
            let (shared, unique) = shared_and_unique(&ta, &tb);
            row.extend(self.weighted_sum(&shared));
            row.extend(self.weighted_sum(&unique));
            let total = (ta.len() + tb.len()).max(1) as f32;
            row.push(2.0 * shared.len() as f32 / total); // shared ratio
            row.push(unique.len() as f32 / total); // contrast ratio
        }
        row
    }

    fn encode(&self, pairs: &[EntityPair]) -> Matrix {
        let width = self.schema.len() * (self.cfg.embed_dim * 2 + 2);
        let mut data = Vec::with_capacity(pairs.len() * width);
        for p in pairs {
            data.extend(self.features(p));
        }
        Matrix::from_vec(pairs.len(), width, data)
    }
}

impl EntityMatcherModel for CorDel {
    fn name(&self) -> &'static str {
        "CorDel-Attention"
    }

    fn fit(&mut self, train: &Domain) {
        self.tfidf = TfIdf::new();
        for p in &train.pairs {
            for rec in [&p.left, &p.right] {
                for attr in self.schema.attributes() {
                    if let Some(v) = rec.get(attr) {
                        self.tfidf.add_document(&tokenize_cropped(v, self.cfg.crop));
                    }
                }
            }
        }
        let features = self.encode(&train.pairs);
        self.head.fit(&features, &train.labels());
    }

    fn predict(&self, pairs: &[EntityPair]) -> Vec<f32> {
        self.head.predict(&self.encode(pairs))
    }

    fn num_parameters(&self) -> usize {
        self.head.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{Record, SourceId};

    fn schema() -> Schema {
        Schema::new(vec!["title".into()])
    }

    fn pair(l: &str, r: &str, matching: bool) -> EntityPair {
        let mut a = Record::new(SourceId(0), 1);
        a.set("title", l);
        let mut b = Record::new(SourceId(1), if matching { 1 } else { 2 });
        b.set("title", r);
        EntityPair::labeled(a, b, matching)
    }

    #[test]
    fn shared_ratio_reflects_overlap() {
        let c = CorDel::new(schema(), BaselineConfig::tiny());
        let d = BaselineConfig::tiny().embed_dim;
        let f_same = c.features(&pair("a b c", "a b c", true));
        let f_disjoint = c.features(&pair("a b c", "x y z", false));
        let shared_ratio_idx = d * 2;
        assert!((f_same[shared_ratio_idx] - 1.0).abs() < 1e-6);
        assert_eq!(f_disjoint[shared_ratio_idx], 0.0);
    }

    #[test]
    fn contrast_isolates_version_words() {
        // "original" vs "remix": the unique block must carry the distinction
        // even though most tokens are shared — CorDel's motivating case and
        // the paper's own music example.
        let c = CorDel::new(schema(), BaselineConfig::tiny());
        let f1 = c.features(&pair("song one original", "song one remix", false));
        let f2 = c.features(&pair("song one original", "song one original", true));
        let d = BaselineConfig::tiny().embed_dim;
        // Unique block differs strongly between the two cases.
        let unique1 = &f1[d..2 * d];
        let unique2 = &f2[d..2 * d];
        let diff: f32 = unique1.iter().zip(unique2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.5, "unique blocks indistinguishable: {diff}");
    }

    #[test]
    fn learns_contrastive_signal() {
        let mut c = CorDel::new(schema(), BaselineConfig::tiny());
        let mut train = Vec::new();
        for i in 0..12u64 {
            train.push({
                let mut a = Record::new(SourceId(0), i);
                a.set("title", format!("piece {i} original"));
                let mut b = Record::new(SourceId(1), i);
                b.set("title", format!("piece {i} original"));
                EntityPair::labeled(a, b, true)
            });
            train.push({
                let mut a = Record::new(SourceId(0), i);
                a.set("title", format!("piece {i} original"));
                let mut b = Record::new(SourceId(1), i + 40);
                b.set("title", format!("piece {i} remix"));
                EntityPair::labeled(a, b, false)
            });
        }
        c.fit(&Domain::new(train));
        let pos = c.predict(&[pair("piece 99 original", "piece 99 original", true)])[0];
        let neg = c.predict(&[pair("piece 99 original", "piece 99 remix", false)])[0];
        assert!(pos > neg, "pos {pos} neg {neg}");
    }
}
