//! DeepMatcher-hybrid (Mudgal et al., 2018).
//!
//! DeepMatcher summarizes each attribute's word sequence (the hybrid variant
//! uses a bidirectional RNN with decomposable attention), builds an
//! *attribute similarity representation* from the two summaries, and
//! classifies with a 2-layer HighwayNet. This port keeps the architecture's
//! shape: per-attribute soft-aligned token summaries over hashed FastText
//! embeddings, the standard `[|u − v|, u ⊙ v]` similarity representation,
//! and a 2-layer classifier with a highway-style skip connection (see
//! `common` module docs for the fidelity argument).

use crate::common::{BaselineConfig, EntityMatcherModel, MlpHead};
use adamel_schema::{Domain, EntityPair, Schema};
use adamel_tensor::Matrix;
use adamel_text::{cosine_slices, tokenize_cropped, HashedFastText};

/// The DeepMatcher baseline (hybrid variant).
pub struct DeepMatcher {
    schema: Schema,
    embedder: HashedFastText,
    head: MlpHead,
    cfg: BaselineConfig,
}

impl DeepMatcher {
    /// Builds DeepMatcher over an aligned schema. The classifier hidden
    /// width follows the paper's configuration (hidden dim 300 at full
    /// scale; scaled with the embedding dim here).
    pub fn new(schema: Schema, cfg: BaselineConfig) -> Self {
        let embedder = HashedFastText::new(cfg.embed_dim, cfg.seed);
        let hidden = (cfg.embed_dim * 6).max(32); // ~300 at the paper's 48-dim scale
        let input = schema.len() * cfg.embed_dim * 2;
        let head = MlpHead::new(&[input, hidden, 1], cfg.clone());
        Self { schema, embedder, head, cfg }
    }

    /// Soft-aligned summary of tokens `a` against context `b`: each token of
    /// `a` is weighted by its best cosine alignment to `b` (the decomposable
    /// attention of the hybrid variant), then summed.
    fn summarize(&self, own: &[String], other: &[String]) -> Vec<f32> {
        let d = self.cfg.embed_dim;
        if own.is_empty() {
            return self.embedder.missing_vector().into_vec();
        }
        let other_embs: Vec<Vec<f32>> =
            other.iter().map(|t| self.embedder.embed_token(t)).collect();
        let mut acc = vec![0.0f32; d];
        for tok in own {
            let e = self.embedder.embed_token(tok);
            let align =
                other_embs.iter().map(|o| cosine_slices(&e, o)).fold(0.0f32, f32::max).max(0.0);
            // 0.5 base weight keeps unaligned tokens contributing, as the
            // RNN summary would.
            let w = 0.5 + 0.5 * align;
            for (a, v) in acc.iter_mut().zip(&e) {
                *a += w * v;
            }
        }
        acc
    }

    /// The attribute similarity representation of one pair:
    /// `[|u − v|, u ⊙ v]` per attribute.
    pub fn features(&self, pair: &EntityPair) -> Vec<f32> {
        let d = self.cfg.embed_dim;
        let mut row = Vec::with_capacity(self.schema.len() * d * 2);
        for attr in self.schema.attributes() {
            let ta =
                pair.left.get(attr).map(|v| tokenize_cropped(v, self.cfg.crop)).unwrap_or_default();
            let tb = pair
                .right
                .get(attr)
                .map(|v| tokenize_cropped(v, self.cfg.crop))
                .unwrap_or_default();
            let u = self.summarize(&ta, &tb);
            let v = self.summarize(&tb, &ta);
            for (x, y) in u.iter().zip(&v) {
                row.push((x - y).abs());
            }
            for (x, y) in u.iter().zip(&v) {
                row.push(x * y);
            }
        }
        row
    }

    fn encode(&self, pairs: &[EntityPair]) -> Matrix {
        let width = self.schema.len() * self.cfg.embed_dim * 2;
        let mut data = Vec::with_capacity(pairs.len() * width);
        for p in pairs {
            data.extend(self.features(p));
        }
        Matrix::from_vec(pairs.len(), width, data)
    }
}

impl EntityMatcherModel for DeepMatcher {
    fn name(&self) -> &'static str {
        "DeepMatcher"
    }

    fn fit(&mut self, train: &Domain) {
        let features = self.encode(&train.pairs);
        self.head.fit(&features, &train.labels());
    }

    fn predict(&self, pairs: &[EntityPair]) -> Vec<f32> {
        self.head.predict(&self.encode(pairs))
    }

    fn num_parameters(&self) -> usize {
        self.head.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{Record, SourceId};

    fn pair(l: &str, r: &str, match_: bool) -> EntityPair {
        let mut a = Record::new(SourceId(0), 1);
        a.set("title", l);
        let mut b = Record::new(SourceId(1), if match_ { 1 } else { 2 });
        b.set("title", r);
        EntityPair::labeled(a, b, match_)
    }

    fn schema() -> Schema {
        Schema::new(vec!["title".into()])
    }

    #[test]
    fn identical_values_have_zero_abs_diff_block() {
        let m = DeepMatcher::new(schema(), BaselineConfig::tiny());
        let f = m.features(&pair("hey jude", "hey jude", true));
        let d = BaselineConfig::tiny().embed_dim;
        // The |u - v| half must vanish for identical inputs.
        for &v in &f[..d] {
            assert!(v.abs() < 1e-5);
        }
        // The u ⊙ v half must not be all zeros.
        assert!(f[d..].iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn learns_title_match() {
        let mut m = DeepMatcher::new(schema(), BaselineConfig::tiny());
        let mut train = Vec::new();
        for i in 0..12u64 {
            let t = format!("track {i} alpha");
            let o = format!("other {} beta", i + 40);
            let mut a = Record::new(SourceId(0), i);
            a.set("title", t.clone());
            let mut b = Record::new(SourceId(1), i);
            b.set("title", t);
            train.push(EntityPair::labeled(a.clone(), b, true));
            let mut c = Record::new(SourceId(1), i + 100);
            c.set("title", o);
            train.push(EntityPair::labeled(a, c, false));
        }
        m.fit(&Domain::new(train));
        let pos = m.predict(&[pair("fresh song", "fresh song", true)])[0];
        let neg = m.predict(&[pair("fresh song", "unrelated words", false)])[0];
        assert!(pos > neg + 0.1, "pos {pos} neg {neg}");
    }

    #[test]
    fn parameter_count_scales_with_schema() {
        let small = DeepMatcher::new(schema(), BaselineConfig::tiny());
        let wide = DeepMatcher::new(
            Schema::new(vec!["a".into(), "b".into(), "c".into()]),
            BaselineConfig::tiny(),
        );
        assert!(wide.num_parameters() > small.num_parameters());
    }
}
