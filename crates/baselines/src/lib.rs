//! # adamel-baselines
//!
//! Mechanism-level reimplementations of the five baselines the AdaMEL paper
//! compares against (§5.1): [`Tler`] (non-deep transfer ER),
//! [`DeepMatcher`] (per-attribute word-level summaries), [`EntityMatcher`]
//! (hierarchical cross-attribute token alignment), [`Ditto`]
//! (sequence-level matching with TF-IDF summarization and span-deletion
//! augmentation), and [`CorDel`] (compare-and-contrast before embedding).
//!
//! All baselines are *supervised only* — they train on labeled `D_S` pairs
//! and never see the unlabeled target domain, which is exactly the property
//! the paper's MEL experiments contrast with AdaMEL's domain adaptation. See
//! the [`common`] module docs and DESIGN.md §2 for the fidelity argument of
//! this port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod cordel;
pub mod deepmatcher;
pub mod ditto;
pub mod entitymatcher;
pub mod tler;

pub use common::{evaluate_f1, evaluate_prauc, BaselineConfig, EntityMatcherModel, MlpHead};
pub use cordel::CorDel;
pub use deepmatcher::DeepMatcher;
pub use ditto::Ditto;
pub use entitymatcher::EntityMatcher;
pub use tler::Tler;
