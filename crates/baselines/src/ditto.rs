//! Ditto (Li et al., VLDB 2020): sequence-level matching with a pretrained
//! language model, input summarization, and data augmentation.
//!
//! Ditto serializes a pair as one token sequence
//! (`[COL] attr [VAL] tokens ...`), optionally summarizes long inputs by
//! retaining high-TF-IDF tokens, fine-tunes a Transformer encoder, and
//! augments training data (the paper's AdaMEL experiments use "token span
//! deletion"). This port keeps the sequence-level shape: TF-IDF-summarized
//! serialized sequences embedded with hashed subword vectors (informativeness-weighted mean
//! pooled), the `[u, v, |u−v|, u⊙v]` interaction head, and span-deletion
//! augmentation during training.

use crate::common::{BaselineConfig, EntityMatcherModel, MlpHead};
use adamel_schema::{Domain, EntityPair, Record, Schema};
use adamel_tensor::Matrix;
use adamel_text::{tokenize_cropped, HashedFastText, TfIdf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum summarized sequence length (stands in for the LM's input budget).
const MAX_SEQ: usize = 48;

/// The Ditto baseline.
pub struct Ditto {
    schema: Schema,
    embedder: HashedFastText,
    head: MlpHead,
    tfidf: TfIdf,
    cfg: BaselineConfig,
    /// Number of augmented copies per training pair (span deletion).
    augment_copies: usize,
}

impl Ditto {
    /// Builds Ditto over an aligned schema.
    pub fn new(schema: Schema, cfg: BaselineConfig) -> Self {
        let embedder = HashedFastText::new(cfg.embed_dim, cfg.seed);
        // Sequence representation: informativeness-weighted mean pooling
        // per side (max pooling is meaningless over sign-random hashed
        // dimensions).
        let side = cfg.embed_dim;
        let input = side * 4; // u, v, |u-v|, u*v
        let hidden = (cfg.embed_dim * 8).max(64);
        let head = MlpHead::new(&[input, hidden, hidden, 1], cfg.clone());
        Self { schema, embedder, head, tfidf: TfIdf::new(), cfg, augment_copies: 1 }
    }

    /// Serializes one record: `[COL] attr [VAL] tokens ...` flattened to
    /// word tokens (the structure markers become plain tokens, as Ditto's
    /// special tokens do for the LM).
    pub fn serialize(&self, record: &Record) -> Vec<String> {
        let mut seq = Vec::new();
        for attr in self.schema.attributes() {
            if let Some(v) = record.get(attr) {
                seq.push(format!("col_{attr}"));
                seq.extend(tokenize_cropped(v, self.cfg.crop));
            }
        }
        seq
    }

    fn summarize(&self, seq: Vec<String>) -> Vec<String> {
        if self.tfidf.num_docs() == 0 {
            let mut s = seq;
            s.truncate(MAX_SEQ);
            return s;
        }
        self.tfidf.summarize(&seq, MAX_SEQ)
    }

    fn embed_sequence(&self, seq: &[String]) -> Vec<f32> {
        let d = self.cfg.embed_dim;
        // Structure markers inform the encoder's segmentation but carry no
        // matching evidence; pooling skips them (as a fine-tuned LM learns
        // to) and weights value tokens by informativeness.
        let values: Vec<&String> = seq.iter().filter(|t| !t.starts_with("col_")).collect();
        if values.is_empty() {
            return self.embedder.missing_vector().into_vec();
        }
        let mut mean = vec![0.0f32; d];
        let mut total_w = 0.0f32;
        for t in &values {
            let w = if self.tfidf.num_docs() > 0 { self.tfidf.idf(t) } else { 1.0 };
            total_w += w;
            let e = self.embedder.embed_token(t);
            for (m, v) in mean.iter_mut().zip(&e) {
                *m += w * v;
            }
        }
        mean.iter_mut().for_each(|v| *v /= total_w.max(1e-6));
        mean
    }

    fn pair_features(&self, pair: &EntityPair) -> Vec<f32> {
        let u = self.embed_sequence(&self.summarize(self.serialize(&pair.left)));
        let v = self.embed_sequence(&self.summarize(self.serialize(&pair.right)));
        let mut row = Vec::with_capacity(u.len() * 4);
        row.extend_from_slice(&u);
        row.extend_from_slice(&v);
        for (a, b) in u.iter().zip(&v) {
            row.push((a - b).abs());
        }
        for (a, b) in u.iter().zip(&v) {
            row.push(a * b);
        }
        row
    }

    fn encode(&self, pairs: &[EntityPair]) -> Matrix {
        let width = self.cfg.embed_dim * 4;
        let mut data = Vec::with_capacity(pairs.len() * width);
        for p in pairs {
            data.extend(self.pair_features(p));
        }
        Matrix::from_vec(pairs.len(), width, data)
    }

    /// Token span deletion: removes a random contiguous span from one
    /// attribute value of a copy of the pair — Ditto's chosen augmentation
    /// operator in the paper's configuration.
    fn span_delete(&self, pair: &EntityPair, rng: &mut StdRng) -> EntityPair {
        let mut p = pair.clone();
        let rec = if rng.gen_bool(0.5) { &mut p.left } else { &mut p.right };
        let attrs: Vec<String> = rec.attributes().map(str::to_owned).collect();
        if let Some(attr) = attrs.get(rng.gen_range(0..attrs.len().max(1))) {
            if let Some(v) = rec.get(attr) {
                let tokens = tokenize_cropped(v, self.cfg.crop);
                if tokens.len() > 2 {
                    let span = rng.gen_range(1..=(tokens.len() / 2));
                    let start = rng.gen_range(0..=tokens.len() - span);
                    let kept: Vec<String> = tokens
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i < start || *i >= start + span)
                        .map(|(_, t)| t.clone())
                        .collect();
                    rec.set(attr.clone(), kept.join(" "));
                }
            }
        }
        p
    }
}

impl EntityMatcherModel for Ditto {
    fn name(&self) -> &'static str {
        "Ditto"
    }

    fn fit(&mut self, train: &Domain) {
        // Fit TF-IDF on the training corpus for summarization.
        self.tfidf = TfIdf::new();
        for p in &train.pairs {
            self.tfidf.add_document(&self.serialize(&p.left));
            self.tfidf.add_document(&self.serialize(&p.right));
        }
        // Span-deletion augmentation.
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xd1770);
        let mut pairs = train.pairs.clone();
        let mut labels = train.labels();
        for p in &train.pairs {
            for _ in 0..self.augment_copies {
                pairs.push(self.span_delete(p, &mut rng));
                labels.push(f32::from(p.label.expect("Ditto::fit requires labels")));
            }
        }
        let features = self.encode(&pairs);
        self.head.fit(&features, &labels);
    }

    fn predict(&self, pairs: &[EntityPair]) -> Vec<f32> {
        self.head.predict(&self.encode(pairs))
    }

    fn num_parameters(&self) -> usize {
        self.head.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::SourceId;

    fn schema() -> Schema {
        Schema::new(vec!["artist".into(), "title".into()])
    }

    fn rec(kv: &[(&str, &str)], id: u64) -> Record {
        let mut r = Record::new(SourceId(0), id);
        for (k, v) in kv {
            r.set(*k, *v);
        }
        r
    }

    #[test]
    fn serialization_includes_column_markers() {
        let d = Ditto::new(schema(), BaselineConfig::tiny());
        let seq = d.serialize(&rec(&[("title", "hey jude"), ("artist", "beatles")], 1));
        assert_eq!(seq[0], "col_artist");
        assert!(seq.contains(&"col_title".to_string()));
        assert!(seq.contains(&"jude".to_string()));
    }

    #[test]
    fn span_deletion_shrinks_values() {
        let d = Ditto::new(schema(), BaselineConfig::tiny());
        let mut rng = StdRng::seed_from_u64(0);
        let pair = EntityPair::labeled(
            rec(&[("title", "one two three four five six")], 1),
            rec(&[("title", "one two three four five six")], 1),
            true,
        );
        let mut shrunk = 0;
        for _ in 0..10 {
            let aug = d.span_delete(&pair, &mut rng);
            let la = aug.left.get("title").unwrap_or("").len();
            let ra = aug.right.get("title").unwrap_or("").len();
            if la < pair.left.get("title").expect("fixture pairs set a title").len()
                || ra < pair.right.get("title").expect("fixture pairs set a title").len()
            {
                shrunk += 1;
            }
        }
        assert!(shrunk >= 8, "only {shrunk}/10 augmentations deleted a span");
    }

    #[test]
    fn learns_sequence_match() {
        let mut d = Ditto::new(schema(), BaselineConfig::tiny());
        let mut train = Vec::new();
        for i in 0..10u64 {
            let l = rec(&[("title", &format!("ballad number {i}") as &str)], i);
            let r = rec(&[("title", &format!("ballad number {i}") as &str)], i);
            train.push(EntityPair::labeled(l.clone(), r, true));
            let w = rec(&[("title", &format!("anthem item {}", i + 30) as &str)], i + 100);
            train.push(EntityPair::labeled(l, w, false));
        }
        d.fit(&Domain::new(train));
        let pos = d.predict(&[EntityPair::labeled(
            rec(&[("title", "chorus nine")], 1),
            rec(&[("title", "chorus nine")], 1),
            true,
        )])[0];
        let neg = d.predict(&[EntityPair::labeled(
            rec(&[("title", "chorus nine")], 1),
            rec(&[("title", "completely different")], 2),
            false,
        )])[0];
        assert!(pos > neg, "pos {pos} neg {neg}");
    }
}
