//! Shared infrastructure for the baselines: configuration, the common
//! supervised-classifier head, and the [`EntityMatcherModel`] trait.
//!
//! ## Fidelity note (see DESIGN.md §2)
//!
//! The paper's baselines combine a token *summarizer* (attentive RNN for
//! DeepMatcher, hierarchical alignment for EntityMatcher, a pretrained
//! Transformer for Ditto, compare-and-contrast for CorDel) with a supervised
//! classifier trained on the labeled source-domain pairs only. What the
//! paper's experiments measure is the *supervised-only* character — none of
//! them adapts to unlabeled target data — and the summarization *shape*
//! (word-level within attribute / cross-attribute / sequence-level /
//! contrast-first). This port therefore keeps each baseline's summarization
//! shape as a deterministic feature construction over hashed FastText-style
//! embeddings (the paper's baselines likewise consume fixed pretrained
//! FastText vectors) and trains the classifier head; the summarizers'
//! internal recurrences are not re-learned. Relative parameter counts and
//! runtime orderings (§5.5, Fig. 9) are preserved by construction cost and
//! head size.

use adamel_schema::{Domain, EntityPair};
use adamel_tensor::{init, Adam, Graph, Matrix, Optimizer, ParamId, ParamSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters shared by all baselines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Token embedding dimensionality (paper: 300-d FastText).
    pub embed_dim: usize,
    /// Token cropping size (paper: 20).
    pub crop: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// Mini-batch size (paper: 16).
    pub batch_size: usize,
    /// Seed for embeddings, init, and batching.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self { embed_dim: 48, crop: 20, epochs: 25, learning_rate: 1e-3, batch_size: 16, seed: 7 }
    }
}

impl BaselineConfig {
    /// A minimal configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self { embed_dim: 24, epochs: 50, learning_rate: 3e-3, ..Self::default() }
    }
}

/// The uniform interface every baseline implements, mirroring how §5.2 runs
/// them: fit on labeled `D_S`, score target pairs.
pub trait EntityMatcherModel {
    /// Reporting name ("DeepMatcher", ...).
    fn name(&self) -> &'static str;
    /// Trains on labeled pairs (supervised only — no adaptation).
    fn fit(&mut self, train: &Domain);
    /// Match scores in `[0, 1]` for arbitrary pairs.
    fn predict(&self, pairs: &[EntityPair]) -> Vec<f32>;
    /// Total scalar parameter count (for the §5.5 comparison).
    fn num_parameters(&self) -> usize;
}

/// PRAUC of any baseline on a target domain, judged against ground truth.
pub fn evaluate_prauc(model: &dyn EntityMatcherModel, test: &Domain) -> f64 {
    let scores = model.predict(&test.pairs);
    let labels: Vec<bool> = test.pairs.iter().map(|p| p.ground_truth()).collect();
    adamel_metrics::pr_auc(&scores, &labels)
}

/// Best-threshold F1 of any baseline on a target domain.
pub fn evaluate_f1(model: &dyn EntityMatcherModel, test: &Domain) -> f64 {
    let scores = model.predict(&test.pairs);
    let labels: Vec<bool> = test.pairs.iter().map(|p| p.ground_truth()).collect();
    adamel_metrics::best_f1(&scores, &labels).0
}

/// A plain feed-forward classifier head (ReLU hidden layers, scalar logit).
pub struct MlpHead {
    params: ParamSet,
    layers: Vec<(ParamId, ParamId)>,
    cfg: BaselineConfig,
}

impl MlpHead {
    /// Builds a head with the given layer widths, e.g. `[input, 300, 1]`.
    pub fn new(widths: &[usize], cfg: BaselineConfig) -> Self {
        assert!(widths.len() >= 2, "MlpHead needs at least input and output widths");
        assert_eq!(widths.last().copied(), Some(1), "MlpHead output width must be 1 (a logit)");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xb45e);
        let mut params = ParamSet::new();
        let mut layers = Vec::new();
        for (i, w) in widths.windows(2).enumerate() {
            let wid = params.insert(format!("W{i}"), init::he_uniform(w[0], w[1], &mut rng));
            let bid = params.insert(format!("b{i}"), Matrix::zeros(1, w[1]));
            layers.push((wid, bid));
        }
        Self { params, layers, cfg }
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    fn forward(&self, g: &mut Graph, features: &Matrix) -> adamel_tensor::Var {
        let mut x = g.constant(features.clone());
        let last = self.layers.len() - 1;
        for (i, (w, b)) in self.layers.iter().enumerate() {
            let wv = g.param(&self.params, *w);
            let bv = g.param(&self.params, *b);
            x = if i == last { g.linear(x, wv, bv) } else { g.linear_relu(x, wv, bv) };
        }
        x
    }

    /// Trains with BCE on precomputed feature rows.
    pub fn fit(&mut self, features: &Matrix, labels: &[f32]) {
        assert_eq!(features.rows(), labels.len(), "MlpHead::fit shape mismatch");
        let n = labels.len();
        if n == 0 {
            return;
        }
        let mut opt = Adam::with_lr(self.cfg.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf17);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.cfg.epochs {
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(self.cfg.batch_size.max(1)) {
                let batch = features.select_rows(chunk);
                let y =
                    Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| labels[i]).collect());
                let mut g = Graph::new();
                let logits = self.forward(&mut g, &batch);
                let loss = g.bce_with_logits(logits, y);
                self.params.zero_grads();
                g.backward(loss, &mut self.params);
                self.params.clip_grad_norm(5.0);
                opt.step(&mut self.params);
            }
        }
    }

    /// Sigmoid scores for precomputed feature rows.
    pub fn predict(&self, features: &Matrix) -> Vec<f32> {
        if features.rows() == 0 {
            return Vec::new();
        }
        let mut g = Graph::new();
        let logits = self.forward(&mut g, features);
        g.value(logits).as_slice().iter().map(|&z| 1.0 / (1.0 + (-z).exp())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_learns_xor_like_separation() {
        let features =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        let labels = [0.0, 1.0, 1.0, 0.0];
        let mut head = MlpHead::new(
            &[2, 16, 1],
            BaselineConfig { epochs: 800, learning_rate: 5e-3, ..BaselineConfig::tiny() },
        );
        head.fit(&features, &labels);
        let scores = head.predict(&features);
        assert!(scores[1] > 0.5 && scores[2] > 0.5, "{scores:?}");
        assert!(scores[0] < 0.5 && scores[3] < 0.5, "{scores:?}");
    }

    #[test]
    fn parameter_count() {
        let head = MlpHead::new(&[10, 20, 1], BaselineConfig::tiny());
        assert_eq!(head.num_parameters(), 10 * 20 + 20 + 20 + 1);
    }

    #[test]
    fn empty_predict() {
        let head = MlpHead::new(&[4, 1], BaselineConfig::tiny());
        assert!(head.predict(&Matrix::zeros(0, 4)).is_empty());
    }

    #[test]
    #[should_panic(expected = "output width")]
    fn rejects_non_logit_output() {
        let _ = MlpHead::new(&[4, 2], BaselineConfig::tiny());
    }
}
