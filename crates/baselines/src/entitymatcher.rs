//! EntityMatcher (Fu et al., IJCAI 2020): hierarchical heterogeneous
//! matching with cross-attribute token alignment.
//!
//! EntityMatcher matches at three levels: every token of one record aligns
//! against every token of the other *across attribute boundaries*
//! (token level), alignment evidence is aggregated per attribute (attribute
//! level), and a wide network combines the attribute summaries (entity
//! level). The cross-attribute alignment is what lets it survive dirty /
//! heterogeneous schemas — and the O(T²) alignment plus a very wide head is
//! why the paper measures it as the slowest, largest baseline (~123M
//! parameters; Fig. 9 runtime table).

use crate::common::{BaselineConfig, EntityMatcherModel, MlpHead};
use adamel_schema::{Domain, EntityPair, Schema};
use adamel_tensor::Matrix;
use adamel_text::{cosine_slices, tokenize_cropped, HashedFastText};

/// Per-attribute aggregation width (mean/max/coverage alignment statistics,
/// each direction).
const ATTR_STATS: usize = 6;

/// The EntityMatcher baseline (full matching model).
pub struct EntityMatcher {
    schema: Schema,
    embedder: HashedFastText,
    head: MlpHead,
    cfg: BaselineConfig,
}

impl EntityMatcher {
    /// Builds EntityMatcher over an aligned schema. The head is deliberately
    /// wide (two hidden layers) to mirror the original's parameter budget
    /// relative to AdaMEL.
    pub fn new(schema: Schema, cfg: BaselineConfig) -> Self {
        let embedder = HashedFastText::new(cfg.embed_dim, cfg.seed);
        let input = schema.len() * ATTR_STATS
            + schema.len() * schema.len()
            + 2 * cfg.embed_dim
            + schema.len() * 2 * cfg.embed_dim;
        let hidden = (cfg.embed_dim * 16).max(96); // very wide entity-level network
        let head = MlpHead::new(&[input, hidden, hidden, 1], cfg.clone());
        Self { schema, embedder, head, cfg }
    }

    /// Token-level cross-attribute alignment features for one pair.
    pub fn features(&self, pair: &EntityPair) -> Vec<f32> {
        let na = self.schema.len();
        // Tokens with their attribute index, across the whole record.
        let collect = |rec: &adamel_schema::Record| -> Vec<(usize, Vec<f32>)> {
            let mut out = Vec::new();
            for (ai, attr) in self.schema.attributes().iter().enumerate() {
                if let Some(v) = rec.get(attr) {
                    for t in tokenize_cropped(v, self.cfg.crop) {
                        out.push((ai, self.embedder.embed_token(&t)));
                    }
                }
            }
            out
        };
        let left = collect(&pair.left);
        let right = collect(&pair.right);

        // Cross-attribute alignment matrix: best token cosine between every
        // attribute pair, plus per-attribute alignment statistics.
        let mut align = vec![0.0f32; na * na];
        let mut stats = vec![0.0f32; na * ATTR_STATS];
        for dir in 0..2 {
            let (from, to) = if dir == 0 { (&left, &right) } else { (&right, &left) };
            // Per source-attribute: mean best alignment, max, coverage>0.7.
            let mut best_per_attr: Vec<Vec<f32>> = vec![Vec::new(); na];
            for (ai, e) in from {
                let mut best = 0.0f32;
                for (bj, o) in to {
                    let c = cosine_slices(e, o).max(0.0);
                    if c > best {
                        best = c;
                    }
                    let cell = &mut align[ai * na + bj];
                    if c > *cell {
                        *cell = c;
                    }
                }
                best_per_attr[*ai].push(best);
            }
            for (ai, bests) in best_per_attr.iter().enumerate() {
                let base = ai * ATTR_STATS + dir * (ATTR_STATS / 2);
                if bests.is_empty() {
                    continue;
                }
                let mean = bests.iter().sum::<f32>() / bests.len() as f32;
                let max = bests.iter().copied().fold(0.0f32, f32::max);
                let coverage =
                    bests.iter().filter(|&&b| b > 0.7).count() as f32 / bests.len() as f32;
                stats[base] = mean;
                stats[base + 1] = max;
                stats[base + 2] = coverage;
            }
        }

        // Entity-level bag summaries.
        let bag = |tokens: &[(usize, Vec<f32>)]| -> Vec<f32> {
            let d = self.cfg.embed_dim;
            let mut acc = vec![0.0f32; d];
            for (_, e) in tokens {
                for (a, v) in acc.iter_mut().zip(e) {
                    *a += v;
                }
            }
            let n = (tokens.len().max(1)) as f32;
            acc.iter_mut().for_each(|v| *v /= n);
            acc
        };
        let mut row = stats;
        row.extend(align);
        row.extend(bag(&left));
        row.extend(bag(&right));
        // Per-attribute token-level representations: the attribute-level
        // matching layer consumes raw (summed) token embeddings per side, so
        // the entity-level network learns source-domain token content — the
        // distribution dependence the paper's C3 analysis exposes.
        let d = self.cfg.embed_dim;
        for ai in 0..na {
            for side in [&left, &right] {
                let mut acc = vec![0.0f32; d];
                let mut n = 0usize;
                for (a, e) in side {
                    if *a == ai {
                        for (x, v) in acc.iter_mut().zip(e) {
                            *x += v;
                        }
                        n += 1;
                    }
                }
                if n > 0 {
                    acc.iter_mut().for_each(|v| *v /= n as f32);
                } else {
                    acc.copy_from_slice(self.embedder.missing_vector().as_slice());
                }
                row.extend(acc);
            }
        }
        row
    }

    fn encode(&self, pairs: &[EntityPair]) -> Matrix {
        let na = self.schema.len();
        let width =
            na * ATTR_STATS + na * na + 2 * self.cfg.embed_dim + na * 2 * self.cfg.embed_dim;
        let mut data = Vec::with_capacity(pairs.len() * width);
        for p in pairs {
            data.extend(self.features(p));
        }
        Matrix::from_vec(pairs.len(), width, data)
    }
}

impl EntityMatcherModel for EntityMatcher {
    fn name(&self) -> &'static str {
        "EntityMatcher"
    }

    fn fit(&mut self, train: &Domain) {
        let features = self.encode(&train.pairs);
        self.head.fit(&features, &train.labels());
    }

    fn predict(&self, pairs: &[EntityPair]) -> Vec<f32> {
        self.head.predict(&self.encode(pairs))
    }

    fn num_parameters(&self) -> usize {
        self.head.num_parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{Record, SourceId};

    fn schema() -> Schema {
        Schema::new(vec!["artist".into(), "title".into()])
    }

    #[test]
    fn cross_attribute_alignment_sees_swapped_columns() {
        // The value lives under `artist` on one side and `title` on the
        // other; cross-attribute alignment should still find it.
        let m = EntityMatcher::new(schema(), BaselineConfig::tiny());
        let mut a = Record::new(SourceId(0), 1);
        a.set("artist", "hey jude");
        let mut b = Record::new(SourceId(1), 1);
        b.set("title", "hey jude");
        let f = m.features(&EntityPair::labeled(a, b, true));
        // Alignment matrix cell (artist -> title) should be ~1.
        let na = 2;
        let artist_idx = 0;
        let title_idx = 1;
        let align_base = na * ATTR_STATS;
        let cell = f[align_base + artist_idx * na + title_idx];
        assert!(cell > 0.95, "cross-attribute alignment {cell}");
    }

    #[test]
    fn is_largest_baseline_by_parameters() {
        let em = EntityMatcher::new(schema(), BaselineConfig::tiny());
        let dm = crate::deepmatcher::DeepMatcher::new(schema(), BaselineConfig::tiny());
        assert!(
            em.num_parameters() > dm.num_parameters(),
            "EntityMatcher {} <= DeepMatcher {}",
            em.num_parameters(),
            dm.num_parameters()
        );
    }

    #[test]
    fn learns_and_predicts_in_range() {
        let mut m = EntityMatcher::new(schema(), BaselineConfig::tiny());
        let mut train = Vec::new();
        for i in 0..8u64 {
            let mut a = Record::new(SourceId(0), i);
            a.set("title", format!("melody {i}"));
            let mut b = Record::new(SourceId(1), i);
            b.set("title", format!("melody {i}"));
            train.push(EntityPair::labeled(a.clone(), b, true));
            let mut c = Record::new(SourceId(1), i + 50);
            c.set("title", format!("noise {}", i + 9));
            train.push(EntityPair::labeled(a, c, false));
        }
        m.fit(&Domain::new(train.clone()));
        for s in m.predict(&train) {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
