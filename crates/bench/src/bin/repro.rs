//! `repro` — regenerates every table and figure of the AdaMEL paper.
//!
//! ```text
//! repro --exp all                 # everything (45-60 min single-core)
//! repro --exp table9 --runs 1     # one experiment, single run
//! repro --exp fig8 --scale smoke  # fast smoke scale
//! repro --list
//! ```
//!
//! CSV artifacts land in `results/` (override with `--out DIR`).

use adamel_bench::experiments::{
    ablation, adaptation, attention, data_analysis, monitor_comparison, music_comparison,
    single_domain, stability, support, Ctx,
};
use adamel_bench::Scale;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig6-music", "Fig. 6 / Table 9: music MEL comparison (also: table9)"),
    ("table8", "Table 8: Monitor MEL comparison"),
    ("fig7", "Fig. 7: t-SNE of attention vectors at lambda 0 vs 0.98"),
    ("fig8", "Fig. 8: PRAUC vs lambda (zero & hyb)"),
    ("table4", "Table 4: learned top-5 feature importances"),
    ("table5", "Table 5: top attributes vs others vs all"),
    ("table6", "Table 6: contrastive feature ablation"),
    ("table7", "Table 7: single-domain F1 on benchmark datasets"),
    ("fig9", "Fig. 9: incremental sources stability + runtime table"),
    ("fig10", "Fig. 10: support set size sensitivity"),
    ("fig11", "Fig. 11: per-attribute missing-value analysis"),
    ("fig12", "Fig. 12: prod_type token distribution shift"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = String::from("all");
    let mut scale = Scale::standard();
    let mut out_dir = Some(std::path::PathBuf::from("results"));
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage("--exp needs a value"));
            }
            "--runs" => {
                i += 1;
                scale.runs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a positive integer"));
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::smoke(),
                    Some("standard") => Scale::standard(),
                    _ => usage("--scale is 'smoke' or 'standard'"),
                };
            }
            "--out" => {
                i += 1;
                out_dir = Some(std::path::PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage("--out needs a path")),
                ));
            }
            "--no-csv" => out_dir = None,
            "--list" => {
                for (name, desc) in EXPERIMENTS {
                    println!("{name:<12} {desc}");
                }
                return;
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let ctx = Ctx::new(scale, out_dir);
    let t0 = std::time::Instant::now();
    let run_one = |name: &str, ctx: &Ctx| match name {
        "fig6-music" | "table9" | "fig6" => {
            music_comparison::run(ctx);
        }
        "table8" => {
            monitor_comparison::run(ctx);
        }
        "fig7" => {
            adaptation::run_fig7(ctx);
        }
        "fig8" => {
            adaptation::run_fig8(ctx);
        }
        "table4" => {
            attention::run_table4(ctx);
        }
        "table5" => {
            attention::run_table5(ctx);
        }
        "table6" => {
            ablation::run(ctx);
        }
        "table7" => {
            single_domain::run(ctx);
        }
        "fig9" => {
            stability::run(ctx);
        }
        "fig10" => {
            support::run(ctx);
        }
        "fig11" => {
            data_analysis::run_fig11(ctx);
        }
        "fig12" => {
            data_analysis::run_fig12(ctx);
        }
        other => usage(&format!("unknown experiment {other}; use --list")),
    };

    if exp == "all" {
        for (name, _) in EXPERIMENTS {
            println!("\n================ {name} ================");
            let t = std::time::Instant::now();
            run_one(name, &ctx);
            println!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
        }
    } else {
        run_one(&exp, &ctx);
    }
    println!("\nTotal: {:.1}s", t0.elapsed().as_secs_f64());
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: repro [--exp NAME|all] [--runs N] [--scale smoke|standard] [--out DIR] [--no-csv] [--list]");
    std::process::exit(2);
}
