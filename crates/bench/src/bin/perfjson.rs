//! Emits `BENCH_parallel.json` (or `--out <path>`): serial-vs-parallel
//! timings for the matmul kernels (with achieved GFLOP/s per row), batch
//! pair encoding, and end-to-end prediction at 1/2/4/8 worker threads —
//! the latter measured both through the compiled inference plan
//! (`predict_plan`, also the headline `predict` row) and the historical
//! graph-per-chunk tape path (`predict_tape`). Pair encoding is measured three
//! ways — `encode_pairs_cold` (record-level cache dropped before every
//! run), `encode_pairs` (the headline warm row), and `encode_pairs_cached`
//! (explicit warm phase whose hit/miss deltas feed the `"cache"` section:
//! hit-rate, distinct-record count, interned-token count). A `serve_latency`
//! row measures one `POST /link` round-trip through an in-process
//! `adamel-serve` daemon over a loopback socket, and `encode_build_cold`
//! isolates the vocabulary-build phase (intern + embed) from scratch.
//!
//! Every row also carries a `peak_bytes` column: after the timed reps
//! (tracing forced off), one untimed probe run at forced `spans` level
//! resets the memory-ledger peaks, reruns the workload, and reads
//! `mem::peak_total()`. A top-level `"mem"` section (`adamel-mem/v1`)
//! summarizes the max row peak and the final per-gauge peaks;
//! `adamel-report validate-bench --mem-baseline` gates on both.
//!
//! Thread counts are forced with [`parallel::with_threads`], which also
//! bypasses the serial-fallback FLOP threshold, so every row measures the
//! dispatch path it claims to. `host_parallelism` is recorded because
//! speedups are only meaningful relative to the physical cores available —
//! on a single-core container every multi-thread row just measures dispatch
//! overhead.
//!
//! With `--obs`, an instrumented exercise pass (encode, chunked predict,
//! attention, a small AdaMEL-hyb training run, and a `Linker::link` call)
//! runs after the timed benches and its `adamel-obs` span report is embedded
//! under the `"obs"` key. Timed benches always run with tracing forced off
//! so `ADAMEL_TRACE=full` cannot pollute the numbers; the exercise pass uses
//! the environment level (bumped to `full` if tracing is off).

use adamel::config::{AdamelConfig, Variant};
use adamel::model::AdamelModel;
use adamel::pipeline::{Linker, LinkerConfig};
use adamel::train::fit;
use adamel_schema::{Domain, EntityPair, Record, Schema, SourceId};
use adamel_tensor::{parallel, sanitize, Matrix};
use rand::{Rng, SeedableRng};
use std::time::Instant;

const THREADS: &[usize] = &[1, 2, 4, 8];
const MATMUL_M: usize = 4096;
const NUM_PAIRS: usize = 10_000;

/// `--smoke` sizes: same schema, small enough for a CI smoke test that
/// only checks the JSON shape, not the timings.
const SMOKE_THREADS: &[usize] = &[1, 2];
const SMOKE_MATMUL_M: usize = 128;
const SMOKE_NUM_PAIRS: usize = 200;

struct Row {
    kernel: &'static str,
    n: usize,
    threads: usize,
    ms: f64,
    /// Arithmetic work per run; 0 for rows that are not compute kernels
    /// (encoding, overhead pairs). Nonzero rows get a `gflops` column.
    flops: u64,
    /// Summed mem-gauge high-water mark of one untimed probe run (see
    /// [`bench()`]); the `adamel-report` memory gate trends this column.
    peak_bytes: u64,
}

/// Best-of-`reps` wall time in milliseconds, with one untimed warm-up.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One untimed probe run of `f` at `Spans` level, returning the summed
/// mem-gauge high-water mark it produced. Peaks are windowed per probe
/// ([`adamel_obs::mem::reset_peaks`]), and the forced level is restored
/// to `Off` afterwards so timed reps never pay for the ledger.
fn probe_peak_bytes(mut f: impl FnMut()) -> u64 {
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Spans));
    adamel_obs::mem::reset_peaks();
    f();
    let peak = adamel_obs::mem::peak_total();
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Off));
    peak
}

/// Times `f` (tracing off) and then probes its memory footprint (one
/// extra run at `Spans`): the standard measurement for one bench row.
fn bench(reps: usize, mut f: impl FnMut()) -> (f64, u64) {
    let ms = time_ms(reps, &mut f);
    let peak_bytes = probe_peak_bytes(f);
    (ms, peak_bytes)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut rand::rngs::StdRng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// 13-attribute schema with short multi-word values, mirroring the paper's
/// Adobe-domain attribute count.
fn synth_pairs(n: usize) -> (Schema, Vec<EntityPair>) {
    let attrs: Vec<String> = (0..13).map(|i| format!("attr{i:02}")).collect();
    let schema = Schema::new(attrs.clone());
    let vocab = [
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliet", "kilo", "lima", "mike", "november", "oscar", "papa",
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut pairs = Vec::with_capacity(n);
    for i in 0..n {
        let mut left = Record::new(SourceId(0), i as u64);
        let mut right = Record::new(SourceId(1), i as u64);
        for attr in &attrs {
            // ~10% of attribute values are missing on each side.
            if rng.gen_range(0u32..10) > 0 {
                let words: Vec<&str> =
                    (0..3).map(|_| vocab[rng.gen_range(0usize..vocab.len())]).collect();
                left.set(attr, words.join(" "));
                // Half the pairs share the value; half perturb one word.
                let mut rwords = words.clone();
                if rng.gen_range(0u32..2) == 0 {
                    rwords[0] = vocab[rng.gen_range(0usize..vocab.len())];
                }
                right.set(attr, rwords.join(" "));
            }
        }
        pairs.push(EntityPair::unlabeled(left, right));
    }
    (schema, pairs)
}

/// Runs every instrumented hot path once so the `--obs` report covers the
/// encode, attention, classifier, train-epoch, predict, and linking spans:
/// a small AdaMEL-hyb training run on a separable toy task, a chunked
/// (>512-row) predict over the synthetic paper-shaped pairs, an attention
/// pass, and an end-to-end `Linker::link` call.
fn run_obs_exercise(chunk_model: &AdamelModel, pairs: &[EntityPair]) {
    // Chunked predict + attention on the 13-attribute synthetic pairs
    // (600 rows > the 512-row chunk size, so the chunked path is exercised).
    let sample = &pairs[..600.min(pairs.len())];
    std::hint::black_box(chunk_model.predict(sample));
    std::hint::black_box(chunk_model.attention(&sample[..16.min(sample.len())]));

    // A tiny labeled task (same shape as the training unit tests) drives
    // the per-epoch telemetry: base/KL/support loss components, support
    // weights, and grad norms at `full`.
    let names = ["alpha beta", "gamma delta", "epsilon zeta", "eta theta", "iota kappa"];
    let rec = |source: u32, id: u64, name: &str| {
        let mut r = Record::new(SourceId(source), id);
        r.set("name", name);
        r
    };
    let mut train = Vec::new();
    let mut id = 0u64;
    for n in names {
        train.push(EntityPair::labeled(rec(0, id, n), rec(1, id, n), true));
        id += 1;
    }
    for (i, n) in names.iter().enumerate() {
        let other = names[(i + 1) % names.len()];
        train.push(EntityPair::labeled(rec(0, id, n), rec(1, id + 1, other), false));
        id += 2;
    }
    let target = Domain::new(
        train.iter().map(|p| EntityPair::unlabeled(p.left.clone(), p.right.clone())).collect(),
    );
    let support = Domain::new(train[..4].to_vec());
    let schema = Schema::new(vec!["name".into()]);
    let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
    fit(&mut model, Variant::Hyb, &Domain::new(train), Some(&target), Some(&support));

    // End-to-end linking: blocking + batch scoring + thresholding.
    let left: Vec<Record> =
        names.iter().enumerate().map(|(i, n)| rec(0, 100 + i as u64, n)).collect();
    let right: Vec<Record> =
        names.iter().enumerate().map(|(i, n)| rec(1, 200 + i as u64, n)).collect();
    let linker = Linker::new(model, LinkerConfig::default());
    std::hint::black_box(linker.link(&left, &right));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_parallel.json");
    let mut obs_mode = false;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--obs" => obs_mode = true,
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => {
                        eprintln!("perfjson: --out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "perfjson: unknown argument `{other}` (expected --obs, --smoke, --out <path>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let threads: &[usize] = if smoke { SMOKE_THREADS } else { THREADS };
    let matmul_m = if smoke { SMOKE_MATMUL_M } else { MATMUL_M };
    let num_pairs = if smoke { SMOKE_NUM_PAIRS } else { NUM_PAIRS };

    // Timed benches run with tracing forced off: a `full`-level environment
    // would otherwise add per-op span recording to every measured row.
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Off));

    let mut rows: Vec<Row> = Vec::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // --- matmul kernels at paper-scale inner dims (300 -> 256) ---
    let a = random_matrix(matmul_m, 300, &mut rng);
    let b = random_matrix(300, 256, &mut rng);
    let b_t = random_matrix(256, 300, &mut rng);
    let a_tall = random_matrix(matmul_m, 256, &mut rng);
    // All three variants compute an (m x 300)·(300 x 256)-shaped product.
    let gemm_flops = 2 * matmul_m as u64 * 300 * 256;
    for &t in threads {
        let (ms, peak_bytes) = bench(3, || {
            parallel::with_threads(t, || std::hint::black_box(a.matmul(&b)));
        });
        rows.push(Row {
            kernel: "matmul",
            n: matmul_m,
            threads: t,
            ms,
            flops: gemm_flops,
            peak_bytes,
        });
    }
    for &t in threads {
        let (ms, peak_bytes) = bench(3, || {
            parallel::with_threads(t, || std::hint::black_box(a.matmul_tn(&a_tall)));
        });
        rows.push(Row {
            kernel: "matmul_tn",
            n: matmul_m,
            threads: t,
            ms,
            flops: gemm_flops,
            peak_bytes,
        });
    }
    for &t in threads {
        let (ms, peak_bytes) = bench(3, || {
            parallel::with_threads(t, || std::hint::black_box(a.matmul_nt(&b_t)));
        });
        rows.push(Row {
            kernel: "matmul_nt",
            n: matmul_m,
            threads: t,
            ms,
            flops: gemm_flops,
            peak_bytes,
        });
    }

    // --- pair encoding and end-to-end prediction at paper dims ---
    let (schema, pairs) = synth_pairs(num_pairs);
    let model = AdamelModel::new(AdamelConfig::paper(), schema.clone());
    let extractor = model.extractor().clone();
    // Cold: the record-level cache is dropped before every run, so each
    // measurement pays full tokenize/hash/embed for every distinct record.
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            extractor.clear_cache();
            parallel::with_threads(t, || std::hint::black_box(extractor.encode_pairs(&pairs)));
        });
        rows.push(Row {
            kernel: "encode_pairs_cold",
            n: num_pairs,
            threads: t,
            ms,
            flops: 0,
            peak_bytes,
        });
    }
    // Cold vocabulary build in isolation: intern a batch of distinct
    // tokens into a fresh `TokenVocab` and compute every embedding row.
    // This is the `encode.embed_hash` hot spot (n-gram hashing per
    // first-seen token) without the rest of the encode pipeline, so cold
    // builds can be trended independently of cache behaviour.
    let build_tokens: Vec<String> =
        (0..if smoke { 500 } else { 5000 }).map(|i| format!("token{i:05}")).collect();
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            let mut vocab = adamel_text::TokenVocab::new(adamel_text::HashedFastText::new(300, 7));
            for tok in &build_tokens {
                vocab.intern_deferred(tok);
            }
            parallel::with_threads(t, || vocab.compute_pending());
            std::hint::black_box(vocab.len());
        });
        rows.push(Row {
            kernel: "encode_build_cold",
            n: build_tokens.len(),
            threads: t,
            ms,
            flops: 0,
            peak_bytes,
        });
    }
    // Warm the cache once, then measure the pure cached path. The headline
    // `encode_pairs` row also measures warm (time_ms warms up before
    // timing), keeping it comparable across pre/post-cache revisions.
    extractor.clear_cache();
    std::hint::black_box(extractor.encode_pairs(&pairs));
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            parallel::with_threads(t, || std::hint::black_box(extractor.encode_pairs(&pairs)));
        });
        rows.push(Row {
            kernel: "encode_pairs",
            n: num_pairs,
            threads: t,
            ms,
            flops: 0,
            peak_bytes,
        });
    }
    // Stats deltas around the cached phase give the report's hit-rate: with
    // a working cache every record reference here is a hit (rate 1.0).
    let cache_before = extractor.cache_stats();
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            parallel::with_threads(t, || std::hint::black_box(extractor.encode_pairs(&pairs)));
        });
        rows.push(Row {
            kernel: "encode_pairs_cached",
            n: num_pairs,
            threads: t,
            ms,
            flops: 0,
            peak_bytes,
        });
    }
    let cache_after = extractor.cache_stats();
    let warm_hits = cache_after.hits - cache_before.hits;
    let warm_misses = cache_after.misses - cache_before.misses;
    let warm_hit_rate = if warm_hits + warm_misses == 0 {
        0.0
    } else {
        warm_hits as f64 / (warm_hits + warm_misses) as f64
    };
    let encoded = extractor.encode_pairs(&pairs);
    let predict_flops = num_pairs as u64 * model.per_row_flops() as u64;
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            parallel::with_threads(t, || std::hint::black_box(model.predict_encoded(&encoded)));
        });
        rows.push(Row {
            kernel: "predict",
            n: num_pairs,
            threads: t,
            ms,
            flops: predict_flops,
            peak_bytes,
        });
    }

    // --- compiled-plan vs tape inference pair: `predict` above routes
    // through the plan, so `predict_plan` re-measures the same path under
    // its explicit name and `predict_tape` measures the historical
    // graph-per-chunk path. The bench gate requires plan <= tape * 1.10. ---
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            parallel::with_threads(t, || std::hint::black_box(model.predict_encoded(&encoded)));
        });
        rows.push(Row {
            kernel: "predict_plan",
            n: num_pairs,
            threads: t,
            ms,
            flops: predict_flops,
            peak_bytes,
        });
    }
    for &t in threads {
        let (ms, peak_bytes) = bench(1, || {
            parallel::with_threads(t, || {
                std::hint::black_box(model.predict_encoded_tape(&encoded))
            });
        });
        rows.push(Row {
            kernel: "predict_tape",
            n: num_pairs,
            threads: t,
            ms,
            flops: predict_flops,
            peak_bytes,
        });
    }

    // --- sanitizer overhead pair: the same single-thread prediction with
    // the numerics sanitizer forced off vs on. Off must be indistinguishable
    // from the plain predict row (one predictable branch per tape op); on
    // pays one extra pass over each op's output. ---
    sanitize::set_forced(Some(false));
    let (sanitize_off_ms, sanitize_off_peak) = bench(3, || {
        parallel::with_threads(1, || std::hint::black_box(model.predict_encoded(&encoded)));
    });
    rows.push(Row {
        kernel: "predict_sanitize_off",
        n: num_pairs,
        threads: 1,
        ms: sanitize_off_ms,
        flops: 0,
        peak_bytes: sanitize_off_peak,
    });
    sanitize::set_forced(Some(true));
    let (sanitize_on_ms, sanitize_on_peak) = bench(3, || {
        parallel::with_threads(1, || std::hint::black_box(model.predict_encoded(&encoded)));
    });
    rows.push(Row {
        kernel: "predict_sanitize_on",
        n: num_pairs,
        threads: 1,
        ms: sanitize_on_ms,
        flops: 0,
        peak_bytes: sanitize_on_peak,
    });
    sanitize::set_forced(None);

    // --- trace overhead pair: the same prediction with observability off vs
    // `full`. Off must be indistinguishable from plain predict (one relaxed
    // atomic load per probe); full pays a span per tape op. ---
    let (trace_off_ms, trace_off_peak) = bench(3, || {
        parallel::with_threads(1, || std::hint::black_box(model.predict_encoded(&encoded)));
    });
    rows.push(Row {
        kernel: "predict_trace_off",
        n: num_pairs,
        threads: 1,
        ms: trace_off_ms,
        flops: 0,
        peak_bytes: trace_off_peak,
    });
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Full));
    let trace_full_ms = time_ms(3, || {
        parallel::with_threads(1, || std::hint::black_box(model.predict_encoded(&encoded)));
    });
    let trace_full_peak = probe_peak_bytes(|| {
        parallel::with_threads(1, || std::hint::black_box(model.predict_encoded(&encoded)));
    });
    rows.push(Row {
        kernel: "predict_trace_full",
        n: num_pairs,
        threads: 1,
        ms: trace_full_ms,
        flops: 0,
        peak_bytes: trace_full_peak,
    });
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Off));

    // --- served link latency: one `POST /link` round-trip over a real
    // socket through the `adamel-serve` daemon — HTTP parse, LiveIndex
    // blocking, CompiledPlan scoring, JSONL response. Measured at a fixed
    // batch size on a loopback connection per rep, so the row tracks the
    // daemon's end-to-end overhead on top of the `predict` rows above. ---
    let serve_batch = if smoke { 4 } else { 16 };
    let serve_corpus = if smoke { 64 } else { 512 };
    let (serve_ms, serve_peak) = {
        use adamel_serve::{Engine, EngineConfig, RecordLine, Server, ServerConfig};
        use std::io::{Read as _, Write as _};
        let serve_model = AdamelModel::new(AdamelConfig::paper(), schema.clone());
        // The synthetic schema has no "name" attribute; block on attr00 so
        // candidates actually exist.
        let cfg = LinkerConfig { block_attrs: vec!["attr00".into()], ..LinkerConfig::default() };
        let engine = std::sync::Arc::new(Engine::new(
            Linker::new(serve_model, cfg),
            EngineConfig::default(),
        ));
        engine.upsert(pairs[..serve_corpus].iter().map(|p| p.right.clone()).collect());
        let server = Server::start(engine, ServerConfig::default())
            .unwrap_or_else(|e| panic!("serve bench: bind: {e}"));
        let addr = server.addr();
        let body: String = pairs[..serve_batch]
            .iter()
            .map(|p| {
                let line = RecordLine {
                    source: p.left.source.0,
                    entity_id: p.left.entity_id,
                    values: p.left.values.clone(),
                };
                line.to_json() + "\n"
            })
            .collect();
        let (ms, peak) = bench(if smoke { 2 } else { 5 }, || {
            let mut s = std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("serve bench: connect: {e}"));
            write!(
                s,
                "POST /link HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .unwrap_or_else(|e| panic!("serve bench: send: {e}"));
            let mut response = String::new();
            s.read_to_string(&mut response).unwrap_or_else(|e| panic!("serve bench: recv: {e}"));
            assert!(response.starts_with("HTTP/1.1 200"), "serve bench: {response}");
            std::hint::black_box(response.len());
        });
        server.shutdown().unwrap_or_else(|e| panic!("serve bench: shutdown: {e}"));
        (ms, peak)
    };
    rows.push(Row {
        kernel: "serve_latency",
        n: serve_batch,
        threads: 1,
        ms: serve_ms,
        flops: 0,
        peak_bytes: serve_peak,
    });

    // --- optional instrumented exercise pass (--obs) ---
    let obs_json = if obs_mode {
        // Hand control back to ADAMEL_TRACE; bump to `full` if that leaves
        // tracing off, so `--obs` alone still produces a useful report.
        adamel_obs::set_forced(None);
        if !adamel_obs::enabled() {
            adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Full));
        }
        adamel_obs::report::reset();
        run_obs_exercise(&model, &pairs);
        let json = adamel_obs::report::render_json();
        adamel_obs::set_forced(None);
        Some(json)
    } else {
        None
    };

    // --- emit JSON (hand-written: no serialization dependency) ---
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"host_parallelism\": {},\n", parallel::host_parallelism()));
    out.push_str(&format!(
        "  \"sanitize\": {{\"off_ms\": {:.3}, \"on_ms\": {:.3}, \"on_over_off\": {:.3}}},\n",
        sanitize_off_ms,
        sanitize_on_ms,
        if sanitize_off_ms > 0.0 { sanitize_on_ms / sanitize_off_ms } else { 1.0 }
    ));
    out.push_str(&format!(
        "  \"trace\": {{\"off_ms\": {:.3}, \"full_ms\": {:.3}, \"full_over_off\": {:.3}}},\n",
        trace_off_ms,
        trace_full_ms,
        if trace_off_ms > 0.0 { trace_full_ms / trace_off_ms } else { 1.0 }
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}, \"distinct_records\": {}, \"interned_tokens\": {}}},\n",
        warm_hits,
        warm_misses,
        warm_hit_rate,
        cache_after.distinct_records,
        cache_after.interned_tokens
    ));
    // Memory summary: the largest per-row probe peak plus the final gauge
    // snapshot (probe runs populate the ledger even though timed reps stay
    // at forced Off, so this section never needs --obs).
    let max_row_peak = rows.iter().map(|r| r.peak_bytes).max().unwrap_or(0);
    out.push_str(&format!(
        "  \"mem\": {{\"schema\": \"adamel-mem/v1\", \"max_row_peak_bytes\": {max_row_peak}, \"gauges\": {{"
    ));
    for (i, (name, gauge)) in adamel_obs::mem::snapshot().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\"{}\": {{\"current\": {}, \"peak\": {}}}",
            adamel_obs::json::escape(name),
            gauge.current,
            gauge.peak
        ));
    }
    out.push_str("}},\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let base = rows
            .iter()
            .find(|q| q.kernel == r.kernel && q.threads == 1)
            .map(|q| q.ms)
            .unwrap_or(r.ms);
        let speedup = if r.ms > 0.0 { base / r.ms } else { 1.0 };
        let gflops = if r.flops > 0 && r.ms > 0.0 { r.flops as f64 / (r.ms * 1e6) } else { 0.0 };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"threads\": {}, \"ms\": {:.3}, \"speedup\": {:.3}, \"gflops\": {:.3}, \"peak_bytes\": {}}}{}\n",
            r.kernel,
            r.n,
            r.threads,
            r.ms,
            speedup,
            gflops,
            r.peak_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(obs) = obs_json {
        out.push_str(",\n  \"obs\": ");
        out.push_str(&obs);
    }
    out.push_str("\n}\n");

    std::fs::write(&out_path, &out).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    print!("{out}");
    eprintln!("wrote {out_path}");
}
