//! `adamel-report`: run-ledger tooling for the `adamel-runlog/v1` JSONL
//! files produced under `ADAMEL_RUNLOG` (or a forced sink).
//!
//! Subcommands:
//!
//! * `gen --out PATH [--seed N] [--epochs N] [--perturb]` — run a seeded,
//!   deterministic Monitor-world experiment (train, evaluate, drift-assess,
//!   link) with the ledger enabled and write it to `PATH`. `--perturb`
//!   deliberately undertrains so the resulting ledger regresses — the CI
//!   gate uses it to prove the diff actually fails.
//! * `validate PATH` — parse every line, check the schema tag and that
//!   `seq` increases strictly.
//! * `summary PATH` — human-readable digest: manifest, final losses,
//!   metrics, drift warnings, link stats, and span quantiles reconstructed
//!   from the embedded `adamel-obs` report.
//! * `diff A B [--threshold T] [--mem-threshold M]` — compare two
//!   ledgers. Metric deltas gate (exit 1 when a metric regresses by more
//!   than `T`, default 0.02); memory-gauge peaks from the embedded obs
//!   reports gate too (exit 1 when a gauge's peak grows by more than the
//!   `M` fraction, default 0.25); drift warning counts and span times are
//!   reported informationally.
//! * `validate-bench PATH [--mem-baseline BASE] [--mem-threshold M]` —
//!   gate a `perfjson` BENCH JSON on the encoding-cache contract:
//!   `encode_pairs_cold` / `encode_pairs` / `encode_pairs_cached` rows
//!   present with finite timings, warm-phase hit-rate ≥ 0.99, non-empty
//!   cache contents, and the cached path no slower than cold. Every row
//!   must carry a `peak_bytes` column and the document a `"mem"` summary;
//!   with `--mem-baseline`, each kernel's peak bytes are compared against
//!   the baseline BENCH JSON and a growth beyond the `M` fraction
//!   (default 0.25) fails the gate.
//!
//! Exit codes: 0 ok, 1 gate failure (diff regression / bench contract
//! violation), 2 usage / IO / parse error.

use adamel::drift::{DriftBaseline, DriftMonitor};
use adamel::{evaluate_f1, evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel::{Linker, LinkerConfig};
use adamel_data::{make_mel_split, MonitorConfig, MonitorWorld, Scenario, SplitCounts};
use adamel_obs::json::Json;
use adamel_obs::{runlog, Histogram, TraceLevel};
use adamel_schema::Record;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "adamel-report: run-ledger tooling\n\
         usage:\n\
         \x20 adamel-report gen --out PATH [--seed N] [--epochs N] [--perturb]\n\
         \x20 adamel-report validate PATH\n\
         \x20 adamel-report summary PATH\n\
         \x20 adamel-report diff A B [--threshold T] [--mem-threshold M]\n\
         \x20 adamel-report validate-bench PATH [--mem-baseline BASE] [--mem-threshold M]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("validate-bench") => cmd_validate_bench(&args[1..]),
        _ => usage(),
    }
}

// ---------------------------------------------------------------- gen ----

fn cmd_gen(args: &[String]) -> ExitCode {
    let mut out: Option<String> = None;
    let mut seed = 7u64;
    let mut epochs = 40usize;
    let mut perturb = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
            }
            "--epochs" => {
                i += 1;
                epochs = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
            }
            "--perturb" => perturb = true,
            _ => return usage(),
        }
        i += 1;
    }
    let Some(out) = out else { return usage() };
    if perturb {
        // Undertrain: the attention head and classifier barely move off
        // their seeded initialization, so PR-AUC/F1 drop well below the
        // converged run and the diff gate must flag it.
        epochs = 1;
    }

    runlog::set_forced_path(Some(&out));
    adamel_obs::set_forced(Some(TraceLevel::Spans));
    adamel_obs::report::reset();

    let world = MonitorWorld::generate(&MonitorConfig::tiny(), seed);
    let seen = world.seen_sources();
    let unseen = world.unseen_sources();
    let split = make_mel_split(
        &world.records_for(None),
        "page_title",
        &seen,
        &unseen,
        Scenario::Disjoint,
        &SplitCounts::tiny(),
        seed,
    );

    let cfg = AdamelConfig { epochs, seed, ..AdamelConfig::tiny() };
    let mut model = AdamelModel::new(cfg, world.schema().clone());
    fit(&mut model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));

    let prauc = evaluate_prauc(&model, &split.test);
    let f1 = evaluate_f1(&model, &split.test);

    let pool = world.records_for(Some(&seen));
    let baseline = DriftBaseline::build_with_pool(&model, &split.train, &pool);
    let monitor = DriftMonitor::new(baseline);
    let drifts = monitor.assess(&model, &split.test);
    let mut warnings = 0usize;
    for d in &drifts {
        warnings += d.warnings.len();
        d.emit_runlog();
    }

    // One end-to-end linking pass over two unseen sources exercises the
    // per-link-batch ledger event.
    let left: Vec<Record> = world.records_for(Some(&unseen[..1]));
    let right: Vec<Record> = world.records_for(Some(&unseen[1..2]));
    let linker_cfg = LinkerConfig { block_attrs: vec!["page_title".into()], ..Default::default() };
    let matches = Linker::new(model, linker_cfg).link(&left, &right).len();

    // Embed the span report (compacted to one line) so `summary`/`diff`
    // can show where the time went.
    let compact: String = adamel_obs::report::render_json().lines().map(str::trim).collect();
    runlog::event("obs_report").raw("report", &compact).emit();
    runlog::flush();
    adamel_obs::set_forced(None);
    runlog::set_forced_path(Some("")); // stop logging before we exit

    println!(
        "wrote {out}: seed {seed}, epochs {epochs}, pr_auc {prauc:.4}, best_f1 {f1:.4}, \
         {} drift-assessed sources ({warnings} warnings), {matches} links",
        drifts.len()
    );
    ExitCode::SUCCESS
}

// ------------------------------------------------------------- parsing ----

/// Parses a ledger: every line must be a JSON object carrying the
/// `adamel-runlog/v1` schema tag, an `event` kind, and a strictly
/// increasing `seq`.
fn parse_ledger(path: &str) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events = Vec::new();
    let mut last_seq: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        let v = Json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let schema = v.get("schema").and_then(Json::as_str);
        if schema != Some(runlog::SCHEMA) {
            return Err(format!(
                "{path}:{}: schema {schema:?}, want {:?}",
                lineno + 1,
                runlog::SCHEMA
            ));
        }
        if v.get("event").and_then(Json::as_str).is_none() {
            return Err(format!("{path}:{}: missing event kind", lineno + 1));
        }
        let seq = v
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}:{}: missing seq", lineno + 1))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("{path}:{}: seq {seq} after {prev}", lineno + 1));
            }
        }
        last_seq = Some(seq);
        events.push(v);
    }
    Ok(events)
}

fn kind(e: &Json) -> &str {
    e.get("event").and_then(Json::as_str).unwrap_or("?")
}

/// Last value of each `metric` event, keyed by name.
fn metrics_of(events: &[Json]) -> BTreeMap<String, (f64, bool)> {
    let mut out = BTreeMap::new();
    for e in events.iter().filter(|e| kind(e) == "metric") {
        let (Some(name), Some(value)) =
            (e.get("name").and_then(Json::as_str), e.get("value").and_then(Json::as_f64))
        else {
            continue;
        };
        let higher = e.get("higher_is_better").and_then(Json::as_bool).unwrap_or(true);
        out.insert(name.to_string(), (value, higher));
    }
    out
}

/// Drift warning counts per signal name.
fn warns_of(events: &[Json]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for e in events.iter().filter(|e| kind(e) == "warn") {
        if let Some(sig) = e.get("signal").and_then(Json::as_str) {
            *out.entry(sig.to_string()).or_insert(0) += 1;
        }
    }
    out
}

/// Span name → (count, total_ms, histogram rebuilt from the bucket triples)
/// from the embedded `obs_report` event, if any.
fn spans_of(events: &[Json]) -> BTreeMap<String, (u64, f64, Histogram)> {
    let mut out = BTreeMap::new();
    let Some(report) =
        events.iter().rev().find(|e| kind(e) == "obs_report").and_then(|e| e.get("report"))
    else {
        return out;
    };
    let Some(spans) = report.get("spans").and_then(Json::as_object) else { return out };
    for (name, span) in spans {
        let count = span.get("count").and_then(Json::as_u64).unwrap_or(0);
        let total_ms = span.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let mut triples = Vec::new();
        if let Some(buckets) = span.get("buckets").and_then(Json::as_array) {
            for b in buckets {
                let Some(t) = b.as_array() else { continue };
                if let (Some(lo), Some(hi), Some(n)) = (
                    t.first().and_then(Json::as_u64),
                    t.get(1).and_then(Json::as_u64),
                    t.get(2).and_then(Json::as_u64),
                ) {
                    triples.push((lo, hi, n));
                }
            }
        }
        out.insert(name.clone(), (count, total_ms, Histogram::from_buckets(&triples)));
    }
    out
}

/// Memory-gauge peaks from the embedded `obs_report` event's `"mem"`
/// section, keyed by gauge name.
fn mems_of(events: &[Json]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(report) =
        events.iter().rev().find(|e| kind(e) == "obs_report").and_then(|e| e.get("report"))
    else {
        return out;
    };
    let Some(gauges) = report.get("mem").and_then(|m| m.get("gauges")).and_then(Json::as_object)
    else {
        return out;
    };
    for (name, gauge) in gauges {
        if let Some(peak) = gauge.get("peak").and_then(Json::as_u64) {
            out.insert(name.clone(), peak);
        }
    }
    out
}

// ---------------------------------------------------------- validate ----

fn cmd_validate(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    match parse_ledger(path) {
        Ok(events) => {
            let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
            for e in &events {
                *by_kind.entry(kind(e)).or_insert(0) += 1;
            }
            let detail: Vec<String> = by_kind.iter().map(|(k, n)| format!("{n} {k}")).collect();
            println!("{path}: {} events ok ({})", events.len(), detail.join(", "));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("adamel-report: {e}");
            ExitCode::from(2)
        }
    }
}

// ----------------------------------------------------------- summary ----

fn cmd_summary(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let events = match parse_ledger(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("adamel-report: {e}");
            return ExitCode::from(2);
        }
    };

    println!("ledger {path}: {} events", events.len());
    if let Some(m) = events.iter().find(|e| kind(e) == "manifest") {
        let field = |k: &str| -> String {
            match m.get(k) {
                Some(Json::Str(s)) => s.clone(),
                Some(v) => v.as_f64().map(|f| format!("{f}")).unwrap_or_default(),
                None => "?".into(),
            }
        };
        println!(
            "manifest: {} seed {} epochs {} threads {} trace {}",
            field("variant"),
            field("seed"),
            field("epochs"),
            field("threads"),
            field("trace"),
        );
    }
    if let Some(e) = events.iter().rev().find(|e| kind(e) == "epoch") {
        let num = |k: &str| e.get(k).and_then(Json::as_f64);
        print!(
            "final epoch {}: loss {:.5}",
            e.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            num("loss").unwrap_or(f64::NAN),
        );
        for (label, key) in [("l_base", "l_base"), ("l_kl", "l_kl"), ("l_support", "l_support")] {
            if let Some(v) = num(key) {
                print!(" {label} {v:.5}");
            }
        }
        if let Some(v) = num("attention_entropy") {
            print!(" attention_entropy {v:.4}");
        }
        println!();
    }
    for (name, (value, higher)) in metrics_of(&events) {
        println!(
            "metric {name}: {value:.4} ({})",
            if higher { "higher better" } else { "lower better" }
        );
    }
    let warns = warns_of(&events);
    if warns.is_empty() {
        println!("drift: no warnings");
    } else {
        for (sig, n) in &warns {
            println!("drift warn {sig}: {n} source(s)");
        }
    }
    for e in events.iter().filter(|e| kind(e) == "link") {
        let int = |k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "link: {} candidates, {} scored, {} matches",
            int("candidates"),
            int("scored"),
            int("matches"),
        );
    }
    let spans = spans_of(&events);
    if !spans.is_empty() {
        println!("spans (from embedded obs report):");
        for (name, (count, total_ms, h)) in &spans {
            let q = |v: Option<u64>| v.map(|n| format!("{n}")).unwrap_or_else(|| "-".into());
            println!(
                "  {name}: count {count} total {total_ms:.3} ms p50 {} p90 {} p99 {} ns",
                q(h.p50()),
                q(h.p90()),
                q(h.p99()),
            );
        }
    }
    ExitCode::SUCCESS
}

// ----------------------------------------------------- validate-bench ----

/// Per-kernel worst-case (maximum) `peak_bytes` across thread counts, or
/// an error when a row lacks the column — the memory side of the bench
/// contract.
fn peaks_of_bench(doc: &Json) -> Result<BTreeMap<String, u64>, Vec<String>> {
    let mut peaks: BTreeMap<String, u64> = BTreeMap::new();
    let mut errors = Vec::new();
    let Some(rows) = doc.get("rows").and_then(Json::as_array) else {
        return Err(vec!["missing rows array".into()]);
    };
    for r in rows {
        let Some(kernel) = r.get("kernel").and_then(Json::as_str) else { continue };
        match r.get("peak_bytes").and_then(Json::as_u64) {
            Some(p) => {
                let e = peaks.entry(kernel.to_string()).or_insert(0);
                *e = (*e).max(p);
            }
            None => errors.push(format!("{kernel}: missing peak_bytes column")),
        }
    }
    if errors.is_empty() {
        Ok(peaks)
    } else {
        Err(errors)
    }
}

/// Gates a `perfjson` BENCH JSON on the encoding-cache contract and the
/// compiled-plan contract: a cache regression (cold-path timings on the warm
/// rows, a broken hit path, an empty cache), a missing/slower-than-tape
/// `predict_plan` row, a missing `serve_latency` row (the daemon round-trip
/// stopped being measured), or a GEMM row with no achieved GFLOP/s fails CI
/// even when the absolute timings still "look fast" on a beefy runner.
/// With `--mem-baseline`, each kernel's `peak_bytes` is additionally gated
/// against the baseline document: growth beyond the `--mem-threshold`
/// fraction (default 0.25) is a memory regression and fails too.
fn cmd_validate_bench(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut mem_baseline: Option<&String> = None;
    let mut mem_threshold = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mem-baseline" => {
                i += 1;
                mem_baseline = args.get(i);
                if mem_baseline.is_none() {
                    return usage();
                }
            }
            "--mem-threshold" => {
                i += 1;
                mem_threshold = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
            }
            _ if path.is_none() => path = Some(&args[i]),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else { return usage() };
    let load = |p: &str| {
        std::fs::read_to_string(p)
            .map_err(|e| format!("{p}: {e}"))
            .and_then(|t| Json::parse(&t).map_err(|e| format!("{p}: {e}")))
    };
    let doc = match load(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("adamel-report: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failures: Vec<String> = Vec::new();

    // Best (minimum) timing and best (maximum) GFLOP/s per kernel across
    // thread counts.
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    let mut best_gflops: BTreeMap<String, f64> = BTreeMap::new();
    match doc.get("rows").and_then(Json::as_array) {
        Some(rows) => {
            for r in rows {
                let (Some(kernel), Some(ms)) =
                    (r.get("kernel").and_then(Json::as_str), r.get("ms").and_then(Json::as_f64))
                else {
                    failures.push("row missing kernel/ms".into());
                    continue;
                };
                if !ms.is_finite() || ms < 0.0 {
                    failures.push(format!("{kernel}: bad ms {ms}"));
                    continue;
                }
                let e = best.entry(kernel.to_string()).or_insert(f64::INFINITY);
                *e = e.min(ms);
                if let Some(g) = r.get("gflops").and_then(Json::as_f64) {
                    let e = best_gflops.entry(kernel.to_string()).or_insert(0.0);
                    *e = e.max(g);
                }
            }
        }
        None => failures.push("missing rows array".into()),
    }
    for kernel in [
        "encode_pairs_cold",
        "encode_pairs",
        "encode_pairs_cached",
        "encode_build_cold",
        "serve_latency",
    ] {
        if !best.contains_key(kernel) {
            failures.push(format!("missing {kernel} row"));
        }
    }
    // Compiled-plan contract: both inference paths must be measured, and the
    // plan must not lose to the tape it replaced (10% headroom for jitter).
    for kernel in ["predict_plan", "predict_tape"] {
        if !best.contains_key(kernel) {
            failures.push(format!("missing {kernel} row"));
        }
    }
    if let (Some(&plan), Some(&tape)) = (best.get("predict_plan"), best.get("predict_tape")) {
        if plan > tape * 1.10 {
            failures.push(format!(
                "predict_plan ({plan:.3} ms) slower than predict_tape ({tape:.3} ms) + 10%"
            ));
        }
    }
    // Per-kernel GFLOP/s must be present and nonzero for the GEMM rows — a
    // zero means the flop accounting broke or a kernel took no measurable
    // work, either of which invalidates the perf claims.
    for kernel in ["matmul", "matmul_tn", "matmul_nt"] {
        match best_gflops.get(kernel) {
            Some(&g) if g > 0.0 => {}
            Some(_) => failures.push(format!("{kernel}: gflops is zero")),
            None => failures.push(format!("{kernel}: missing row or gflops field")),
        }
    }
    if let (Some(&cold), Some(&cached)) =
        (best.get("encode_pairs_cold"), best.get("encode_pairs_cached"))
    {
        // The warm path must never cost more than the cold one; 10% headroom
        // absorbs timer jitter on tiny --smoke workloads.
        if cached > cold * 1.10 {
            failures
                .push(format!("cached encode ({cached:.3} ms) slower than cold ({cold:.3} ms)"));
        }
    }
    match doc.get("cache") {
        Some(c) => {
            let num = |k: &str| c.get(k).and_then(Json::as_f64);
            match num("hit_rate") {
                Some(r) if r >= 0.99 => {}
                Some(r) => failures.push(format!("warm-phase hit_rate {r} below 0.99")),
                None => failures.push("cache.hit_rate missing".into()),
            }
            for key in ["distinct_records", "interned_tokens"] {
                match num(key) {
                    Some(v) if v >= 1.0 => {}
                    _ => failures.push(format!("cache.{key} missing or zero")),
                }
            }
        }
        None => failures.push("missing cache section".into()),
    }

    // Memory side of the contract: every row carries `peak_bytes` and the
    // document a schema-tagged `"mem"` summary.
    let peaks = match peaks_of_bench(&doc) {
        Ok(p) => p,
        Err(errs) => {
            failures.extend(errs);
            BTreeMap::new()
        }
    };
    match doc.get("mem") {
        Some(m) => {
            if m.get("schema").and_then(Json::as_str) != Some("adamel-mem/v1") {
                failures.push("mem section has wrong or missing schema".into());
            }
            if m.get("gauges").and_then(Json::as_object).is_none() {
                failures.push("mem section has no gauges object".into());
            }
        }
        None => failures.push("missing mem section".into()),
    }
    if let Some(base_path) = mem_baseline {
        match load(base_path).map_err(|e| vec![e]).and_then(|d| peaks_of_bench(&d)) {
            Ok(base_peaks) => {
                for (kernel, &old) in &base_peaks {
                    let Some(&new) = peaks.get(kernel) else { continue };
                    // Zero baselines carry no signal (the kernel allocated
                    // below gauge granularity); any nonzero growth past the
                    // fractional threshold is a memory regression.
                    if old > 0 && new as f64 > old as f64 * (1.0 + mem_threshold) {
                        failures.push(format!(
                            "{kernel}: peak_bytes {new} exceeds baseline {old} by more than {:.0}%",
                            mem_threshold * 100.0
                        ));
                    }
                }
            }
            Err(errs) => {
                for e in errs {
                    failures.push(format!("mem baseline {base_path}: {e}"));
                }
            }
        }
    }

    if failures.is_empty() {
        let show = |k: &str| best.get(k).copied().unwrap_or(f64::NAN);
        println!(
            "{path}: bench contract ok (cold {:.3} ms, warm {:.3} ms, cached {:.3} ms, \
             plan {:.3} ms vs tape {:.3} ms, serve {:.3} ms, matmul {:.2} GFLOP/s)",
            show("encode_pairs_cold"),
            show("encode_pairs"),
            show("encode_pairs_cached"),
            show("predict_plan"),
            show("predict_tape"),
            show("serve_latency"),
            best_gflops.get("matmul").copied().unwrap_or(f64::NAN),
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("adamel-report: {path}: {f}");
        }
        ExitCode::FAILURE
    }
}

// -------------------------------------------------------------- diff ----

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 0.02f64;
    let mut mem_threshold = 0.25f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
            }
            "--mem-threshold" => {
                i += 1;
                mem_threshold = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [a_path, b_path] = paths.as_slice() else { return usage() };
    let (a, b) = match (parse_ledger(a_path), parse_ledger(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("adamel-report: {e}");
            return ExitCode::from(2);
        }
    };

    let (ma, mb) = (metrics_of(&a), metrics_of(&b));
    let mut regressions = 0usize;
    for (name, (va, higher)) in &ma {
        let Some((vb, _)) = mb.get(name) else {
            println!("metric {name}: {va:.4} -> (absent in {b_path})");
            continue;
        };
        let delta = vb - va;
        let regressed = if *higher { delta < -threshold } else { delta > threshold };
        println!(
            "metric {name}: {va:.4} -> {vb:.4} (delta {delta:+.4}){}",
            if regressed { "  REGRESSION" } else { "" }
        );
        if regressed {
            regressions += 1;
        }
    }
    for (name, (vb, _)) in &mb {
        if !ma.contains_key(name) {
            println!("metric {name}: (absent in {a_path}) -> {vb:.4}");
        }
    }

    let (wa, wb) = (warns_of(&a), warns_of(&b));
    let mut signals: Vec<&String> = wa.keys().chain(wb.keys()).collect();
    signals.sort();
    signals.dedup();
    for sig in signals {
        let (na, nb) = (wa.get(sig).copied().unwrap_or(0), wb.get(sig).copied().unwrap_or(0));
        if na != nb {
            println!("drift warn {sig}: {na} -> {nb} source(s)");
        }
    }

    // Span times are wall-clock and jitter run to run; only surface the
    // ones that moved enough to mean something (>25% and >1 ms).
    let (sa, sb) = (spans_of(&a), spans_of(&b));
    for (name, (_, ta, _)) in &sa {
        if let Some((_, tb, _)) = sb.get(name) {
            if (tb - ta).abs() > 1.0 && (tb - ta).abs() > 0.25 * ta.max(*tb) {
                println!("span {name}: {ta:.3} -> {tb:.3} ms (informational)");
            }
        }
    }

    // Memory-gauge peaks are logical byte counts (deterministic per seed,
    // unlike wall-clock spans), so they gate: a gauge whose peak grew past
    // the fractional threshold is a memory regression.
    let (mema, memb) = (mems_of(&a), mems_of(&b));
    let mut mem_regressions = 0usize;
    for (name, &pa) in &mema {
        let Some(&pb) = memb.get(name) else {
            println!("mem {name}: {pa} B -> (absent in {b_path})");
            continue;
        };
        let regressed = pa > 0 && pb as f64 > pa as f64 * (1.0 + mem_threshold);
        if regressed || pa != pb {
            println!("mem {name}: {pa} -> {pb} B{}", if regressed { "  REGRESSION" } else { "" });
        }
        if regressed {
            mem_regressions += 1;
        }
    }
    for (name, &pb) in &memb {
        if !mema.contains_key(name) {
            println!("mem {name}: (absent in {a_path}) -> {pb} B");
        }
    }

    if regressions > 0 || mem_regressions > 0 {
        if regressions > 0 {
            println!("FAIL: {regressions} metric(s) regressed beyond {threshold}");
        }
        if mem_regressions > 0 {
            println!("FAIL: {mem_regressions} memory gauge(s) grew beyond {mem_threshold}");
        }
        ExitCode::FAILURE
    } else {
        println!("PASS: no metric regression beyond {threshold}, no memory growth beyond {mem_threshold}");
        ExitCode::SUCCESS
    }
}
