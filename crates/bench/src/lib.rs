//! # adamel-bench
//!
//! The reproduction harness: experiment-scale worlds, the uniform method
//! roster, and one module per table/figure of the paper. The `repro` binary
//! (`cargo run -p adamel-bench --bin repro --release -- --exp all`)
//! regenerates every artifact; the criterion benches cover the performance
//! claims.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod methods;
pub mod table;
pub mod worlds;

pub use methods::{run_method, Method, Metric, RunOutcome};
pub use worlds::{MonitorExperiment, MusicExperiment, Scale};
