//! Experiment-scale world and split construction shared by the repro
//! experiments and criterion benches.
//!
//! The paper's corpora are orders of magnitude larger than what a test
//! harness should replay; these scales preserve the corpus *structure*
//! (source counts, imbalance, weak-label rates) at a size every experiment
//! finishes in seconds. `Scale::full` grows everything for an
//! overnight-style run.

use adamel_data::{
    make_mel_split, weaken_labels, EntityType, MelSplit, MonitorConfig, MonitorWorld, MusicConfig,
    MusicWorld, Scenario, SplitCounts,
};
use adamel_schema::Schema;

/// Knobs scaling every experiment together.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Artists in the music world.
    pub music_artists: usize,
    /// Products in the monitor world.
    pub monitor_products: usize,
    /// Labeled training pairs per side (pos = neg).
    pub train_pairs_per_class: usize,
    /// Music-1M-style training pairs per class (larger, weakly labeled).
    pub weak_train_pairs_per_class: usize,
    /// Test pairs per class.
    pub test_pairs_per_class: usize,
    /// Repeated runs per cell (paper: 3).
    pub runs: usize,
}

impl Scale {
    /// The default reproduction scale (seconds per experiment cell).
    pub fn standard() -> Self {
        Self {
            music_artists: 110,
            monitor_products: 140,
            train_pairs_per_class: 150,
            weak_train_pairs_per_class: 300,
            test_pairs_per_class: 120,
            runs: 3,
        }
    }

    /// A fast scale for smoke tests (single run, small worlds).
    pub fn smoke() -> Self {
        Self {
            music_artists: 45,
            monitor_products: 60,
            train_pairs_per_class: 60,
            weak_train_pairs_per_class: 120,
            test_pairs_per_class: 50,
            runs: 1,
        }
    }
}

/// The Music-3K-style corpus (clean labels) for one entity type.
pub struct MusicExperiment {
    /// The generated world.
    pub world: MusicWorld,
    /// Entity type under evaluation.
    pub etype: EntityType,
}

impl MusicExperiment {
    /// Generates the world at the given scale.
    pub fn new(scale: &Scale, etype: EntityType, seed: u64) -> Self {
        let cfg = MusicConfig {
            num_artists: scale.music_artists,
            albums_per_artist: 2,
            tracks_per_album: 2,
            num_sources: 7,
            coverage: 0.85,
        };
        Self { world: MusicWorld::generate(&cfg, seed), etype }
    }

    /// The aligned music schema.
    pub fn schema(&self) -> Schema {
        self.world.schema().clone()
    }

    /// Builds the §5.2 split: `D_S* = {website 1..3}`, `D_T*` = all 7 (S1)
    /// or the remaining 4 (S2). `weak` applies Music-1M-style label noise
    /// to the (larger) training set.
    pub fn split(&self, scale: &Scale, scenario: Scenario, weak: bool, seed: u64) -> MelSplit {
        let records = self.world.records_of(self.etype, None);
        let per_class =
            if weak { scale.weak_train_pairs_per_class } else { scale.train_pairs_per_class };
        let counts = SplitCounts {
            train_pos: per_class,
            train_neg: per_class,
            support_pos: 50,
            support_neg: 50,
            test_pos: scale.test_pairs_per_class,
            test_neg: scale.test_pairs_per_class,
            hard_negative_fraction: 0.65,
        };
        let mut split =
            make_mel_split(&records, "name", &[0, 1, 2], &[3, 4, 5, 6], scenario, &counts, seed);
        if weak {
            // Music-1M labels follow hyperlinks: ~20% corrupted, including
            // mixed-type confusions.
            weaken_labels(&mut split.train, 0.2, seed ^ 0x3ea4);
        }
        split
    }
}

/// The Monitor-style corpus.
pub struct MonitorExperiment {
    /// The generated world.
    pub world: MonitorWorld,
}

impl MonitorExperiment {
    /// Generates the 24-source monitor world.
    pub fn new(scale: &Scale, seed: u64) -> Self {
        let cfg = MonitorConfig {
            num_products: scale.monitor_products,
            num_sources: 24,
            num_seen_sources: 5,
            coverage: 0.3,
        };
        Self { world: MonitorWorld::generate(&cfg, seed) }
    }

    /// The aligned 13-attribute schema.
    pub fn schema(&self) -> Schema {
        self.world.schema().clone()
    }

    /// The §5.2 Monitor split with the paper's imbalanced test protocol
    /// (all sampled positives + a large negative pool).
    pub fn split(&self, scale: &Scale, scenario: Scenario, seed: u64) -> MelSplit {
        let records = self.world.records_for(None);
        let counts = SplitCounts {
            train_pos: scale.train_pairs_per_class,
            train_neg: scale.train_pairs_per_class,
            support_pos: 50,
            support_neg: 50,
            test_pos: scale.test_pairs_per_class,
            // Heavy imbalance: paper tests on 432 positives + 1000 negatives.
            test_neg: scale.test_pairs_per_class * 3,
            hard_negative_fraction: 0.6,
        };
        make_mel_split(
            &records,
            "page_title",
            &self.world.seen_sources(),
            &self.world.unseen_sources(),
            scenario,
            &counts,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn music_experiment_split_structure() {
        let scale = Scale::smoke();
        let exp = MusicExperiment::new(&scale, EntityType::Artist, 42);
        let split = exp.split(&scale, Scenario::Overlapping, false, 1);
        assert!(!split.train.is_empty());
        assert_eq!(split.support.len(), 100);
        assert!(split.test.pairs.iter().all(|p| p.label.is_none()));
        assert_eq!(exp.schema().len(), 9);
    }

    #[test]
    fn weak_split_uses_larger_training_set() {
        let scale = Scale::smoke();
        let exp = MusicExperiment::new(&scale, EntityType::Album, 42);
        let clean = exp.split(&scale, Scenario::Overlapping, false, 1);
        let weak = exp.split(&scale, Scenario::Overlapping, true, 1);
        assert!(weak.train.len() > clean.train.len());
        // Weak labels disagree with ground truth for some pairs.
        let disagreements =
            weak.train.pairs.iter().filter(|p| p.label.unwrap() != p.ground_truth()).count();
        assert!(disagreements > 0, "weak labeling produced no noise");
    }

    #[test]
    fn monitor_experiment_has_imbalanced_test() {
        let scale = Scale::smoke();
        let exp = MonitorExperiment::new(&scale, 42);
        let split = exp.split(&scale, Scenario::Overlapping, 1);
        let pos = split.test.pairs.iter().filter(|p| p.ground_truth()).count();
        let neg = split.test.len() - pos;
        assert!(neg >= 2 * pos, "test not imbalanced: {pos} pos / {neg} neg");
        assert_eq!(exp.schema().len(), 13);
    }

    #[test]
    fn scales_are_ordered() {
        let smoke = Scale::smoke();
        let std = Scale::standard();
        assert!(smoke.music_artists < std.music_artists);
        assert!(smoke.runs <= std.runs);
    }
}
