//! Fig. 9: stability while data sources arrive incrementally, plus the
//! runtime / parameter-count comparison (§5.5).
//!
//! AdaMEL-hyb (re-adapted at every step) is compared against the
//! best-performing baseline (EntityMatcher) and the fastest baseline
//! (CorDel-Attention), both trained once on the seen sources as supervised
//! models are.

use super::Ctx;
use crate::table;
use crate::worlds::MonitorExperiment;
use adamel::{fit, AdamelConfig, AdamelModel, Variant};
use adamel_baselines::{self as baselines, EntityMatcherModel};
use adamel_metrics::pr_auc;
use adamel_schema::Domain;

/// Per-step scores for the three compared methods.
pub struct Step {
    /// Number of sources in `D_T*`.
    pub num_sources: usize,
    /// AdaMEL-hyb PRAUC.
    pub hyb: f64,
    /// EntityMatcher PRAUC.
    pub entity_matcher: f64,
    /// CorDel PRAUC.
    pub cordel: f64,
}

/// Aggregate runtime / size report.
pub struct RuntimeReport {
    /// (method, seconds per training fit, total seconds over the stream,
    /// parameter count).
    pub rows: Vec<(String, f64, f64, usize)>,
}

fn eval(scores: &[f32], target: &Domain) -> f64 {
    let labels: Vec<bool> = target.pairs.iter().map(|p| p.ground_truth()).collect();
    pr_auc(scores, &labels)
}

/// Runs Fig. 9.
pub fn run(ctx: &Ctx) -> (Vec<Step>, RuntimeReport) {
    let exp = MonitorExperiment::new(&ctx.scale, 42);
    let schema = exp.schema();
    // Paper protocol scaled: 1500 train pairs, 200 pairs per target source,
    // start with 7 sources, add 2 per step.
    let train_pairs = (ctx.scale.train_pairs_per_class * 4).max(300);
    let stream = adamel_data::monitor_incremental(
        &exp.world,
        train_pairs,
        100,
        ctx.scale.test_pairs_per_class.min(100),
        7,
        2,
        1,
    );

    // Reduced epochs keep every model comparable while the stream replays;
    // ratios, not absolute seconds, are the reproduction target.
    let adamel_cfg = AdamelConfig { epochs: 20, ..AdamelConfig::default() };
    let baseline_cfg = baselines::BaselineConfig { epochs: 20, ..Default::default() };

    // Supervised baselines train once on D_S.
    let mut em_time = 0.0;
    let t0 = std::time::Instant::now();
    let mut em = baselines::EntityMatcher::new(schema.clone(), baseline_cfg.clone());
    em.fit(&stream.train);
    let em_fit = t0.elapsed().as_secs_f64();
    em_time += em_fit;

    let mut cordel_time = 0.0;
    let t0 = std::time::Instant::now();
    let mut cordel = baselines::CorDel::new(schema.clone(), baseline_cfg.clone());
    cordel.fit(&stream.train);
    let cordel_fit = t0.elapsed().as_secs_f64();
    cordel_time += cordel_fit;

    let mut hyb_time = 0.0;
    let mut steps = Vec::new();
    let mut hyb_params = 0;
    for step in &stream.steps {
        // AdaMEL-hyb adapts to the grown target domain at every step.
        let t0 = std::time::Instant::now();
        let mut hyb = AdamelModel::new(adamel_cfg.clone().with_seed(1), schema.clone());
        fit(&mut hyb, Variant::Hyb, &stream.train, Some(&step.target), Some(&stream.support));
        let hyb_scores = hyb.predict(&step.target.pairs);
        hyb_time += t0.elapsed().as_secs_f64();
        hyb_params = hyb.num_parameters();

        let t0 = std::time::Instant::now();
        let em_scores = em.predict(&step.target.pairs);
        em_time += t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let cordel_scores = cordel.predict(&step.target.pairs);
        cordel_time += t0.elapsed().as_secs_f64();

        steps.push(Step {
            num_sources: step.num_sources,
            hyb: eval(&hyb_scores, &step.target),
            entity_matcher: eval(&em_scores, &step.target),
            cordel: eval(&cordel_scores, &step.target),
        });
    }

    println!("\n--- Fig. 9: PRAUC as data sources arrive incrementally (Monitor) ---");
    let mut rows = Vec::new();
    let mut csv = String::from("num_sources,adamel_hyb,entity_matcher,cordel\n");
    for s in &steps {
        rows.push(vec![
            s.num_sources.to_string(),
            format!("{:.4}", s.hyb),
            format!("{:.4}", s.entity_matcher),
            format!("{:.4}", s.cordel),
        ]);
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            s.num_sources, s.hyb, s.entity_matcher, s.cordel
        ));
    }
    println!("{}", table::render(&["|D_T*|", "AdaMEL-hyb", "EntityMatcher", "CorDel"], &rows));
    ctx.write_csv("fig9_stability.csv", &csv);

    // Runtime + parameter table (§5.5: AdaMEL ~2.2M vs EntityMatcher ~123M;
    // runtimes 319s vs 2500s vs 906s).
    // Per-fit cost is the §5.5 quantity (the paper's runtimes are dominated
    // by training); hyb's total includes one re-adaptation per stream step.
    let hyb_fit = hyb_time / stream.steps.len().max(1) as f64;
    let report = RuntimeReport {
        rows: vec![
            ("AdaMEL-hyb".to_string(), hyb_fit, hyb_time, hyb_params),
            ("CorDel-Attention".to_string(), cordel_fit, cordel_time, cordel.num_parameters()),
            ("EntityMatcher".to_string(), em_fit, em_time, em.num_parameters()),
        ],
    };
    println!("--- Fig. 9 runtime / parameter comparison ---");
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|(n, fit_t, total, p)| {
            vec![n.clone(), format!("{fit_t:.2}s"), format!("{total:.2}s"), p.to_string()]
        })
        .collect();
    println!(
        "{}",
        table::render(&["Method", "Per training fit", "Stream total", "Parameters"], &rows)
    );
    println!("(paper: Hybrid 319s < CorDel 906s < E-Matcher 2500s; 2.2M vs 123M parameters;");
    println!(" hyb's stream total re-trains at every step — per-fit cost is the comparable unit)");
    (steps, report)
}
