//! Fig. 10: sensitivity to the support-set size |S_U| for AdaMEL-few and
//! AdaMEL-hyb on Monitor.

use super::Ctx;
use crate::table;
use crate::worlds::MonitorExperiment;
use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{make_mel_split, Scenario, SplitCounts};
use adamel_schema::Domain;

/// One sweep point.
pub struct Point {
    /// Support-set size used.
    pub size: usize,
    /// AdaMEL-few PRAUC.
    pub few: f64,
    /// AdaMEL-hyb PRAUC.
    pub hyb: f64,
}

/// The paper's sweep: zoomed-in small sizes, then steps of 20 up to 300.
pub fn sweep_sizes(max: usize) -> Vec<usize> {
    let mut sizes = vec![1, 5, 10, 20, 40];
    let mut v = 60;
    while v <= max {
        sizes.push(v);
        v += 40; // coarser than the paper's 20 to halve runtime; same range
    }
    sizes
}

/// Runs Fig. 10.
pub fn run(ctx: &Ctx) -> Vec<Point> {
    let exp = MonitorExperiment::new(&ctx.scale, 42);
    let schema = exp.schema();
    // A split with an oversized support pool (300 labeled samples).
    let counts = SplitCounts {
        train_pos: ctx.scale.train_pairs_per_class,
        train_neg: ctx.scale.train_pairs_per_class,
        support_pos: 150,
        support_neg: 150,
        test_pos: ctx.scale.test_pairs_per_class,
        test_neg: ctx.scale.test_pairs_per_class * 3,
        hard_negative_fraction: 0.6,
    };
    let records = exp.world.records_for(None);
    let split = make_mel_split(
        &records,
        "page_title",
        &exp.world.seen_sources(),
        &exp.world.unseen_sources(),
        Scenario::Overlapping,
        &counts,
        1,
    );
    let pool = &split.support;
    let max = pool.len();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut csv = String::from("support_size,adamel_few,adamel_hyb\n");
    for size in sweep_sizes(max.min(300)) {
        // Interleave positives/negatives so tiny supports stay balanced-ish.
        let indices: Vec<usize> = interleaved_indices(pool, size);
        let support = pool.subset(&indices);
        let mut scores = [0.0f64; 2];
        for (i, variant) in [Variant::Few, Variant::Hyb].into_iter().enumerate() {
            let cfg = AdamelConfig::default().with_seed(1);
            let mut model = AdamelModel::new(cfg, schema.clone());
            fit(
                &mut model,
                variant,
                &split.train,
                variant.uses_target().then_some(&split.test),
                Some(&support),
            );
            scores[i] = evaluate_prauc(&model, &split.test);
        }
        rows.push(vec![size.to_string(), format!("{:.4}", scores[0]), format!("{:.4}", scores[1])]);
        csv.push_str(&format!("{},{:.4},{:.4}\n", size, scores[0], scores[1]));
        points.push(Point { size, few: scores[0], hyb: scores[1] });
    }

    println!("\n--- Fig. 10: PRAUC vs support-set size |S_U| (Monitor) ---");
    println!("{}", table::render(&["|S_U|", "AdaMEL-few", "AdaMEL-hyb"], &rows));
    println!("(paper: rises with |S_U|, saturates past ~140; hyb >= few beyond |S_U| > 60)");
    ctx.write_csv("fig10_support.csv", &csv);
    points
}

fn interleaved_indices(pool: &Domain, size: usize) -> Vec<usize> {
    let pos: Vec<usize> = (0..pool.len()).filter(|&i| pool.pairs[i].label == Some(true)).collect();
    let neg: Vec<usize> = (0..pool.len()).filter(|&i| pool.pairs[i].label == Some(false)).collect();
    let mut out = Vec::with_capacity(size);
    let mut pi = 0;
    let mut ni = 0;
    while out.len() < size && (pi < pos.len() || ni < neg.len()) {
        if pi < pos.len() {
            out.push(pos[pi]);
            pi += 1;
        }
        if out.len() < size && ni < neg.len() {
            out.push(neg[ni]);
            ni += 1;
        }
    }
    out
}
