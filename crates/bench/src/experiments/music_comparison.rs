//! Fig. 6 / Table 9: MEL performance (PRAUC) on the music corpora.
//!
//! Grid: {Music-3K: artist, album, track; Music-1M: artist, album}
//! x {overlapping, disjoint} x 9 methods, mean ± std over seeded runs.
//! Music-1M uses the larger weakly-labeled training set and, as in the
//! paper, shares its test protocol with Music-3K.

use super::Ctx;
use crate::methods::{run_method, Method, Metric};
use crate::table;
use crate::worlds::MusicExperiment;
use adamel::AdamelConfig;
use adamel_baselines::BaselineConfig;
use adamel_data::{EntityType, Scenario};
use adamel_metrics::RunStats;

/// One grid cell result.
pub struct Cell {
    /// Corpus ("Music-3K" / "Music-1M").
    pub corpus: &'static str,
    /// Entity type.
    pub etype: EntityType,
    /// Scenario.
    pub scenario: Scenario,
    /// Method.
    pub method: Method,
    /// PRAUC over runs.
    pub stats: RunStats,
}

/// Runs the full music grid, printing Table 9 and returning the cells.
pub fn run(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    let combos: Vec<(&'static str, EntityType, bool)> = vec![
        ("Music-3K", EntityType::Artist, false),
        ("Music-3K", EntityType::Album, false),
        ("Music-3K", EntityType::Track, false),
        ("Music-1M", EntityType::Artist, true),
        ("Music-1M", EntityType::Album, true),
    ];

    for scenario in [Scenario::Overlapping, Scenario::Disjoint] {
        for (corpus, etype, weak) in &combos {
            let exp = MusicExperiment::new(&ctx.scale, *etype, 42);
            let schema = exp.schema();
            println!("\n--- Table 9 cell: {corpus} {} / {} ---", etype.name(), scenario.name());
            let mut rows = Vec::new();
            for method in Method::ALL {
                let scores: Vec<f64> = (1..=ctx.scale.runs as u64)
                    .map(|seed| {
                        let split = exp.split(&ctx.scale, scenario, *weak, seed);
                        run_method(
                            method,
                            &schema,
                            &split,
                            Metric::PrAuc,
                            &AdamelConfig::default(),
                            &BaselineConfig::default(),
                            seed,
                        )
                        .score
                    })
                    .collect();
                let stats = RunStats::from_runs(&scores);
                rows.push(vec![method.name().to_string(), stats.to_string()]);
                cells.push(Cell { corpus, etype: *etype, scenario, method, stats });
            }
            println!("{}", table::render(&["Method", "PRAUC"], &rows));
        }
    }

    // CSV artifact mirroring Table 9's layout.
    let mut csv = String::from("corpus,entity_type,scenario,method,prauc_mean,prauc_std\n");
    for c in &cells {
        csv.push_str(&format!(
            "{},{},{},{},{:.4},{:.4}\n",
            c.corpus,
            c.etype.name(),
            c.scenario.name(),
            c.method.name(),
            c.stats.mean,
            c.stats.std
        ));
    }
    ctx.write_csv("table9_music.csv", &csv);
    summarize(&cells);
    cells
}

/// Prints the paper's headline aggregates (hyb vs best baseline).
fn summarize(cells: &[Cell]) {
    let mut improvements = Vec::new();
    let groups: Vec<(&str, EntityType, Scenario)> = cells
        .iter()
        .map(|c| (c.corpus, c.etype, c.scenario))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for (corpus, etype, scenario) in groups {
        let group: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.corpus == corpus && c.etype == etype && c.scenario == scenario)
            .collect();
        let hyb = group.iter().find(|c| c.method == Method::AdamelHyb).map(|c| c.stats.mean);
        let best_baseline = group
            .iter()
            .filter(|c| c.method.variant().is_none())
            .map(|c| c.stats.mean)
            .fold(f64::NEG_INFINITY, f64::max);
        if let Some(hyb) = hyb {
            improvements.push((hyb - best_baseline) * 100.0);
        }
    }
    if !improvements.is_empty() {
        let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
        println!(
            "AdaMEL-hyb vs best supervised baseline: avg {avg:+.2} PRAUC points over {} cells \
             (paper: +8.21% on average)",
            improvements.len()
        );
    }
}

/// Sort order helper so `BTreeSet` can group cells.
impl PartialOrd for Cell {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cell {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.corpus, self.etype.name(), self.scenario.name(), self.method.name()).cmp(&(
            other.corpus,
            other.etype.name(),
            other.scenario.name(),
            other.method.name(),
        ))
    }
}
impl PartialEq for Cell {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Cell {}
