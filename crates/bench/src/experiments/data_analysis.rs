//! Fig. 11 (per-attribute non-missing pair percentages, source vs target)
//! and Fig. 12 (top-10 `prod_type` token frequencies, source vs target) on
//! the Monitor corpus — the appendix A.2 data-challenge analysis.

use super::Ctx;
use crate::table;
use crate::worlds::MonitorExperiment;
use adamel_data::analysis;
use adamel_data::{make_mel_split, Scenario, SplitCounts};

/// Runs Fig. 11, returning `(attribute, source fraction, target fraction)`.
pub fn run_fig11(ctx: &Ctx) -> Vec<(String, f64, f64)> {
    let exp = MonitorExperiment::new(&ctx.scale, 42);
    let schema = exp.schema();
    let records = exp.world.records_for(None);
    let split = make_mel_split(
        &records,
        "page_title",
        &exp.world.seen_sources(),
        &exp.world.unseen_sources(),
        Scenario::Overlapping,
        &SplitCounts::default(),
        1,
    );
    let src = analysis::non_missing_pair_fraction(&split.train, &schema);
    let tgt = analysis::non_missing_pair_fraction(&split.test, &schema);

    println!("\n--- Fig. 11: % of pairs without missing values per attribute (Monitor) ---");
    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut csv = String::from("attribute,source_fraction,target_fraction\n");
    for ((attr, s), (_, t)) in src.iter().zip(&tgt) {
        rows.push(vec![attr.clone(), format!("{:.1}%", s * 100.0), format!("{:.1}%", t * 100.0)]);
        csv.push_str(&format!("{attr},{s:.4},{t:.4}\n"));
        out.push((attr.clone(), *s, *t));
    }
    println!("{}", table::render(&["Attribute", "Source domain", "Target domain"], &rows));
    let target_only = analysis::target_only_attributes(&split.train, &split.test, &schema);
    println!(
        "Attributes complete only in the target domain (C2): {} — {:?}",
        target_only.len(),
        target_only
    );
    println!("(paper: only page_title/source near-complete; 5 of 13 attributes target-only)");
    ctx.write_csv("fig11_missing.csv", &csv);
    out
}

/// Runs Fig. 12, returning the source and target top-10 token lists.
#[allow(clippy::type_complexity)]
pub fn run_fig12(ctx: &Ctx) -> (Vec<(String, usize)>, Vec<(String, usize)>) {
    let exp = MonitorExperiment::new(&ctx.scale, 42);
    let records = exp.world.records_for(None);
    let split = make_mel_split(
        &records,
        "page_title",
        &exp.world.seen_sources(),
        &exp.world.unseen_sources(),
        Scenario::Disjoint,
        &SplitCounts::default(),
        1,
    );
    let src = analysis::top_tokens(&split.train, "prod_type", 10);
    let tgt = analysis::top_tokens(&split.test, "prod_type", 10);

    println!("\n--- Fig. 12: top-10 `prod_type` tokens, source vs target (Monitor) ---");
    let rows: Vec<Vec<String>> = (0..10)
        .map(|i| {
            vec![
                src.get(i).map(|(t, c)| format!("{t} ({c})")).unwrap_or_default(),
                tgt.get(i).map(|(t, c)| format!("{t} ({c})")).unwrap_or_default(),
            ]
        })
        .collect();
    println!("{}", table::render(&["Source domain", "Target domain"], &rows));
    let src_set: std::collections::HashSet<&str> = src.iter().map(|(t, _)| t.as_str()).collect();
    let overlap = tgt.iter().filter(|(t, _)| src_set.contains(t.as_str())).count();
    println!("Token overlap between domains' top-10: {overlap}/10 (paper: nearly disjoint)");
    let mut csv = String::from("domain,token,count\n");
    for (t, c) in &src {
        csv.push_str(&format!("source,{t},{c}\n"));
    }
    for (t, c) in &tgt {
        csv.push_str(&format!("target,{t},{c}\n"));
    }
    ctx.write_csv("fig12_prod_type.csv", &csv);
    (src, tgt)
}
