//! Table 6: contrastive-feature ablation — shared only, unique only, both —
//! for AdaMEL-base and AdaMEL-hyb on Music-3K artist and album.

use super::Ctx;
use crate::table;
use crate::worlds::MusicExperiment;
use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{EntityType, Scenario};
use adamel_metrics::RunStats;
use adamel_schema::FeatureMode;

/// One ablation cell.
pub struct Cell {
    /// Entity type.
    pub etype: EntityType,
    /// Variant (base or hyb).
    pub variant: Variant,
    /// Feature mode.
    pub mode: FeatureMode,
    /// PRAUC over runs.
    pub stats: RunStats,
}

/// Runs Table 6.
pub fn run(ctx: &Ctx) -> Vec<Cell> {
    let mut cells = Vec::new();
    let mut csv = String::from("entity_type,variant,mode,prauc_mean,prauc_std\n");
    for etype in [EntityType::Artist, EntityType::Album] {
        let exp = MusicExperiment::new(&ctx.scale, etype, 42);
        let schema = exp.schema();
        println!("\n--- Table 6: contrastive ablation, Music-3K {} ---", etype.name());
        let mut rows = Vec::new();
        for variant in [Variant::Base, Variant::Hyb] {
            let mut row = vec![variant.name().to_string()];
            for (mode, label) in [
                (FeatureMode::SharedOnly, "shared"),
                (FeatureMode::UniqueOnly, "unique"),
                (FeatureMode::Both, "both"),
            ] {
                let scores: Vec<f64> = (1..=ctx.scale.runs as u64)
                    .map(|seed| {
                        let split = exp.split(&ctx.scale, Scenario::Overlapping, false, seed);
                        let cfg = AdamelConfig::default().with_feature_mode(mode).with_seed(seed);
                        let mut model = AdamelModel::new(cfg, schema.clone());
                        fit(
                            &mut model,
                            variant,
                            &split.train,
                            variant.uses_target().then_some(&split.test),
                            variant.uses_support().then_some(&split.support),
                        );
                        evaluate_prauc(&model, &split.test)
                    })
                    .collect();
                let stats = RunStats::from_runs(&scores);
                row.push(stats.to_string());
                csv.push_str(&format!(
                    "{},{},{},{:.4},{:.4}\n",
                    etype.name(),
                    variant.name(),
                    label,
                    stats.mean,
                    stats.std
                ));
                cells.push(Cell { etype, variant, mode, stats });
            }
            rows.push(row);
        }
        println!("{}", table::render(&["Method", "Shared", "Unique", "Shared & Unique"], &rows));
    }
    println!("(paper: using both contrastive features is best)");
    ctx.write_csv("table6_ablation.csv", &csv);
    cells
}
