//! One module per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index).

pub mod ablation;
pub mod adaptation;
pub mod attention;
pub mod data_analysis;
pub mod monitor_comparison;
pub mod music_comparison;
pub mod single_domain;
pub mod stability;
pub mod support;

use crate::worlds::Scale;

/// Shared experiment context: scale plus an output sink.
pub struct Ctx {
    /// Global size knobs.
    pub scale: Scale,
    /// Directory for CSV artifacts (created on demand); stdout-only if None.
    pub out_dir: Option<std::path::PathBuf>,
}

impl Ctx {
    /// Creates a context at the given scale writing CSVs under `out_dir`.
    pub fn new(scale: Scale, out_dir: Option<std::path::PathBuf>) -> Self {
        Self { scale, out_dir }
    }

    /// Writes a CSV artifact if an output directory is configured.
    pub fn write_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.out_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, content) {
                    eprintln!("warning: failed to write {}: {e}", path.display());
                } else {
                    println!("  [csv] {}", path.display());
                }
            }
        }
    }
}
