//! Table 8: MEL performance (PRAUC) on the Monitor corpus, overlapping and
//! disjoint scenarios, all nine methods.

use super::Ctx;
use crate::methods::{run_method, Method, Metric};
use crate::table;
use crate::worlds::MonitorExperiment;
use adamel::AdamelConfig;
use adamel_baselines::BaselineConfig;
use adamel_data::Scenario;
use adamel_metrics::RunStats;

/// One Table 8 cell.
pub struct Cell {
    /// Scenario.
    pub scenario: Scenario,
    /// Method.
    pub method: Method,
    /// PRAUC over runs.
    pub stats: RunStats,
}

/// Runs Table 8 and returns the cells.
pub fn run(ctx: &Ctx) -> Vec<Cell> {
    let exp = MonitorExperiment::new(&ctx.scale, 42);
    let schema = exp.schema();
    let mut cells = Vec::new();

    for scenario in [Scenario::Overlapping, Scenario::Disjoint] {
        println!("\n--- Table 8: Monitor / {} ---", scenario.name());
        let mut rows = Vec::new();
        for method in Method::ALL {
            let scores: Vec<f64> = (1..=ctx.scale.runs as u64)
                .map(|seed| {
                    let split = exp.split(&ctx.scale, scenario, seed);
                    run_method(
                        method,
                        &schema,
                        &split,
                        Metric::PrAuc,
                        &AdamelConfig::default(),
                        &BaselineConfig::default(),
                        seed,
                    )
                    .score
                })
                .collect();
            let stats = RunStats::from_runs(&scores);
            rows.push(vec![method.name().to_string(), stats.to_string()]);
            cells.push(Cell { scenario, method, stats });
        }
        println!("{}", table::render(&["Method", "PRAUC"], &rows));
    }

    let mut csv = String::from("scenario,method,prauc_mean,prauc_std\n");
    for c in &cells {
        csv.push_str(&format!(
            "{},{},{:.4},{:.4}\n",
            c.scenario.name(),
            c.method.name(),
            c.stats.mean,
            c.stats.std
        ));
    }
    ctx.write_csv("table8_monitor.csv", &csv);
    cells
}
