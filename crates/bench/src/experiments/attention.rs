//! Table 4 (learned top-5 feature importances) and Table 5 (retraining on
//! top attributes vs the others vs all).

use super::Ctx;
use crate::table;
use crate::worlds::{MonitorExperiment, MusicExperiment, Scale};
use adamel::{
    attribute_importance, evaluate_prauc, feature_importance, fit, top_attribute_schemas,
    AdamelConfig, AdamelModel, Variant,
};
use adamel_data::{EntityType, MelSplit, Scenario};
use adamel_metrics::RunStats;
use adamel_schema::Schema;

fn train_hyb(schema: &Schema, split: &MelSplit, seed: u64) -> AdamelModel {
    let cfg = AdamelConfig::default().with_lambda(0.98).with_phi(1.0).with_seed(seed);
    let mut model = AdamelModel::new(cfg, schema.clone());
    fit(&mut model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
    model
}

/// Table 4: top-5 learned feature importances on Monitor and Music-3K
/// artist, from AdaMEL-hyb at the best configuration.
pub fn run_table4(ctx: &Ctx) -> Vec<(String, String, f32)> {
    let mut out = Vec::new();
    let mut csv = String::from("dataset,feature,score\n");

    // Monitor.
    let monitor = MonitorExperiment::new(&ctx.scale, 42);
    let split = monitor.split(&ctx.scale, Scenario::Overlapping, 1);
    let model = train_hyb(&monitor.schema(), &split, 1);
    let imp = feature_importance(&model, &split.test);
    println!("\n--- Table 4: top-5 feature importance, Monitor ---");
    let mut rows = Vec::new();
    for fi in imp.iter().take(5) {
        rows.push(vec![fi.feature.clone(), format!("{:.4}", fi.score)]);
        out.push(("Monitor".to_string(), fi.feature.clone(), fi.score));
    }
    for fi in &imp {
        csv.push_str(&format!("Monitor,{},{:.4}\n", fi.feature, fi.score));
    }
    println!("{}", table::render(&["Feature", "Score"], &rows));
    println!("(paper: page_title_shared dominates with a long-tail distribution)");

    // Music-3K artist.
    let music = MusicExperiment::new(&ctx.scale, EntityType::Artist, 42);
    let split = music.split(&ctx.scale, Scenario::Overlapping, false, 1);
    let model = train_hyb(&music.schema(), &split, 1);
    let imp = feature_importance(&model, &split.test);
    println!("--- Table 4: top-5 feature importance, Music-3K artist ---");
    let mut rows = Vec::new();
    for fi in imp.iter().take(5) {
        rows.push(vec![fi.feature.clone(), format!("{:.4}", fi.score)]);
        out.push(("Music-3K artist".to_string(), fi.feature.clone(), fi.score));
    }
    for fi in &imp {
        csv.push_str(&format!("Music-3K artist,{},{:.4}\n", fi.feature, fi.score));
    }
    println!("{}", table::render(&["Feature", "Score"], &rows));
    println!("(paper: name-related features with a more uniform distribution)");
    ctx.write_csv("table4_importance.csv", &csv);
    out
}

/// Table 5 rows: dataset → (top-k PRAUC, other PRAUC, all PRAUC).
pub struct Table5Row {
    /// Dataset label.
    pub dataset: String,
    /// PRAUC retrained on the top attributes.
    pub top: RunStats,
    /// PRAUC retrained on the complementary attributes.
    pub other: RunStats,
    /// PRAUC on all attributes.
    pub all: RunStats,
    /// How many attributes the top schema kept.
    pub k: usize,
}

fn table5_row(
    name: &str,
    schema: &Schema,
    splits: &dyn Fn(u64) -> MelSplit,
    k: usize,
    runs: usize,
) -> Table5Row {
    let mut top_scores = Vec::new();
    let mut other_scores = Vec::new();
    let mut all_scores = Vec::new();
    for seed in 1..=runs as u64 {
        let split = splits(seed);
        let full = train_hyb(schema, &split, seed);
        all_scores.push(evaluate_prauc(&full, &split.test));
        let (top_schema, other_schema) = top_attribute_schemas(&full, &split.test, schema, k);
        let top_model = train_hyb(&top_schema, &split, seed);
        top_scores.push(evaluate_prauc(&top_model, &split.test));
        if !other_schema.is_empty() {
            let other_model = train_hyb(&other_schema, &split, seed);
            other_scores.push(evaluate_prauc(&other_model, &split.test));
        } else {
            other_scores.push(0.0);
        }
    }
    Table5Row {
        dataset: name.to_string(),
        top: RunStats::from_runs(&top_scores),
        other: RunStats::from_runs(&other_scores),
        all: RunStats::from_runs(&all_scores),
        k,
    }
}

/// Table 5: retrain AdaMEL-hyb on the selected top attributes, the rest,
/// and all attributes.
pub fn run_table5(ctx: &Ctx) -> Vec<Table5Row> {
    let runs = ctx.scale.runs.min(2); // 3 trainings per run per dataset
    let mut rows = Vec::new();

    let monitor = MonitorExperiment::new(&ctx.scale, 42);
    let mschema = monitor.schema();
    let mscale = ctx.scale.clone();
    rows.push(table5_row(
        "Monitor",
        &mschema,
        &move |seed| monitor.split(&mscale, Scenario::Overlapping, seed),
        3,
        runs,
    ));

    for etype in EntityType::ALL {
        let music = MusicExperiment::new(&ctx.scale, etype, 42);
        let schema = music.schema();
        let scale = ctx.scale.clone();
        rows.push(table5_row(
            &format!("Music-3K, {}", etype.name()),
            &schema,
            &move |seed| music.split(&scale, Scenario::Overlapping, false, seed),
            4,
            runs,
        ));
    }

    println!("\n--- Table 5: PRAUC with top attributes vs others vs all ---");
    let mut printed = Vec::new();
    let mut csv = String::from("dataset,k,top,other,all\n");
    for r in &rows {
        printed.push(vec![
            r.dataset.clone(),
            format!("{} ({})", r.top, r.k),
            r.other.to_string(),
            r.all.to_string(),
        ]);
        csv.push_str(&format!(
            "{},{},{:.4},{:.4},{:.4}\n",
            r.dataset, r.k, r.top.mean, r.other.mean, r.all.mean
        ));
    }
    println!(
        "{}",
        table::render(
            &["Dataset", "Top attributes (#)", "Other attributes", "All attributes"],
            &printed
        )
    );
    println!("(paper: top-attribute subsets match or beat all attributes except track)");
    ctx.write_csv("table5_subsets.csv", &csv);
    rows
}

/// Re-export for the binary: the scale type.
pub type _Scale = Scale;

/// Importance aggregated per attribute — printed alongside Table 4 for
/// interpretability.
pub fn print_attribute_rollup(model: &AdamelModel, split: &MelSplit) {
    let rollup = attribute_importance(model, &split.test);
    let rows: Vec<Vec<String>> =
        rollup.iter().take(5).map(|(a, s)| vec![a.clone(), format!("{s:.4}")]).collect();
    println!("{}", table::render(&["Attribute", "Total importance"], &rows));
}
