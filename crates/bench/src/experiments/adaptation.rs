//! Fig. 7 (attention-space t-SNE at λ = 0 vs λ = 0.98) and Fig. 8
//! (PRAUC as a function of λ, with the collapse at λ = 1).

use super::Ctx;
use crate::table;
use crate::worlds::MusicExperiment;
use adamel::{evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{EntityType, Scenario};
use adamel_metrics::{separation_ratio, tsne, TsneConfig};

/// Fig. 7: trains zero/hyb at λ ∈ {0, 0.98}, projects the per-pair
/// attention vectors of `D_S` and `D_T` with t-SNE, and reports the
/// separation ratio (≈1 means the domains are indistinguishable — adapted).
pub fn run_fig7(ctx: &Ctx) -> Vec<(String, f64)> {
    let exp = MusicExperiment::new(&ctx.scale, EntityType::Artist, 42);
    let schema = exp.schema();
    let split = exp.split(&ctx.scale, Scenario::Overlapping, false, 1);
    let mut results = Vec::new();
    let mut rows = Vec::new();
    let mut csv = String::from("variant,lambda,domain,x,y\n");

    for variant in [Variant::Zero, Variant::Hyb] {
        for lambda in [0.0f32, 0.98] {
            let cfg = AdamelConfig::default().with_lambda(lambda).with_seed(1);
            let mut model = AdamelModel::new(cfg, schema.clone());
            fit(
                &mut model,
                variant,
                &split.train,
                Some(&split.test),
                variant.uses_support().then_some(&split.support),
            );
            // Attention vectors of both domains, subsampled for t-SNE.
            let take = 80.min(split.train.len()).min(split.test.len());
            let att_s = model.attention(&split.train.pairs[..take]);
            let att_t = model.attention(&split.test.pairs[..take]);
            let mut points: Vec<Vec<f32>> = Vec::with_capacity(2 * take);
            for i in 0..take {
                points.push(att_s.row(i).to_vec());
            }
            for i in 0..take {
                points.push(att_t.row(i).to_vec());
            }
            let emb = tsne(
                &points,
                &TsneConfig { perplexity: 20.0, iterations: 250, ..Default::default() },
            );
            let (s_pts, t_pts) = emb.split_at(take);
            let ratio = separation_ratio(s_pts, t_pts);
            let name = format!("{} λ={lambda}", variant.name());
            rows.push(vec![name.clone(), format!("{ratio:.3}")]);
            for (i, p) in emb.iter().enumerate() {
                let domain = if i < take { "source" } else { "target" };
                csv.push_str(&format!(
                    "{},{},{},{:.4},{:.4}\n",
                    variant.name(),
                    lambda,
                    domain,
                    p[0],
                    p[1]
                ));
            }
            results.push((name, ratio));
        }
    }
    println!("\n--- Fig. 7: t-SNE separation of D_S vs D_T attention (lower = better aligned) ---");
    println!("{}", table::render(&["Configuration", "Separation ratio"], &rows));
    println!("(paper: λ=0.98 aligns the domains; λ=0 leaves them separable)");
    ctx.write_csv("fig7_tsne.csv", &csv);
    results
}

/// Fig. 8: PRAUC vs λ for zero/hyb on artist and album, including the λ = 1
/// collapse.
pub fn run_fig8(ctx: &Ctx) -> Vec<(String, f32, f64)> {
    let lambdas = [0.0f32, 0.2, 0.4, 0.6, 0.8, 0.9, 0.98, 1.0];
    let mut out = Vec::new();
    let mut csv = String::from("entity_type,variant,lambda,prauc\n");

    for etype in [EntityType::Artist, EntityType::Album] {
        let exp = MusicExperiment::new(&ctx.scale, etype, 42);
        let schema = exp.schema();
        let split = exp.split(&ctx.scale, Scenario::Overlapping, false, 1);
        println!("\n--- Fig. 8: PRAUC vs λ (Music-3K, {}) ---", etype.name());
        let mut rows = Vec::new();
        for variant in [Variant::Zero, Variant::Hyb] {
            for &lambda in &lambdas {
                let cfg = AdamelConfig::default().with_lambda(lambda).with_seed(1);
                let mut model = AdamelModel::new(cfg, schema.clone());
                fit(
                    &mut model,
                    variant,
                    &split.train,
                    Some(&split.test),
                    variant.uses_support().then_some(&split.support),
                );
                let prauc = evaluate_prauc(&model, &split.test);
                rows.push(vec![
                    variant.name().to_string(),
                    format!("{lambda:.2}"),
                    format!("{prauc:.4}"),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{:.4}\n",
                    etype.name(),
                    variant.name(),
                    lambda,
                    prauc
                ));
                out.push((format!("{} {}", etype.name(), variant.name()), lambda, prauc));
            }
        }
        println!("{}", table::render(&["Variant", "lambda", "PRAUC"], &rows));
    }
    println!("(paper: PRAUC rises toward λ=0.98, then collapses at λ=1 — no supervision left)");
    ctx.write_csv("fig8_lambda.csv", &csv);
    out
}
