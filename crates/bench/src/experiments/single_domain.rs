//! Table 7: single-domain F1 on the 11 benchmark datasets — DeepMatcher vs
//! AdaMEL-zero vs AdaMEL-hyb.
//!
//! In the single-domain protocol there is no unseen source: models train on
//! the labeled train split and are scored on the test split. AdaMEL-zero
//! adapts to the (unlabeled) test pairs; AdaMEL-hyb additionally uses a
//! slice of the train split as its support set, mirroring how the paper
//! runs the variants outside the MEL setting.

use super::Ctx;
use crate::table;
use adamel::{evaluate_f1, fit, AdamelConfig, AdamelModel, Variant};
use adamel_baselines::{self as baselines, BaselineConfig, EntityMatcherModel};
use adamel_data::{benchmark_specs, generate_benchmark};
use adamel_metrics::RunStats;
use adamel_schema::Domain;

/// One Table 7 row.
pub struct Row {
    /// Dataset type ("Structured"/"Dirty").
    pub category: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Domain column.
    pub domain: &'static str,
    /// DeepMatcher F1 (x100).
    pub deepmatcher: RunStats,
    /// AdaMEL-zero F1 (x100).
    pub zero: RunStats,
    /// AdaMEL-hyb F1 (x100).
    pub hyb: RunStats,
}

/// Runs Table 7.
pub fn run(ctx: &Ctx) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in benchmark_specs() {
        let mut dm_scores = Vec::new();
        let mut zero_scores = Vec::new();
        let mut hyb_scores = Vec::new();
        for seed in 1..=ctx.scale.runs as u64 {
            let data = generate_benchmark(&spec, seed);

            let mut dm = baselines::DeepMatcher::new(
                data.schema.clone(),
                BaselineConfig { seed, ..BaselineConfig::default() },
            );
            dm.fit(&data.train);
            dm_scores.push(baselines::evaluate_f1(&dm, &data.test) * 100.0);

            // Unlabeled view of the test pairs for adaptation.
            let unlabeled = Domain::new(
                data.test
                    .pairs
                    .iter()
                    .map(|p| {
                        let mut p = p.clone();
                        p.label = None;
                        p
                    })
                    .collect(),
            );
            let support_len = 100.min(data.train.len() / 3).max(2);
            let support = Domain::new(data.train.pairs[..support_len].to_vec());

            let cfg = AdamelConfig::default().with_seed(seed);
            let mut zero = AdamelModel::new(cfg.clone(), data.schema.clone());
            fit(&mut zero, Variant::Zero, &data.train, Some(&unlabeled), None);
            zero_scores.push(evaluate_f1(&zero, &data.test) * 100.0);

            let mut hyb = AdamelModel::new(cfg, data.schema.clone());
            fit(&mut hyb, Variant::Hyb, &data.train, Some(&unlabeled), Some(&support));
            hyb_scores.push(evaluate_f1(&hyb, &data.test) * 100.0);
        }
        rows.push(Row {
            category: if spec.dirty { "Dirty" } else { "Structured" },
            dataset: spec.name.to_string(),
            domain: spec.domain,
            deepmatcher: RunStats::from_runs(&dm_scores),
            zero: RunStats::from_runs(&zero_scores),
            hyb: RunStats::from_runs(&hyb_scores),
        });
    }

    println!("\n--- Table 7: single-domain F1 on benchmark datasets ---");
    let mut printed = Vec::new();
    let mut csv =
        String::from("category,dataset,domain,deepmatcher_f1,adamel_zero_f1,adamel_hyb_f1\n");
    for r in &rows {
        printed.push(vec![
            r.category.to_string(),
            r.dataset.clone(),
            r.domain.to_string(),
            format!("{:.1}", r.deepmatcher.mean),
            format!("{:.1}", r.zero.mean),
            format!("{:.1}", r.hyb.mean),
        ]);
        csv.push_str(&format!(
            "{},{},{},{:.2},{:.2},{:.2}\n",
            r.category, r.dataset, r.domain, r.deepmatcher.mean, r.zero.mean, r.hyb.mean
        ));
    }
    println!(
        "{}",
        table::render(
            &["Type", "Dataset", "Domain", "DeepMatcher", "AdaMEL-zero", "AdaMEL-hyb"],
            &printed
        )
    );
    println!("(paper: DeepMatcher >= AdaMEL-zero on single-domain data; AdaMEL-hyb comparable)");
    ctx.write_csv("table7_single_domain.csv", &csv);
    rows
}
