//! The uniform method roster used by every comparison experiment.

use adamel::{evaluate_f1, evaluate_prauc, fit, AdamelConfig, AdamelModel, Variant};
use adamel_baselines as baselines;
use adamel_baselines::{BaselineConfig, EntityMatcherModel};
use adamel_data::MelSplit;
use adamel_schema::Schema;

/// Every method of Fig. 6 / Tables 8–9, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// TLER (non-deep transfer ER).
    Tler,
    /// DeepMatcher-hybrid.
    DeepMatcher,
    /// EntityMatcher (hierarchical).
    EntityMatcher,
    /// Ditto (LM-based).
    Ditto,
    /// CorDel-Attention.
    CorDel,
    /// AdaMEL-base (no adaptation).
    AdamelBase,
    /// AdaMEL-zero (unsupervised DA).
    AdamelZero,
    /// AdaMEL-few (support set).
    AdamelFew,
    /// AdaMEL-hyb (both).
    AdamelHyb,
}

impl Method {
    /// The full roster in the paper's table order.
    pub const ALL: [Method; 9] = [
        Method::Tler,
        Method::DeepMatcher,
        Method::EntityMatcher,
        Method::Ditto,
        Method::CorDel,
        Method::AdamelBase,
        Method::AdamelZero,
        Method::AdamelFew,
        Method::AdamelHyb,
    ];

    /// Reporting name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Tler => "TLER",
            Method::DeepMatcher => "DeepMatcher",
            Method::EntityMatcher => "EntityMatcher",
            Method::Ditto => "Ditto",
            Method::CorDel => "CorDel-Attention",
            Method::AdamelBase => "AdaMEL-base",
            Method::AdamelZero => "AdaMEL-zero",
            Method::AdamelFew => "AdaMEL-few",
            Method::AdamelHyb => "AdaMEL-hyb",
        }
    }

    /// The AdaMEL variant, if this method is one.
    pub fn variant(self) -> Option<Variant> {
        match self {
            Method::AdamelBase => Some(Variant::Base),
            Method::AdamelZero => Some(Variant::Zero),
            Method::AdamelFew => Some(Variant::Few),
            Method::AdamelHyb => Some(Variant::Hyb),
            _ => None,
        }
    }
}

/// Which score to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Average-precision PRAUC (Fig. 6, Tables 8–9).
    PrAuc,
    /// Best-threshold F1 (Table 7).
    F1,
}

/// Outcome of one (method, split, seed) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The reported score.
    pub score: f64,
    /// Wall-clock training + inference seconds.
    pub runtime_secs: f64,
    /// Scalar parameter count of the trained model.
    pub num_parameters: usize,
}

/// Trains `method` on a MEL split and scores it on the test domain.
///
/// `lambda`/`phi` override the AdaMEL adaptation weights (pass the paper's
/// 0.98 / 1.0 defaults via [`AdamelConfig`] when unset); `feature_mode`
/// supports the Table 6 ablation.
pub fn run_method(
    method: Method,
    schema: &Schema,
    split: &MelSplit,
    metric: Metric,
    adamel_cfg: &AdamelConfig,
    baseline_cfg: &BaselineConfig,
    seed: u64,
) -> RunOutcome {
    let start = std::time::Instant::now();
    let (score, num_parameters) = match method.variant() {
        Some(variant) => {
            let cfg = adamel_cfg.clone().with_seed(seed);
            let mut model = AdamelModel::new(cfg, schema.clone());
            let target = variant.uses_target().then_some(&split.test);
            let support = variant.uses_support().then_some(&split.support);
            fit(&mut model, variant, &split.train, target, support);
            let score = match metric {
                Metric::PrAuc => evaluate_prauc(&model, &split.test),
                Metric::F1 => evaluate_f1(&model, &split.test),
            };
            (score, model.num_parameters())
        }
        None => {
            let cfg = BaselineConfig { seed, ..baseline_cfg.clone() };
            let mut model: Box<dyn EntityMatcherModel> = match method {
                Method::Tler => Box::new(baselines::Tler::new(schema.clone(), cfg)),
                Method::DeepMatcher => Box::new(baselines::DeepMatcher::new(schema.clone(), cfg)),
                Method::EntityMatcher => {
                    Box::new(baselines::EntityMatcher::new(schema.clone(), cfg))
                }
                Method::Ditto => Box::new(baselines::Ditto::new(schema.clone(), cfg)),
                Method::CorDel => Box::new(baselines::CorDel::new(schema.clone(), cfg)),
                _ => unreachable!("variant methods handled above"),
            };
            model.fit(&split.train);
            let score = match metric {
                Metric::PrAuc => baselines::evaluate_prauc(model.as_ref(), &split.test),
                Metric::F1 => baselines::evaluate_f1(model.as_ref(), &split.test),
            };
            (score, model.num_parameters())
        }
    };
    RunOutcome { score, runtime_secs: start.elapsed().as_secs_f64(), num_parameters }
}
