//! Plain-text table rendering for experiment reports.

/// Renders rows as an aligned ASCII table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = fmt_row(&header);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["Method", "PRAUC"],
            &[vec!["AdaMEL-hyb".into(), "0.92".into()], vec!["TLER".into(), "0.64".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].starts_with("AdaMEL-hyb"));
        // Columns align: "0.92" and "0.64" start at the same offset.
        let c1 = lines[2].find("0.92").unwrap();
        let c2 = lines[3].find("0.64").unwrap();
        assert_eq!(c1, c2);
    }
}
