//! End-to-end regression gate: two identical-seed `adamel-report gen` runs
//! must diff clean (zero metric delta, exit 0), and a perturbed run must
//! trip the gate (exit 1). Every generated ledger must validate.

use std::path::PathBuf;
use std::process::{Command, Output};

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_adamel-report"))
        .args(args)
        .output()
        .expect("spawn adamel-report")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adamel-report-gate-{}-{name}", std::process::id()))
}

#[test]
fn identical_seeds_pass_and_perturbation_fails() {
    let a = tmp("a.jsonl");
    let b = tmp("b.jsonl");
    let p = tmp("p.jsonl");
    let (a_s, b_s, p_s) = (a.to_str().unwrap(), b.to_str().unwrap(), p.to_str().unwrap());

    for (path, extra) in [(a_s, None), (b_s, None), (p_s, Some("--perturb"))] {
        let mut args = vec!["gen", "--seed", "11", "--out", path];
        if let Some(flag) = extra {
            args.push(flag);
        }
        let out = report(&args);
        assert!(
            out.status.success(),
            "gen {path} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        let out = report(&["validate", path]);
        assert!(
            out.status.success(),
            "validate {path} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Identical seeds: metric deltas are exactly zero and the gate passes.
    let out = report(&["diff", a_s, b_s]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "identical-seed diff failed:\n{stdout}");
    assert!(stdout.contains("PASS"), "no PASS verdict:\n{stdout}");
    let zero_deltas = stdout.matches("(delta +0.0000)").count();
    assert!(zero_deltas >= 2, "expected zero deltas for pr_auc and best_f1:\n{stdout}");

    // The undertrained run regresses both metrics: exit code 1, not 2.
    let out = report(&["diff", a_s, p_s]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "perturbed diff should exit 1:\n{stdout}");
    assert!(stdout.contains("REGRESSION"), "no REGRESSION marker:\n{stdout}");

    // A summary renders for a valid ledger.
    let out = report(&["summary", a_s]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("metric pr_auc"), "summary missing metrics:\n{stdout}");

    for path in [a, b, p] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn diff_rejects_garbage_with_usage_exit_code() {
    let bad = tmp("bad.jsonl");
    std::fs::write(&bad, "not json\n").unwrap();
    let out = report(&["validate", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = report(&["diff", bad.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_file(bad);
}
