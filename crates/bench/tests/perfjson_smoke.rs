//! Smoke test for the `perfjson` binary: `--smoke --out` must emit a JSON
//! document that parses and carries the trace off/full overhead pair.

use adamel_obs::json::Json;
use std::process::Command;

#[test]
fn smoke_output_parses_and_has_trace_pair() {
    let out = std::env::temp_dir().join(format!("perfjson-smoke-{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_perfjson"))
        .arg("--smoke")
        .arg("--out")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn perfjson");
    assert!(status.success(), "perfjson --smoke failed: {status:?}");

    let text = std::fs::read_to_string(&out).expect("read output");
    let _ = std::fs::remove_file(&out);
    let doc = Json::parse(&text).expect("output is valid JSON");

    // The off/full tracing overhead pair the docs point readers at.
    let trace = doc.get("trace").expect("trace object");
    for key in ["off_ms", "full_ms", "full_over_off"] {
        let v = trace.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite() && v >= 0.0, "{key} = {v}");
    }

    // Sanitizer pair and host parallelism ride along.
    assert!(doc.get("sanitize").and_then(|s| s.get("on_over_off")).is_some());
    assert!(doc.get("host_parallelism").and_then(Json::as_u64).is_some());

    // Every timing row is well-formed.
    let rows = doc.get("rows").and_then(Json::as_array).expect("rows array");
    assert!(!rows.is_empty());
    for row in rows {
        assert!(row.get("kernel").and_then(Json::as_str).is_some());
        assert!(row.get("threads").and_then(Json::as_u64).is_some());
        let ms = row.get("ms").and_then(Json::as_f64).expect("ms");
        assert!(ms.is_finite() && ms >= 0.0);
    }

    // The encoding-cache triple: cold (cleared per run), headline warm, and
    // the explicit cached phase. Plus the compiled-plan/tape inference pair.
    for kernel in
        ["encode_pairs_cold", "encode_pairs", "encode_pairs_cached", "predict_plan", "predict_tape"]
    {
        assert!(
            rows.iter().any(|r| r.get("kernel").and_then(Json::as_str) == Some(kernel)),
            "missing {kernel} row"
        );
    }

    // GEMM rows carry a nonzero achieved-GFLOP/s column.
    for kernel in ["matmul", "matmul_tn", "matmul_nt"] {
        let g = rows
            .iter()
            .find(|r| r.get("kernel").and_then(Json::as_str) == Some(kernel))
            .and_then(|r| r.get("gflops"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("missing gflops on {kernel}"));
        assert!(g > 0.0, "{kernel} gflops = {g}");
    }

    // The cache section: warm-phase deltas must show a pure-hit phase over
    // non-trivial contents (this is deterministic, not a timing property).
    let cache = doc.get("cache").expect("cache object");
    let num = |k: &str| cache.get(k).and_then(Json::as_f64).expect(k);
    assert!(num("hit_rate") >= 0.99, "warm-phase hit_rate {}", num("hit_rate"));
    assert!(num("misses") == 0.0, "warm-phase misses {}", num("misses"));
    assert!(num("distinct_records") >= 1.0);
    assert!(num("interned_tokens") >= 1.0);
}

/// The CI gate end-to-end: `adamel-report validate-bench` must pass the JSON
/// `perfjson --smoke` emits, and must fail one with the cache contract
/// broken.
#[test]
fn validate_bench_gates_smoke_output() {
    let out = std::env::temp_dir().join(format!("perfjson-gate-{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_perfjson"))
        .arg("--smoke")
        .arg("--out")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn perfjson");
    assert!(status.success(), "perfjson --smoke failed: {status:?}");

    let report = env!("CARGO_BIN_EXE_adamel-report");
    let ok = Command::new(report)
        .arg("validate-bench")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn adamel-report");
    assert!(ok.success(), "validate-bench rejected healthy smoke output: {ok:?}");

    let text = std::fs::read_to_string(&out).expect("read output");
    let must_fail = |broken: String, what: &str| {
        assert_ne!(broken, text, "mutation for `{what}` did not change the document");
        std::fs::write(&out, &broken).expect("write broken output");
        let bad = Command::new(report)
            .arg("validate-bench")
            .arg(&out)
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn adamel-report");
        assert_eq!(bad.code(), Some(1), "validate-bench must fail: {what}");
    };

    // Break the cache contract (pretend the warm phase missed).
    must_fail(
        text.replacen("\"hit_rate\": 1.000", "\"hit_rate\": 0.500", 1),
        "warm-phase hit_rate below 0.99",
    );
    // Hide the compiled-plan row.
    must_fail(
        text.replace("\"kernel\": \"predict_plan\"", "\"kernel\": \"predict_plan_gone\""),
        "missing predict_plan row",
    );
    // Make the plan lose badly to the tape it replaced (rows are one per
    // line, so rewrite the `ms` value on the predict_plan lines).
    must_fail(
        text.lines()
            .map(|l| {
                if l.contains("\"kernel\": \"predict_plan\"") {
                    let (head, rest) = l.split_once("\"ms\": ").expect("ms field");
                    let (_, tail) = rest.split_once(',').expect("ms value end");
                    format!("{head}\"ms\": 999999.0,{tail}")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n",
        "predict_plan slower than predict_tape",
    );
    // Zero out the GEMM flop accounting (rows are one per line).
    must_fail(
        text.lines()
            .map(|l| {
                if l.contains("\"kernel\": \"matmul") {
                    let (head, rest) = l.split_once("\"gflops\": ").expect("gflops field");
                    let tail = if rest.trim_end().ends_with("},") { "}," } else { "}" };
                    format!("{head}\"gflops\": 0.000{tail}")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n",
        "matmul gflops zeroed",
    );

    let _ = std::fs::remove_file(&out);
}
