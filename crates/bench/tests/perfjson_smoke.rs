//! Smoke test for the `perfjson` binary: `--smoke --out` must emit a JSON
//! document that parses and carries the trace off/full overhead pair.

use adamel_obs::json::Json;
use std::process::Command;

#[test]
fn smoke_output_parses_and_has_trace_pair() {
    let out = std::env::temp_dir().join(format!("perfjson-smoke-{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_perfjson"))
        .arg("--smoke")
        .arg("--out")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn perfjson");
    assert!(status.success(), "perfjson --smoke failed: {status:?}");

    let text = std::fs::read_to_string(&out).expect("read output");
    let _ = std::fs::remove_file(&out);
    let doc = Json::parse(&text).expect("output is valid JSON");

    // The off/full tracing overhead pair the docs point readers at.
    let trace = doc.get("trace").expect("trace object");
    for key in ["off_ms", "full_ms", "full_over_off"] {
        let v = trace.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite() && v >= 0.0, "{key} = {v}");
    }

    // Sanitizer pair and host parallelism ride along.
    assert!(doc.get("sanitize").and_then(|s| s.get("on_over_off")).is_some());
    assert!(doc.get("host_parallelism").and_then(Json::as_u64).is_some());

    // Every timing row is well-formed.
    let rows = doc.get("rows").and_then(Json::as_array).expect("rows array");
    assert!(!rows.is_empty());
    for row in rows {
        assert!(row.get("kernel").and_then(Json::as_str).is_some());
        assert!(row.get("threads").and_then(Json::as_u64).is_some());
        let ms = row.get("ms").and_then(Json::as_f64).expect("ms");
        assert!(ms.is_finite() && ms >= 0.0);
    }
}
