//! Criterion benches backing the paper's performance claims (§5.5, Fig. 9
//! runtime table): AdaMEL trains far faster than the word-level baselines
//! at matched data and text dimensions.

use adamel::{fit, AdamelConfig, AdamelModel, Variant};
use adamel_baselines::{
    BaselineConfig, CorDel, DeepMatcher, EntityMatcher, EntityMatcherModel, Tler,
};
use adamel_bench::{MusicExperiment, Scale};
use adamel_data::{EntityType, MelSplit, Scenario};
use adamel_schema::Schema;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fixture() -> (Schema, MelSplit) {
    let scale = Scale::smoke();
    let exp = MusicExperiment::new(&scale, EntityType::Artist, 42);
    let split = exp.split(&scale, Scenario::Overlapping, false, 1);
    (exp.schema(), split)
}

/// Few-epoch configs so each bench iteration is one comparable unit of
/// training work.
fn adamel_cfg() -> AdamelConfig {
    AdamelConfig { epochs: 3, ..AdamelConfig::default() }
}
fn baseline_cfg() -> BaselineConfig {
    BaselineConfig { epochs: 3, ..BaselineConfig::default() }
}

fn bench_training(c: &mut Criterion) {
    let (schema, split) = fixture();
    let mut group = c.benchmark_group("train_3_epochs");
    group.sample_size(10);

    group.bench_function("adamel_base", |b| {
        b.iter(|| {
            let mut m = AdamelModel::new(adamel_cfg(), schema.clone());
            fit(&mut m, Variant::Base, &split.train, None, None);
            black_box(m.num_parameters())
        })
    });
    group.bench_function("adamel_hyb", |b| {
        b.iter(|| {
            let mut m = AdamelModel::new(adamel_cfg(), schema.clone());
            fit(&mut m, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
            black_box(m.num_parameters())
        })
    });
    group.bench_function("tler", |b| {
        b.iter(|| {
            let mut m = Tler::new(schema.clone(), baseline_cfg());
            m.fit(&split.train);
            black_box(m.num_parameters())
        })
    });
    group.bench_function("deepmatcher", |b| {
        b.iter(|| {
            let mut m = DeepMatcher::new(schema.clone(), baseline_cfg());
            m.fit(&split.train);
            black_box(m.num_parameters())
        })
    });
    group.bench_function("cordel", |b| {
        b.iter(|| {
            let mut m = CorDel::new(schema.clone(), baseline_cfg());
            m.fit(&split.train);
            black_box(m.num_parameters())
        })
    });
    group.bench_function("entitymatcher", |b| {
        b.iter(|| {
            let mut m = EntityMatcher::new(schema.clone(), baseline_cfg());
            m.fit(&split.train);
            black_box(m.num_parameters())
        })
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let (schema, split) = fixture();
    let mut group = c.benchmark_group("predict_target_domain");
    group.sample_size(10);

    let mut adamel = AdamelModel::new(adamel_cfg(), schema.clone());
    fit(&mut adamel, Variant::Base, &split.train, None, None);
    group.bench_function("adamel", |b| b.iter(|| black_box(adamel.predict(&split.test.pairs))));

    let mut em = EntityMatcher::new(schema.clone(), baseline_cfg());
    em.fit(&split.train);
    group.bench_function("entitymatcher", |b| b.iter(|| black_box(em.predict(&split.test.pairs))));
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let (schema, split) = fixture();
    let model = AdamelModel::new(adamel_cfg(), schema);
    let encoded = model.encode(&split.test.pairs);
    c.bench_function("attention_forward_target", |b| {
        b.iter(|| black_box(model.attention_encoded(&encoded)))
    });
}

criterion_group!(benches, bench_training, bench_inference, bench_attention);
criterion_main!(benches);
