//! Criterion benches for the data/text/metrics pipeline stages: world
//! generation, pair sampling, feature encoding, hashed embeddings, PRAUC,
//! and t-SNE.

use adamel_bench::{MusicExperiment, Scale};
use adamel_data::{EntityType, MusicConfig, MusicWorld, PairSampler, Scenario};
use adamel_metrics::{pr_auc, tsne, TsneConfig};
use adamel_schema::{FeatureExtractor, FeatureMode};
use adamel_text::HashedFastText;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_generation");
    group.sample_size(10);
    group.bench_function("music_world_default", |b| {
        b.iter(|| black_box(MusicWorld::generate(&MusicConfig::default(), 7).records.len()))
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let world = MusicWorld::generate(&MusicConfig::default(), 7);
    let records = world.records_of(EntityType::Artist, None);
    let mut group = c.benchmark_group("pair_sampling");
    group.sample_size(10);
    group.bench_function("index_and_sample_200_pairs", |b| {
        b.iter(|| {
            let sampler = PairSampler::new(&records, "name");
            let mut rng = StdRng::seed_from_u64(1);
            let pos = sampler.positives(100, |_, _| true, &mut rng);
            let neg = sampler.negatives(100, 0.5, |_, _| true, &mut rng);
            black_box(pos.len() + neg.len())
        })
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let scale = Scale::smoke();
    let exp = MusicExperiment::new(&scale, EntityType::Artist, 42);
    let split = exp.split(&scale, Scenario::Overlapping, false, 1);
    let extractor =
        FeatureExtractor::new(exp.schema(), HashedFastText::new(48, 7), 20, FeatureMode::Both);
    let mut group = c.benchmark_group("feature_encoding");
    group.sample_size(10);
    group.bench_function("encode_train_split", |b| {
        b.iter(|| black_box(extractor.encode_pairs(&split.train.pairs).len()))
    });
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let ft = HashedFastText::new(300, 7);
    c.bench_function("hashed_fasttext_token_300d", |b| {
        b.iter(|| black_box(ft.embed_token("multisource")))
    });
    let tokens: Vec<String> =
        "deep transfer learning for multi source entity linkage via domain adaptation"
            .split(' ')
            .map(str::to_owned)
            .collect();
    c.bench_function("hashed_fasttext_sentence_300d", |b| {
        b.iter(|| black_box(ft.embed_tokens(&tokens)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let n = 5000;
    let mut state = 99u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f32 / (1u64 << 31) as f32
    };
    let scores: Vec<f32> = (0..n).map(|_| next()).collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
    c.bench_function("pr_auc_5000", |b| b.iter(|| black_box(pr_auc(&scores, &labels))));
}

fn bench_tsne(c: &mut Criterion) {
    let points: Vec<Vec<f32>> =
        (0..60).map(|i| (0..18).map(|j| ((i * 31 + j * 7) % 13) as f32 / 13.0).collect()).collect();
    let cfg = TsneConfig { iterations: 100, perplexity: 10.0, ..Default::default() };
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    group.bench_function("tsne_60x18_100iters", |b| b.iter(|| black_box(tsne(&points, &cfg))));
    group.finish();
}

criterion_group!(
    benches,
    bench_world_generation,
    bench_sampling,
    bench_encoding,
    bench_embedding,
    bench_metrics,
    bench_tsne
);
criterion_main!(benches);
