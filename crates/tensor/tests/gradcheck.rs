//! Property-based gradient checks: every differentiable op's analytic
//! backward pass is compared against central finite differences on random
//! inputs.

use adamel_oracle::{kl_ref, RefMatrix};
use adamel_tensor::{Graph, Matrix, ParamId, ParamSet};
use proptest::prelude::*;

/// Builds a scalar loss from a parameter matrix.
type LossFn = dyn Fn(&mut Graph, &ParamSet, ParamId) -> adamel_tensor::Var;

/// Computes the analytic gradient and compares it elementwise to a central
/// finite difference with step `h`, using a mixed absolute/relative
/// tolerance.
fn gradcheck(mut values: Matrix, build: &LossFn, h: f32, tol: f32) {
    let mut params = ParamSet::new();
    let id = params.insert("p", values.clone());

    // Analytic gradient.
    let mut g = Graph::new();
    let loss = build(&mut g, &params, id);
    g.backward(loss, &mut params);
    let analytic = params.grad(id).clone();

    // Finite differences.
    for i in 0..values.rows() {
        for j in 0..values.cols() {
            let orig = values.get(i, j);

            values.set(i, j, orig + h);
            let mut pp = ParamSet::new();
            let idp = pp.insert("p", values.clone());
            let mut gp = Graph::new();
            let lp = build(&mut gp, &pp, idp);
            let up = gp.value(lp).item();

            values.set(i, j, orig - h);
            let mut pm = ParamSet::new();
            let idm = pm.insert("p", values.clone());
            let mut gm = Graph::new();
            let lm = build(&mut gm, &pm, idm);
            let down = gm.value(lm).item();

            values.set(i, j, orig);

            let numeric = (up - down) / (2.0 * h);
            let a = analytic.get(i, j);
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < tol,
                "grad mismatch at ({i},{j}): analytic {a}, numeric {numeric}"
            );
        }
    }
}

/// Random matrix strategy with entries in a range that keeps finite
/// differences well conditioned.
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_grad(m in small_matrix(3, 4)) {
        let rhs = Matrix::from_rows(&[
            vec![0.5, -1.0], vec![1.5, 0.3], vec![-0.7, 2.0], vec![0.2, 0.9],
        ]);
        gradcheck(m, &move |g, p, id| {
            let x = g.param(p, id);
            let w = g.constant(rhs.clone());
            let y = g.matmul(x, w);
            g.sum_all(y)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn matmul_rhs_grad(m in small_matrix(4, 2)) {
        let lhs = Matrix::from_rows(&[vec![0.5, -1.0, 1.5, 0.3], vec![-0.7, 2.0, 0.2, 0.9]]);
        gradcheck(m, &move |g, p, id| {
            let w = g.param(p, id);
            let x = g.constant(lhs.clone());
            let y = g.matmul(x, w);
            g.sum_all(y)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn tanh_grad(m in small_matrix(2, 3)) {
        gradcheck(m, &|g, p, id| {
            let x = g.param(p, id);
            let y = g.tanh(x);
            // Weight elements unevenly so the upstream grad is non-uniform.
            let w = g.constant(Matrix::from_rows(&[
                vec![1.0, -2.0, 0.5], vec![0.3, 1.7, -1.1],
            ]));
            let wy = g.mul(y, w);
            g.sum_all(wy)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn sigmoid_grad(m in small_matrix(2, 2)) {
        gradcheck(m, &|g, p, id| {
            let x = g.param(p, id);
            let y = g.sigmoid(x);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn softmax_grad(m in small_matrix(2, 4)) {
        gradcheck(m, &|g, p, id| {
            let x = g.param(p, id);
            let s = g.softmax_rows(x);
            let w = g.constant(Matrix::from_rows(&[
                vec![1.0, -1.0, 2.0, 0.5], vec![0.0, 3.0, -2.0, 1.0],
            ]));
            let ws = g.mul(s, w);
            g.sum_all(ws)
        }, 1e-2, 3e-2);
    }

    #[test]
    fn add_row_broadcast_grad(m in small_matrix(1, 3)) {
        gradcheck(m, &|g, p, id| {
            let b = g.param(p, id);
            let x = g.constant(Matrix::from_rows(&[
                vec![1.0, 2.0, 3.0], vec![-1.0, 0.5, 0.0],
            ]));
            let y = g.add_row_broadcast(x, b);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn mul_col_broadcast_grad(m in small_matrix(3, 1)) {
        gradcheck(m, &|g, p, id| {
            let c = g.param(p, id);
            let x = g.constant(Matrix::from_rows(&[
                vec![1.0, 2.0], vec![-1.0, 0.5], vec![0.3, -0.7],
            ]));
            let y = g.mul_col_broadcast(x, c);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn bce_with_logits_grad(m in small_matrix(4, 1)) {
        gradcheck(m, &|g, p, id| {
            let z = g.param(p, id);
            let targets = Matrix::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]);
            g.bce_with_logits(z, targets)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn weighted_bce_grad(m in small_matrix(3, 1)) {
        gradcheck(m, &|g, p, id| {
            let z = g.param(p, id);
            let targets = Matrix::from_vec(3, 1, vec![1.0, 0.0, 1.0]);
            let weights = Matrix::from_vec(3, 1, vec![0.5, 2.0, 1.3]);
            g.weighted_bce_with_logits(z, targets, weights)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn kl_through_softmax_grad(m in small_matrix(2, 3)) {
        gradcheck(m, &|g, p, id| {
            let z = g.param(p, id);
            let probs = g.softmax_rows(z);
            let target = Matrix::from_rows(&[vec![0.2, 0.3, 0.5]]);
            g.kl_const_rows(probs, target, 1e-8)
        }, 1e-2, 3e-2);
    }

    #[test]
    fn concat_cols_grad(m in small_matrix(2, 2)) {
        gradcheck(m, &|g, p, id| {
            let x = g.param(p, id);
            let other = g.constant(Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 6.0]]));
            let cat = g.concat_cols(&[x, other, x]);
            let w = g.constant(Matrix::from_rows(&[
                vec![1.0, -1.0, 0.5, 2.0, 3.0, -2.0],
                vec![0.2, 0.4, -0.6, 1.2, -1.0, 0.7],
            ]));
            let wy = g.mul(cat, w);
            g.sum_all(wy)
        }, 1e-2, 2e-2);
    }

    #[test]
    fn full_adamel_style_stack_grad(m in small_matrix(3, 2)) {
        // relu(x @ V + b) -> attention -> weighted concat -> linear: the
        // actual composition AdaMEL uses, end to end through one parameter.
        gradcheck(m, &|g, p, id| {
            let w = g.param(p, id);
            let x = g.constant(Matrix::from_rows(&[
                vec![1.0, 0.5, -0.3], vec![0.2, -1.0, 0.8],
            ]));
            let b = g.constant(Matrix::from_rows(&[vec![0.1, -0.1]]));
            let h = g.linear(x, w, b);
            let hr = g.tanh(h);
            let a = g.constant(Matrix::from_rows(&[vec![1.0], vec![-1.0]]));
            let e = g.matmul(hr, a);
            let e_t = g.constant(Matrix::from_rows(&[vec![0.4], vec![0.6]]));
            let scores = g.concat_cols(&[e, e_t]);
            let probs = g.softmax_rows(scores);
            let target = Matrix::from_rows(&[vec![0.5, 0.5]]);
            let kl = g.kl_const_rows(probs, target, 1e-8);
            let logits = g.matmul(hr, a);
            let bce = g.bce_with_logits(logits, Matrix::from_vec(2, 1, vec![1.0, 0.0]));
            let kl_scaled = g.scale(kl, 0.7);
            let bce_scaled = g.scale(bce, 0.3);
            g.add(kl_scaled, bce_scaled)
        }, 1e-2, 4e-2);
    }
}

/// Like [`gradcheck`], but the finite differences come from an `f64` oracle
/// re-implementation of the loss (`adamel-oracle`), so the numeric gradient
/// carries none of the `f32` forward-pass rounding that forces loose
/// tolerances above. The oracle forward is also checked against production.
fn oracle_gradcheck(
    values: Matrix,
    build: &LossFn,
    oracle_loss: &dyn Fn(&RefMatrix) -> f64,
    tol: f32,
) {
    let mut params = ParamSet::new();
    let id = params.insert("p", values.clone());

    let mut g = Graph::new();
    let loss = build(&mut g, &params, id);
    let prod_loss = f64::from(g.value(loss).item());
    let base = RefMatrix::from_matrix(&values);
    let oracle_val = oracle_loss(&base);
    assert!(
        (prod_loss - oracle_val).abs() <= 1e-3 * oracle_val.abs().max(1.0),
        "forward drifted from oracle: production {prod_loss}, oracle {oracle_val}"
    );
    g.backward(loss, &mut params);
    let analytic = params.grad(id).clone();

    let h = 1e-5f64;
    for i in 0..values.rows() {
        for j in 0..values.cols() {
            let mut up = base.clone();
            up.set(i, j, base.get(i, j) + h);
            let mut down = base.clone();
            down.set(i, j, base.get(i, j) - h);
            let numeric = (oracle_loss(&up) - oracle_loss(&down)) / (2.0 * h);
            let a = f64::from(analytic.get(i, j));
            let denom = 1.0f64.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < f64::from(tol),
                "oracle grad mismatch at ({i},{j}): analytic {a}, oracle fd {numeric}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kl_term_grad_matches_oracle_fd(m in small_matrix(3, 4)) {
        // The Eq. 9 KL term exactly as training composes it: probabilities
        // from a softmax, eps-guarded log against a constant target row.
        let target = [0.1f64, 0.2, 0.3, 0.4];
        oracle_gradcheck(
            m,
            &move |g, p, id| {
                let z = g.param(p, id);
                let probs = g.softmax_rows(z);
                let t = Matrix::from_vec(1, 4, target.map(|v| v as f32).to_vec());
                g.kl_const_rows(probs, t, 1e-7)
            },
&move |z| {
                let t = RefMatrix::from_vec(1, 4, target.to_vec());
                kl_ref(&z.softmax_rows(), &t, 1e-7)
            },
            2e-2,
        );
    }

    #[test]
    fn attention_softmax_path_grad_matches_oracle_fd(m in small_matrix(3, 2)) {
        // The Eq. 5–6 attention path: energies from tanh projections, a
        // softmax over features, and the attention column scaling the
        // projection it came from (mul_col_broadcast), reduced to a scalar.
        let x = [[1.0f64, 0.5, -0.3], [0.2, -1.0, 0.8]];
        let a = [1.0f64, -1.0];
        let e_t = [0.4f64, 0.6];
        oracle_gradcheck(
            m,
            &move |g, p, id| {
                let w = g.param(p, id);
                let xc = g.constant(Matrix::from_vec(2, 3, x.iter().flatten().map(|&v| v as f32).collect()));
                let h = g.matmul(xc, w);
                let t = g.tanh(h);
                let ac = g.constant(Matrix::from_vec(2, 1, a.map(|v| v as f32).to_vec()));
                let e = g.matmul(t, ac);
                let etc = g.constant(Matrix::from_vec(2, 1, e_t.map(|v| v as f32).to_vec()));
                let scores = g.concat_cols(&[e, etc]);
                let att = g.softmax_rows(scores);
                let col = g.slice_cols(att, 0, 1);
                let scaled = g.mul_col_broadcast(t, col);
                g.sum_all(scaled)
            },
&move |w| {
                let xc = RefMatrix::from_vec(2, 3, x.iter().flatten().copied().collect());
                let t = xc.matmul(w).map(f64::tanh);
                let ac = RefMatrix::from_vec(2, 1, a.to_vec());
                let e = t.matmul(&ac);
                let etc = RefMatrix::from_vec(2, 1, e_t.to_vec());
                let att = RefMatrix::concat_cols(&[&e, &etc]).softmax_rows();
                t.mul_col_broadcast(&att.slice_cols(0, 1)).sum()
            },
            2e-2,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn slice_cols_grad(m in small_matrix(2, 4)) {
        gradcheck(m, &|g, p, id| {
            let x = g.param(p, id);
            let left = g.slice_cols(x, 0, 2);
            let right = g.slice_cols(x, 2, 2);
            let prod = g.mul(left, right);
            g.sum_all(prod)
        }, 1e-2, 2e-2);
    }
}
