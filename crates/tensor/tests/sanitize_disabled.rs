//! Forced-off sanitizer is a no-op: the same non-finite graph that panics in
//! `tests/sanitize.rs` must pass silently here. Lives in its own integration
//! test binary because `set_forced` is process-global.

use adamel_tensor::{sanitize, Graph, Matrix};

#[test]
fn disabled_sanitizer_lets_non_finite_values_through() {
    sanitize::set_forced(Some(false));
    assert!(!sanitize::enabled());

    let mut g = Graph::new();
    let a = g.constant(Matrix::from_rows(&[vec![1e38, 2.0]]));
    let b = g.constant(Matrix::from_rows(&[vec![1e38, 3.0]]));
    let prod = g.mul(a, b);
    assert!(g.value(prod).get(0, 0).is_infinite());

    // Direct checks are no-ops too.
    sanitize::check_rows_normalized("softmax_rows", &Matrix::from_rows(&[vec![5.0, 5.0]]));
    sanitize::check_loss_non_negative("kl_const_rows", f32::NAN, 1e-3);
}
