//! With tracing off, the tape-op instrumentation must be inert: no spans
//! entered, nothing in the registry, results unchanged. This test file runs
//! in its own process, so forcing the process-global trace level is safe.

use adamel_tensor::{Graph, Matrix, ParamSet};

fn run_tape() -> f32 {
    let mut params = ParamSet::new();
    let w = params.insert("w", Matrix::full(4, 4, 0.5));
    let mut g = Graph::new();
    let x = g.constant(Matrix::full(8, 4, 1.0));
    let wv = g.param(&params, w);
    let h = g.matmul(x, wv);
    let h = g.relu(h);
    let h = g.softmax_rows(h);
    let loss = g.mean_all(h);
    g.backward(loss, &mut params);
    g.value(loss).item()
}

#[test]
fn trace_off_records_nothing_and_changes_nothing() {
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Off));
    adamel_obs::report::reset();

    let before = adamel_obs::spans_entered();
    let loss_off = run_tape();
    assert_eq!(adamel_obs::spans_entered(), before, "trace-off tape ops must not enter spans");
    let json = adamel_obs::report::render_json();
    assert!(json.contains("\"spans\": {}"), "registry picked up spans: {json}");
    assert!(json.contains("\"counters\": {}"), "registry picked up counters: {json}");
    // The memory ledger obeys the same off-means-off contract: the tape,
    // matmul packing arenas, and graph-drop observers add zero gauges.
    assert!(json.contains("\"gauges\": {}"), "registry picked up mem gauges: {json}");
    assert!(adamel_obs::mem::snapshot().is_empty(), "mem ledger populated while off");

    // Observation must never change numeric results: the same tape under
    // full tracing produces the bit-identical loss.
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Full));
    let loss_full = run_tape();
    assert_eq!(loss_off.to_bits(), loss_full.to_bits());
    // With tracing on, the graph-drop observer reports the tape footprint.
    assert!(
        adamel_obs::mem::peak("tensor.graph.bytes").unwrap_or(0) > 0,
        "tensor.graph.bytes gauge missing under full tracing"
    );

    adamel_obs::set_forced(None);
    adamel_obs::report::reset();
}
