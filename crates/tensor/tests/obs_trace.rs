//! At `full`, every tape op records one span and `backward` records a
//! coarse span. This test file runs in its own process, so forcing the
//! process-global trace level is safe.

use adamel_tensor::{Adam, Graph, Matrix, Optimizer, ParamSet};

#[test]
fn full_trace_covers_tape_ops_backward_and_optimizer() {
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Full));
    adamel_obs::report::reset();

    let mut params = ParamSet::new();
    let w = params.insert("w", Matrix::full(3, 3, 0.1));
    let mut g = Graph::new();
    let x = g.constant(Matrix::full(4, 3, 1.0));
    let wv = g.param(&params, w);
    let h = g.matmul(x, wv);
    let h = g.tanh(h);
    let s = g.softmax_rows(h);
    let loss = g.mean_all(s);
    g.backward(loss, &mut params);
    let mut opt = Adam::with_lr(0.01);
    opt.step(&mut params);

    let json = adamel_obs::report::render_json();
    for span in ["matmul", "tanh", "softmax_rows", "mean_all", "backward", "adam_step"] {
        assert!(json.contains(&format!("\"{span}\"")), "missing span {span} in {json}");
    }

    adamel_obs::set_forced(None);
    adamel_obs::report::reset();
}

#[test]
fn spans_level_skips_per_op_spans_but_keeps_coarse_ones() {
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Spans));
    adamel_obs::report::reset();

    let mut params = ParamSet::new();
    let w = params.insert("w", Matrix::full(2, 2, 0.1));
    let mut g = Graph::new();
    let x = g.constant(Matrix::full(2, 2, 1.0));
    let wv = g.param(&params, w);
    let h = g.matmul(x, wv);
    let loss = g.mean_all(h);
    g.backward(loss, &mut params);

    let json = adamel_obs::report::render_json();
    assert!(json.contains("\"backward\""), "coarse span missing: {json}");
    assert!(!json.contains("\"matmul\""), "per-op span leaked at spans level: {json}");

    adamel_obs::set_forced(None);
    adamel_obs::report::reset();
}
