//! Property-based tests of the matrix kernels.

use adamel_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(4, 2)
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    #[test]
    fn matmul_associates(a in arb_matrix(2, 3), b in arb_matrix(3, 2), c in arb_matrix(2, 3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-2));
    }

    #[test]
    fn fused_transpose_matmuls_match_explicit(a in arb_matrix(3, 4), b in arb_matrix(3, 2)) {
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert!(approx_eq(&fused, &explicit, 1e-4));

        let c = Matrix::from_vec(2, 4, b.matmul_tn(&a).transpose().into_vec());
        let fused_nt = c.matmul_nt(&a); // (2x4) x (3x4)^T -> 2x3
        let explicit_nt = c.matmul(&a.transpose());
        prop_assert!(approx_eq(&fused_nt, &explicit_nt, 1e-4));
    }

    #[test]
    fn transpose_is_involutive(a in arb_matrix(3, 5)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_matrix(4, 6)) {
        let s = a.softmax_rows();
        prop_assert!(s.is_finite());
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in arb_matrix(2, 5), shift in -10.0f32..10.0) {
        let shifted = a.map(|v| v + shift);
        prop_assert!(approx_eq(&a.softmax_rows(), &shifted.softmax_rows(), 1e-5));
    }

    #[test]
    fn mean_rows_matches_manual(a in arb_matrix(5, 3)) {
        let mu = a.mean_rows();
        for j in 0..3 {
            let manual: f32 = (0..5).map(|i| a.get(i, j)).sum::<f32>() / 5.0;
            prop_assert!((mu.get(0, j) - manual).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_then_slice_round_trips(a in arb_matrix(3, 2), b in arb_matrix(3, 4)) {
        let cat = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 4), b);
    }

    #[test]
    fn select_rows_identity(a in arb_matrix(4, 3)) {
        let all: Vec<usize> = (0..4).collect();
        prop_assert_eq!(a.select_rows(&all), a);
    }

    #[test]
    fn norm_triangle_inequality(a in arb_matrix(2, 4), b in arb_matrix(2, 4)) {
        prop_assert!(a.add(&b).norm() <= a.norm() + b.norm() + 1e-4);
    }

    #[test]
    fn distance_is_a_metric(a in arb_matrix(1, 5), b in arb_matrix(1, 5), c in arb_matrix(1, 5)) {
        prop_assert!((a.distance(&a)).abs() < 1e-6);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-5);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-4);
    }
}
