//! Equivalence properties for the scoped-thread kernels: every parallel
//! dispatch must produce bit-identical results to the serial path, for any
//! shape (including empty and ragged-last-chunk cases) and any thread count
//! (including more threads than rows).

use adamel_tensor::{parallel, Matrix};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix fill in `[-2, 2]`; the proptest seed
/// drives the stream so every case sees different values.
fn fill_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f32 / (1u64 << 53) as f32;
        4.0 * u - 2.0
    };
    let data: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_parallel_matches_serial(
        dims in (0usize..24, 0usize..24, 0usize..24),
        seed in 0u64..u64::MAX,
        threads in 2usize..10,
    ) {
        let (m, k, n) = dims;
        let a = fill_matrix(m, k, seed);
        let b = fill_matrix(k, n, seed.wrapping_add(1));
        let serial = parallel::with_threads(1, || a.matmul(&b));
        let par = parallel::with_threads(threads, || a.matmul(&b));
        prop_assert_eq!(serial.as_slice(), par.as_slice());
    }

    #[test]
    fn matmul_tn_parallel_matches_serial(
        dims in (0usize..24, 0usize..24, 0usize..24),
        seed in 0u64..u64::MAX,
        threads in 2usize..10,
    ) {
        // A is k x n, B is k x m, result is A^T B (n x m).
        let (k, n, m) = dims;
        let a = fill_matrix(k, n, seed);
        let b = fill_matrix(k, m, seed.wrapping_add(2));
        let serial = parallel::with_threads(1, || a.matmul_tn(&b));
        let par = parallel::with_threads(threads, || a.matmul_tn(&b));
        prop_assert_eq!(serial.as_slice(), par.as_slice());
    }

    #[test]
    fn matmul_nt_parallel_matches_serial(
        dims in (0usize..24, 0usize..24, 0usize..24),
        seed in 0u64..u64::MAX,
        threads in 2usize..10,
    ) {
        // A is m x k, B is n x k, result is A B^T (m x n).
        let (m, k, n) = dims;
        let a = fill_matrix(m, k, seed);
        let b = fill_matrix(n, k, seed.wrapping_add(3));
        let serial = parallel::with_threads(1, || a.matmul_nt(&b));
        let par = parallel::with_threads(threads, || a.matmul_nt(&b));
        prop_assert_eq!(serial.as_slice(), par.as_slice());
    }

    #[test]
    fn elementwise_parallel_matches_serial(
        dims in (0usize..40, 1usize..24),
        seed in 0u64..u64::MAX,
        threads in 2usize..10,
    ) {
        let (rows, cols) = dims;
        let a = fill_matrix(rows, cols, seed);
        let col = fill_matrix(rows, 1, seed.wrapping_add(4));
        let row = fill_matrix(1, cols, seed.wrapping_add(5));

        let s_map = parallel::with_threads(1, || a.map(|x| x.tanh()));
        let p_map = parallel::with_threads(threads, || a.map(|x| x.tanh()));
        prop_assert_eq!(s_map.as_slice(), p_map.as_slice());

        let s_soft = parallel::with_threads(1, || a.softmax_rows());
        let p_soft = parallel::with_threads(threads, || a.softmax_rows());
        prop_assert_eq!(s_soft.as_slice(), p_soft.as_slice());

        let s_col = parallel::with_threads(1, || a.mul_col_broadcast(&col));
        let p_col = parallel::with_threads(threads, || a.mul_col_broadcast(&col));
        prop_assert_eq!(s_col.as_slice(), p_col.as_slice());

        let s_row = parallel::with_threads(1, || a.add_row_broadcast(&row));
        let p_row = parallel::with_threads(threads, || a.add_row_broadcast(&row));
        prop_assert_eq!(s_row.as_slice(), p_row.as_slice());
    }

    #[test]
    fn thread_count_never_changes_matmul(
        seed in 0u64..u64::MAX,
        threads in 2usize..10,
    ) {
        // Ragged fixture: 7 rows never divide evenly across 2..10 workers
        // (except 7), so the last chunk is short and some workers may get
        // no rows at all.
        let a = fill_matrix(7, 5, seed);
        let b = fill_matrix(5, 3, seed.wrapping_add(6));
        let serial = parallel::with_threads(1, || a.matmul(&b));
        let par = parallel::with_threads(threads, || a.matmul(&b));
        prop_assert_eq!(serial.as_slice(), par.as_slice());
    }
}

#[test]
fn more_threads_than_rows_is_safe() {
    let a = fill_matrix(2, 3, 11);
    let b = fill_matrix(3, 4, 12);
    let serial = parallel::with_threads(1, || a.matmul(&b));
    let par = parallel::with_threads(8, || a.matmul(&b));
    assert_eq!(serial.as_slice(), par.as_slice());
}

#[test]
fn nested_dispatch_falls_back_to_serial() {
    // map's kernel runs inside a worker; a nested matmul inside it must not
    // spawn again (and must still be correct).
    let a = fill_matrix(6, 4, 21);
    let inner_a = fill_matrix(2, 2, 22);
    let inner_b = fill_matrix(2, 2, 23);
    let expected_inner = parallel::with_threads(1, || inner_a.matmul(&inner_b));
    let out = parallel::with_threads(4, || {
        a.map(|x| {
            let m = inner_a.matmul(&inner_b);
            if m.as_slice() == expected_inner.as_slice() {
                x
            } else {
                f32::NAN
            }
        })
    });
    assert_eq!(out.as_slice(), a.as_slice());
}
