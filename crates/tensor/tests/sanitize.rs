//! Sanitizer provenance tests: every check must name the offending op (or
//! parameter) in its panic message, so a NaN is debuggable at the source.
//!
//! These tests force the sanitizer ON for the whole process (each integration
//! test binary is its own process, so this cannot leak into other suites) and
//! use `catch_unwind` to inspect the panic payload.

use adamel_tensor::{sanitize, Adam, Graph, Matrix, Optimizer, ParamSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` with the sanitizer forced on and returns the panic message it
/// must produce.
fn sanitized_panic_message<F: FnOnce()>(f: F) -> String {
    sanitize::set_forced(Some(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    let payload = result.expect_err("sanitizer should have panicked");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be a string")
}

#[test]
fn overflowing_mul_is_attributed_to_the_mul_op() {
    // Constants are finite; the first non-finite value appears at the `mul`
    // node (1e38 * 1e38 overflows f32 to inf), so `mul` must be named.
    let msg = sanitized_panic_message(|| {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[vec![1e38, 2.0]]));
        let b = g.constant(Matrix::from_rows(&[vec![1e38, 3.0]]));
        let _ = g.mul(a, b);
    });
    assert!(msg.contains("adamel-sanitize:"), "missing prefix: {msg}");
    assert!(msg.contains("`mul`"), "wrong op named: {msg}");
    assert!(msg.contains("inf"), "value not reported: {msg}");
}

#[test]
fn overflowing_matmul_is_attributed_to_the_matmul_op() {
    let msg = sanitized_panic_message(|| {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[vec![1e38, 1e38]]));
        let b = g.constant(Matrix::from_rows(&[vec![1e38], vec![1e38]]));
        let _ = g.matmul(a, b);
    });
    assert!(msg.contains("`matmul`"), "wrong op named: {msg}");
}

#[test]
fn ragged_softmax_row_is_reported_with_its_sum() {
    // A row that is not a distribution (sums to 1.5) must be rejected and
    // the report must say which row and what it summed to.
    let ragged = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.75, 0.75]]);
    let msg = sanitized_panic_message(|| {
        sanitize::check_rows_normalized("softmax_rows", &ragged);
    });
    assert!(msg.contains("`softmax_rows`"), "wrong op named: {msg}");
    assert!(msg.contains("row 1"), "wrong row named: {msg}");
    assert!(msg.contains("1.5"), "sum not reported: {msg}");
}

#[test]
fn negative_loss_is_rejected_beyond_tolerance() {
    let msg = sanitized_panic_message(|| {
        sanitize::check_loss_non_negative("kl_const_rows", -0.5, 1e-3);
    });
    assert!(msg.contains("`kl_const_rows`"), "wrong op named: {msg}");

    // Within tolerance (the eps-guard dip) is accepted.
    sanitize::set_forced(Some(true));
    sanitize::check_loss_non_negative("kl_const_rows", -1e-4, 1e-3);
    sanitize::check_loss_non_negative("kl_const_rows", 0.25, 1e-3);
}

#[test]
fn nan_loss_is_rejected() {
    let msg = sanitized_panic_message(|| {
        sanitize::check_loss_non_negative("kl_const_rows", f32::NAN, 1e-3);
    });
    assert!(msg.contains("`kl_const_rows`"), "wrong op named: {msg}");
}

#[test]
fn nan_gradient_is_attributed_to_the_parameter_by_name() {
    // Inject a NaN gradient directly into one of two parameters; the
    // optimizer's pre-step check must name that parameter, not the other.
    let msg = sanitized_panic_message(|| {
        let mut params = ParamSet::new();
        let _w = params.insert("attn_w", Matrix::scalar(0.0));
        let b = params.insert("attn_b", Matrix::scalar(0.0));
        params.grad_mut(b).add_assign(&Matrix::scalar(f32::NAN));
        let mut opt = Adam::with_lr(0.1);
        opt.step(&mut params);
    });
    assert!(msg.contains("`adam`"), "optimizer not named: {msg}");
    assert!(msg.contains("`attn_b`"), "wrong parameter named: {msg}");
    assert!(!msg.contains("`attn_w`"), "innocent parameter named: {msg}");
}

#[test]
fn finite_pipeline_passes_all_checks() {
    // A realistic forward/backward/step round trip with the sanitizer on:
    // nothing fires.
    sanitize::set_forced(Some(true));
    let mut params = ParamSet::new();
    let w = params.insert("w", Matrix::from_rows(&[vec![0.1], vec![-0.2]]));
    let mut g = Graph::new();
    let x = g.constant(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
    let wv = g.param(&params, w);
    let logits = g.matmul(x, wv);
    let probs = g.softmax_rows(logits);
    let loss = g.mean_all(probs);
    g.backward(loss, &mut params);
    let mut opt = Adam::with_lr(0.01);
    opt.step(&mut params);
}
