//! Cache-blocked GEMM microkernels behind the three [`Matrix`](crate::Matrix) matmul
//! variants.
//!
//! The naive `ikj` loops stream the full `B` operand through cache once per
//! output row; past a few hundred rows that is memory-bound, not
//! compute-bound. This module implements the classic BLIS-style blocking
//! scheme in safe, std-only Rust:
//!
//! * **Panel packing.** `B` is packed once per call into column panels of
//!   [`NR`] lanes (`panel[p * NR + l] = B[p, j0 + l]`, zero-padded at the
//!   ragged edge) so the microkernel reads it as one forward-moving
//!   contiguous stream. Each worker packs its own `A` row panels of [`MR`]
//!   rows per [`KC`]-deep slab the same way. Packing is what makes the inner
//!   loop autovectorization-friendly regardless of the logical operand
//!   layout — the same packed kernel serves `A·B`, `Aᵀ·B`, and `A·Bᵀ` by
//!   changing only the *pack-time* strides.
//! * **Register-blocked microkernel.** An [`MR`]`x`[`NR`] accumulator tile
//!   lives in a local array; each of the `KC` iterations broadcasts one `A`
//!   lane against [`NR`] `B` lanes. The constant tile bounds let LLVM keep
//!   the tile in vector registers and elide bounds checks.
//! * **Thread partitioning.** The `M` dimension is split into [`MC`]-row
//!   blocks dispatched through [`crate::parallel::parallel_for_row_blocks`];
//!   block boundaries are a function of [`MC`] alone, never the worker
//!   count. Packed-`A` scratch lives in a per-thread arena
//!   (`thread_local!` take/restore, no locks); the packed `B` panel is built
//!   once on the dispatching thread and shared read-only.
//!
//! **Bit-exactness contract.** Every output element is accumulated by a
//! *single* accumulator in strictly ascending `k` order: the microkernel
//! zero-initialises its tile on the first `KC` slab, reloads the partial
//! `C` tile on later slabs, and adds exactly one rounded `a·b` product per
//! `k` step (no FMA — the workspace forbids `unsafe`, so there are no
//! intrinsics, and LLVM may not fuse without fast-math). That is the same
//! per-element operation sequence as the historical naive kernels, so for
//! finite inputs the blocked path is **bit-identical** to them — golden
//! fixtures, thread-count invariance, and the chunked-predict equality
//! tests all hold without re-blessing. The per-op ULP budgets in
//! `adamel-oracle` are nonetheless widened by a per-[`KC`]-panel term
//! (DESIGN.md §15) so a future kernel may split the `k` reduction across
//! panels without a budget change.

use crate::parallel;
use std::cell::Cell;

/// Microkernel tile height: rows of `A` (and `C`) per register tile.
pub const MR: usize = 4;

/// Microkernel tile width: columns of `B` (and `C`) per register tile.
///
/// `MR * NR = 32` accumulators fit the 16 x 128-bit registers of baseline
/// x86-64 with room for the broadcast and load lanes.
pub const NR: usize = 8;

/// Depth of one packed `k` slab; bounds the packed-`A`/`B` panel footprint
/// (`MR*KC` and `NR*KC` f32 respectively) to L1-friendly sizes.
pub const KC: usize = 256;

/// Rows of `C` per dispatch block: each worker packs at most `MC x KC`
/// elements of `A` at a time (~128 KiB), and thread partitioning happens on
/// [`MC`]-row boundaries so results never depend on the worker count.
pub const MC: usize = 64;

/// FLOP floor (`2*n*k*m`) below which the packing overhead is not worth it
/// and callers keep the naive loops. Both paths are bit-identical, so the
/// threshold is purely a performance knob.
pub const BLOCKED_MIN_FLOPS: usize = 1 << 13;

/// True when the blocked path should handle an `(n,k) x (k,m)` product.
///
/// Degenerate tiles (fewer rows than [`MR`] or columns than [`NR`]) waste
/// most of the padded microkernel, so they stay on the naive loops too.
#[inline]
pub fn use_blocked(n: usize, k: usize, m: usize) -> bool {
    n >= MR && m >= NR && 2usize.saturating_mul(n * k).saturating_mul(m) >= BLOCKED_MIN_FLOPS
}

/// A logical `rows x cols` view over a row-major backing slice: element
/// `(i, j)` lives at `data[i * rs + j * cs]`. Transposed operands are
/// expressed by swapping the strides; only packing ever reads through them.
pub(crate) struct Operand<'a> {
    pub data: &'a [f32],
    pub rs: usize,
    pub cs: usize,
}

impl Operand<'_> {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.rs + j * self.cs]
    }
}

thread_local! {
    /// Per-thread packed-`A` arena: taken at block entry, restored (with its
    /// grown capacity) on exit, so steady-state packing is allocation-free.
    static PACK_A: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Per-thread packed-`B` arena for the dispatching thread.
    static PACK_B: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Computes `out = A · B` for logical `(n,k) x (k,m)` operands, fully
/// overwriting the row-major `out` (length `n * m`).
pub(crate) fn gemm(
    n: usize,
    k: usize,
    m: usize,
    a: &Operand<'_>,
    b: &Operand<'_>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), n * m, "gemm: output buffer shape mismatch");
    if n == 0 || m == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    // Pack B once, on the dispatching thread; workers share it read-only.
    let mut bbuf = PACK_B.with(Cell::take);
    pack_b(k, m, b, &mut bbuf);
    // Absolute arena observations: each thread's arena is retained at its
    // grown capacity, so capacity *is* the footprint. `pack_a` reports the
    // max across workers (every worker observes the same gauge).
    adamel_obs::mem::observe("tensor.gemm.pack_b.bytes", (bbuf.capacity() * 4) as u64);
    let bpacked: &[f32] = &bbuf;
    parallel::parallel_for_row_blocks(out, m, MC, 2 * k * m, |i0, c_block| {
        let mut abuf = PACK_A.with(Cell::take);
        gemm_block(i0, c_block.len() / m, k, m, a, bpacked, c_block, &mut abuf);
        adamel_obs::mem::observe("tensor.gemm.pack_a.bytes", (abuf.capacity() * 4) as u64);
        PACK_A.with(|c| c.set(abuf));
    });
    PACK_B.with(|c| c.set(bbuf));
}

/// Packs `B` into `NR`-lane column panels: lane `l` of panel `jp` at depth
/// `p` is `B[p, jp*NR + l]`, with out-of-range lanes zeroed so edge tiles
/// accumulate exact `±0.0` products that are never stored.
fn pack_b(k: usize, m: usize, b: &Operand<'_>, buf: &mut Vec<f32>) {
    let panels = m.div_ceil(NR);
    buf.clear();
    buf.resize(panels * k * NR, 0.0);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(m - j0);
        let panel = &mut buf[jp * k * NR..(jp + 1) * k * NR];
        for (p, row) in panel.chunks_exact_mut(NR).enumerate() {
            for (l, slot) in row.iter_mut().enumerate() {
                *slot = if l < w { b.at(p, j0 + l) } else { 0.0 };
            }
        }
    }
}

/// Packs rows `i0 .. i0+rows` of `A` over depths `pc .. pc+kc` into
/// `MR`-row panels: `panel[p_local * MR + r] = A[i0 + ip*MR + r, pc + p_local]`,
/// zero-padding rows past the block edge.
fn pack_a(a: &Operand<'_>, i0: usize, rows: usize, pc: usize, kc: usize, buf: &mut Vec<f32>) {
    let panels = rows.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, 0.0);
    for ip in 0..panels {
        let r0 = ip * MR;
        let h = MR.min(rows - r0);
        let panel = &mut buf[ip * kc * MR..(ip + 1) * kc * MR];
        for (p, col) in panel.chunks_exact_mut(MR).enumerate() {
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = if r < h { a.at(i0 + r0 + r, pc + p) } else { 0.0 };
            }
        }
    }
}

/// One worker's share: all `KC` slabs over an `MC`-bounded row block of `C`.
/// Slabs run in ascending `pc` order so each `C` element sees its products
/// in exactly the naive kernels' ascending-`k` order.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    i0: usize,
    rows: usize,
    k: usize,
    m: usize,
    a: &Operand<'_>,
    bpacked: &[f32],
    c: &mut [f32],
    abuf: &mut Vec<f32>,
) {
    let jpanels = m.div_ceil(NR);
    let ipanels = rows.div_ceil(MR);
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        pack_a(a, i0, rows, pc, kc, abuf);
        let first = pc == 0;
        for jp in 0..jpanels {
            let bpanel = &bpacked[jp * k * NR + pc * NR..jp * k * NR + (pc + kc) * NR];
            let j0 = jp * NR;
            let jw = NR.min(m - j0);
            for ip in 0..ipanels {
                let apanel = &abuf[ip * kc * MR..(ip + 1) * kc * MR];
                let iw = MR.min(rows - ip * MR);
                microkernel(apanel, bpanel, c, ip * MR, j0, iw, jw, m, first);
            }
        }
        pc += kc;
    }
}

/// The register tile: `acc[r][l] (+)= Σ_p apanel[p][r] * bpanel[p][l]` with
/// one rounded multiply-add per step. `first` selects zero-init over a `C`
/// reload so depth-0 starts from `+0.0` exactly like the naive kernels.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    ci: usize,
    cj: usize,
    iw: usize,
    jw: usize,
    ldc: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (r, accr) in acc.iter_mut().enumerate().take(iw) {
            let crow = &c[(ci + r) * ldc + cj..(ci + r) * ldc + cj + jw];
            accr[..jw].copy_from_slice(crow);
        }
    }
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (l, slot) in accr.iter_mut().enumerate() {
                *slot += av * brow[l];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate().take(iw) {
        let crow = &mut c[(ci + r) * ldc + cj..(ci + r) * ldc + cj + jw];
        crow.copy_from_slice(&accr[..jw]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::parallel::with_threads;

    /// Deterministic pseudo-random fill (splitmix-style) in [-2, 2).
    fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 30;
            state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            state ^= state >> 27;
            state = state.wrapping_mul(0x94d0_49bb_1331_11eb);
            state ^= state >> 31;
            (state >> 40) as f32 / (1u64 << 22) as f32 - 2.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    /// The historical naive kernel, reimplemented locally so the blocked
    /// path is pinned to the exact accumulation order, not just "close".
    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let (n, k, m) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for p in 0..k {
                let av = a.get(i, p);
                for j in 0..m {
                    let v = out.get(i, j) + av * b.get(p, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    #[test]
    fn blocked_is_bit_identical_to_naive_across_edges() {
        // Shapes straddle every tile boundary: MR/NR/KC/MC ±1 plus ragged
        // primes. Bit-equality (not tolerance) is the contract.
        for &(n, k, m) in &[
            (MR, 3, NR),
            (MR + 1, KC - 1, NR + 1),
            (MR * 3 + 1, KC + 1, NR * 2 + 3),
            (MC - 1, 7, NR),
            (MC + 1, 5, NR * 2),
            (17, KC, 13),
        ] {
            let a = fill(n, k, (n * 1000 + k) as u64);
            let b = fill(k, m, (k * 1000 + m) as u64);
            assert!(use_blocked(n, k, m) || 2 * n * k * m < BLOCKED_MIN_FLOPS);
            let mut out = vec![0.0f32; n * m];
            gemm(
                n,
                k,
                m,
                &Operand { data: a.as_slice(), rs: k, cs: 1 },
                &Operand { data: b.as_slice(), rs: m, cs: 1 },
                &mut out,
            );
            let reference = naive(&a, &b);
            assert_eq!(out.as_slice(), reference.as_slice(), "shape ({n},{k},{m})");
        }
    }

    #[test]
    fn blocked_is_thread_count_invariant() {
        let (n, k, m) = (MC * 2 + 3, KC + 5, NR * 3 + 1);
        let a = fill(n, k, 11);
        let b = fill(k, m, 13);
        let run = |threads: usize| {
            let mut out = vec![0.0f32; n * m];
            with_threads(threads, || {
                gemm(
                    n,
                    k,
                    m,
                    &Operand { data: a.as_slice(), rs: k, cs: 1 },
                    &Operand { data: b.as_slice(), rs: m, cs: 1 },
                    &mut out,
                )
            });
            out
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn zero_inner_dimension_zeroes_stale_output() {
        let mut out = vec![7.0f32; 4 * NR];
        gemm(
            4,
            0,
            NR,
            &Operand { data: &[], rs: 0, cs: 1 },
            &Operand { data: &[], rs: NR, cs: 1 },
            &mut out,
        );
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
