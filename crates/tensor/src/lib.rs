//! # adamel-tensor
//!
//! The numeric substrate for the AdaMEL reproduction: dense `f32` matrices,
//! a define-by-run reverse-mode autograd tape, parameter storage, weight
//! initialization, and the Adam/SGD optimizers.
//!
//! The paper trains a small attention-augmented MLP; rather than bind to an
//! immature deep-learning binding, this crate implements exactly the
//! operations that model needs, each with an analytically derived backward
//! pass that is verified against central finite differences in the crate's
//! property tests (`tests/gradcheck.rs`).
//!
//! ## Example
//!
//! ```
//! use adamel_tensor::{Graph, Matrix, ParamSet, Adam, Optimizer, init};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = ParamSet::new();
//! let w = params.insert("w", init::xavier_uniform(2, 1, &mut rng));
//! let b = params.insert("b", Matrix::zeros(1, 1));
//! let mut opt = Adam::with_lr(0.1);
//!
//! // Learn y = x0 + x1 with a linear model (three points so the
//! // three-parameter system has a unique least-squares solution).
//! let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0], vec![2.0, 2.0]]);
//! let y = Matrix::from_vec(3, 1, vec![3.0, 4.0, 4.0]);
//! for _ in 0..2500 {
//!     params.zero_grads();
//!     let mut g = Graph::new();
//!     let xv = g.constant(x.clone());
//!     let wv = g.param(&params, w);
//!     let bv = g.param(&params, b);
//!     let pred = g.linear(xv, wv, bv);
//!     let yv = g.constant(y.clone());
//!     let neg = g.scale(yv, -1.0);
//!     let diff = g.add(pred, neg);
//!     let sq = g.mul(diff, diff);
//!     let loss = g.mean_all(sq);
//!     g.backward(loss, &mut params);
//!     opt.step(&mut params);
//! }
//! assert!((params.value(w).get(0, 0) - 1.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod graph;
mod matrix;
mod optim;
mod params;

pub mod gemm;
pub mod init;
pub mod parallel;
pub mod plan;
pub mod sanitize;

pub use graph::{Graph, Var};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamSet};
