//! Tape-free compiled replay of a recorded forward graph.
//!
//! Batched inference used to pay define-by-run overhead per 512-row chunk:
//! every chunk re-recorded the same op sequence onto a fresh [`Graph`],
//! cloning every parameter matrix into the tape and allocating every
//! intermediate. A [`CompiledPlan`] is built **once** from a probe forward
//! pass and then *replayed*: the op sequence is frozen into a step list,
//! parameters are read by reference from the live
//! [`crate::params::ParamSet`] at replay time (so a plan stays
//! valid across training and [`ParamSet::restore`](crate::params::ParamSet)),
//! and every intermediate lands in a reusable [`PlanBuffers`] arena —
//! steady-state replay performs no graph construction, no parameter clones,
//! and no allocation.
//!
//! Replay calls the exact same `*_into` kernels the tape ops delegate to
//! ([`Matrix::matmul_into`] and friends), so plan output is **bit-identical**
//! to the tape path; the equivalence suite in `adamel` compares the two
//! paths bit-for-bit across chunk boundaries and feature modes. The runtime
//! sanitizer hooks ([`crate::sanitize`]) run per replayed step with the same
//! op provenance as the tape.
//!
//! ## Shape specialization
//!
//! A plan is *row-polymorphic*: the probe batch fixes every column width
//! while row counts follow the replay input. That only works when no leaf
//! other than the designated input scales with the batch — so
//! [`CompiledPlan::compile`] rejects any non-input constant whose row count
//! matches the probe batch ([`PlanError::ScalingConstant`]; the
//! uniform-attention ablation materializes exactly such an `n x F` constant,
//! and callers fall back to the tape path). Loss/reduction ops are recording
//! -only and likewise rejected when reachable from the requested outputs.

use crate::graph::{Graph, Op, Var};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use crate::sanitize;
use std::fmt;
use std::sync::Mutex;

/// Why a recorded graph could not be compiled into a replayable plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A reachable op only exists for training (losses, full reductions);
    /// the payload is the op's stable name.
    UnsupportedOp(&'static str),
    /// A non-input constant's row count matches the probe batch, so its
    /// rows would (conservatively) scale with the batch and a frozen copy
    /// would be replayed at the wrong shape.
    ScalingConstant,
    /// A requested output is a leaf (constant/parameter/input), not a
    /// computed node; replay only materializes computed nodes.
    UnsupportedOutput,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnsupportedOp(name) => {
                write!(f, "plan: op `{name}` is not replayable (training-only)")
            }
            PlanError::ScalingConstant => {
                write!(f, "plan: constant scales with the batch; cannot shape-specialize")
            }
            PlanError::UnsupportedOutput => {
                write!(f, "plan: requested output is a leaf, not a computed node")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Where a step operand's value lives at replay time.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// The replay batch handed to [`CompiledPlan::execute`].
    Input,
    /// A frozen constant captured at compile time.
    Const(usize),
    /// A parameter, read from the live `ParamSet` by id at replay time.
    Param(ParamId),
    /// An earlier step's output buffer.
    Buf(usize),
}

/// One replayable op, mirroring the forward subset of the tape's op set.
enum StepOp {
    MatMul(Src, Src),
    Add(Src, Src),
    AddRowBroadcast(Src, Src),
    Mul(Src, Src),
    MulColBroadcast(Src, Src),
    Scale(Src, f32),
    Relu(Src),
    Tanh(Src),
    Sigmoid(Src),
    SoftmaxRows(Src),
    ConcatCols(Vec<Src>),
    SliceCols { input: Src, start: usize, width: usize },
}

impl StepOp {
    /// Stable name matching the tape op, for sanitizer provenance.
    fn name(&self) -> &'static str {
        match self {
            StepOp::MatMul(..) => "matmul",
            StepOp::Add(..) => "add",
            StepOp::AddRowBroadcast(..) => "add_row_broadcast",
            StepOp::Mul(..) => "mul",
            StepOp::MulColBroadcast(..) => "mul_col_broadcast",
            StepOp::Scale(..) => "scale",
            StepOp::Relu(_) => "relu",
            StepOp::Tanh(_) => "tanh",
            StepOp::Sigmoid(_) => "sigmoid",
            StepOp::SoftmaxRows(_) => "softmax_rows",
            StepOp::ConcatCols(_) => "concat_cols",
            StepOp::SliceCols { .. } => "slice_cols",
        }
    }
}

struct Step {
    op: StepOp,
    /// Output buffer index; strictly increasing in step order, so every
    /// operand buffer of a step lies before `out` (SSA discipline).
    out: usize,
}

/// A frozen, shape-specialized forward program: compile once, replay many.
pub struct CompiledPlan {
    steps: Vec<Step>,
    consts: Vec<Matrix>,
    /// Buffer index per requested output, in request order.
    outputs: Vec<usize>,
    num_bufs: usize,
    input_cols: usize,
}

/// Reusable per-replay scratch: one buffer per computed step plus an input
/// staging matrix. Buffers grow to the largest batch replayed through them
/// and are then reused allocation-free; contents are meaningless between
/// replays.
pub struct PlanBuffers {
    bufs: Vec<Matrix>,
    input_scratch: Matrix,
}

impl Default for PlanBuffers {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanBuffers {
    /// An empty arena; [`CompiledPlan::execute`] sizes it on first use.
    pub fn new() -> Self {
        Self { bufs: Vec::new(), input_scratch: Matrix::default() }
    }

    /// Logical footprint of the arena in bytes: every intermediate buffer
    /// plus the input staging matrix. Feeds the `tensor.plan.pool.bytes`
    /// memory gauge.
    pub fn logical_bytes(&self) -> u64 {
        let elems: usize = self
            .bufs
            .iter()
            .map(|m| m.as_slice().len())
            .sum::<usize>()
            .saturating_add(self.input_scratch.as_slice().len());
        (elems * 4) as u64
    }
}

/// A mutex-guarded stash of [`PlanBuffers`] so concurrent chunk workers
/// reuse warm arenas instead of reallocating. Locks are held only for the
/// `pop`/`push` themselves — never across kernel dispatch — and a poisoned
/// mutex is recovered (the stash holds scratch, never results).
#[derive(Default)]
pub struct BufferPool {
    slots: Mutex<Vec<PlanBuffers>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a warm arena if one is stashed, else a fresh empty one.
    pub fn checkout(&self) -> PlanBuffers {
        let bufs = self.slots.lock().unwrap_or_else(|e| e.into_inner()).pop().unwrap_or_default();
        // The gauge tracks bytes *parked* in the pool: checked-out arenas
        // leave it, returned arenas re-enter at their (possibly grown) size.
        adamel_obs::mem::sub("tensor.plan.pool.bytes", bufs.logical_bytes());
        bufs
    }

    /// Returns an arena to the pool for the next checkout.
    pub fn put_back(&self, bufs: PlanBuffers) {
        adamel_obs::mem::add("tensor.plan.pool.bytes", bufs.logical_bytes());
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).push(bufs);
    }
}

/// Tape positions an op reads, for the reachability walk.
fn op_inputs(op: &Op) -> Vec<usize> {
    match op {
        Op::Constant | Op::Param(_) => Vec::new(),
        Op::MatMul(a, b)
        | Op::Add(a, b)
        | Op::AddRowBroadcast(a, b)
        | Op::Mul(a, b)
        | Op::MulColBroadcast(a, b) => vec![a.index(), b.index()],
        Op::Scale(a, _)
        | Op::Relu(a)
        | Op::Tanh(a)
        | Op::Sigmoid(a)
        | Op::SoftmaxRows(a)
        | Op::MeanAll(a)
        | Op::SumAll(a) => vec![a.index()],
        Op::ConcatCols(parts) => parts.iter().map(|v| v.index()).collect(),
        Op::SliceCols { input, .. } => vec![input.index()],
        Op::WeightedBceWithLogits { logits, .. } => vec![logits.index()],
        Op::KlConstRows { probs, .. } => vec![probs.index()],
    }
}

fn resolved(src: &[Option<Src>], v: Var) -> Src {
    src[v.index()].expect("plan compile: operand recorded after its use")
}

impl CompiledPlan {
    /// Compiles the subgraph of `g` that `outputs` depend on, treating
    /// `input` as the replay-time batch leaf. Nodes the outputs don't reach
    /// are pruned (so a plan for the attention head alone skips the
    /// classifier). The probe graph's batch size is read from `input` and
    /// only used for the scaling-constant check; replays accept any row
    /// count with `input`'s column width.
    pub fn compile(g: &Graph, input: Var, outputs: &[Var]) -> Result<CompiledPlan, PlanError> {
        let tape = g.tape();
        let probe_rows = g.value(input).rows();
        let input_cols = g.value(input).cols();

        let mut needed = vec![false; tape.len()];
        let mut stack: Vec<usize> = outputs.iter().map(|v| v.index()).collect();
        while let Some(i) = stack.pop() {
            if needed[i] {
                continue;
            }
            needed[i] = true;
            if i == input.index() {
                continue;
            }
            stack.extend(op_inputs(&tape[i].op));
        }

        let mut src: Vec<Option<Src>> = vec![None; tape.len()];
        let mut consts = Vec::new();
        let mut steps = Vec::new();
        let mut num_bufs = 0;
        for (i, node) in tape.iter().enumerate() {
            if !needed[i] {
                continue;
            }
            if i == input.index() {
                src[i] = Some(Src::Input);
                continue;
            }
            let op = match &node.op {
                Op::Constant => {
                    if node.value.rows() == probe_rows {
                        return Err(PlanError::ScalingConstant);
                    }
                    consts.push(node.value.clone());
                    src[i] = Some(Src::Const(consts.len() - 1));
                    continue;
                }
                Op::Param(id) => {
                    src[i] = Some(Src::Param(*id));
                    continue;
                }
                Op::MatMul(a, b) => StepOp::MatMul(resolved(&src, *a), resolved(&src, *b)),
                Op::Add(a, b) => StepOp::Add(resolved(&src, *a), resolved(&src, *b)),
                Op::AddRowBroadcast(a, b) => {
                    StepOp::AddRowBroadcast(resolved(&src, *a), resolved(&src, *b))
                }
                Op::Mul(a, b) => StepOp::Mul(resolved(&src, *a), resolved(&src, *b)),
                Op::MulColBroadcast(a, b) => {
                    StepOp::MulColBroadcast(resolved(&src, *a), resolved(&src, *b))
                }
                Op::Scale(a, s) => StepOp::Scale(resolved(&src, *a), *s),
                Op::Relu(a) => StepOp::Relu(resolved(&src, *a)),
                Op::Tanh(a) => StepOp::Tanh(resolved(&src, *a)),
                Op::Sigmoid(a) => StepOp::Sigmoid(resolved(&src, *a)),
                Op::SoftmaxRows(a) => StepOp::SoftmaxRows(resolved(&src, *a)),
                Op::ConcatCols(parts) => {
                    StepOp::ConcatCols(parts.iter().map(|v| resolved(&src, *v)).collect())
                }
                Op::SliceCols { input: a, start, width } => {
                    StepOp::SliceCols { input: resolved(&src, *a), start: *start, width: *width }
                }
                Op::MeanAll(_)
                | Op::SumAll(_)
                | Op::WeightedBceWithLogits { .. }
                | Op::KlConstRows { .. } => {
                    return Err(PlanError::UnsupportedOp(node.op.name()));
                }
            };
            steps.push(Step { op, out: num_bufs });
            src[i] = Some(Src::Buf(num_bufs));
            num_bufs += 1;
        }

        let outputs = outputs
            .iter()
            .map(|v| match src[v.index()] {
                Some(Src::Buf(b)) => Ok(b),
                _ => Err(PlanError::UnsupportedOutput),
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(CompiledPlan { steps, consts, outputs, num_bufs, input_cols })
    }

    /// Number of replayable steps after pruning.
    pub fn steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of requested outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Column width every replay input must have.
    pub fn input_cols(&self) -> usize {
        self.input_cols
    }

    /// Replays the plan over `input` (any row count, compile-time column
    /// width), reading parameters from `params` and writing every
    /// intermediate into `bufs`. Values are bit-identical to recording the
    /// same ops on a fresh tape.
    pub fn execute(&self, params: &ParamSet, input: &Matrix, bufs: &mut PlanBuffers) {
        adamel_obs::trace_span!("plan_replay");
        adamel_obs::trace_count!("plan.replays", 1);
        assert_eq!(
            input.cols(),
            self.input_cols,
            "CompiledPlan::execute: input width {} != compiled width {}",
            input.cols(),
            self.input_cols
        );
        if bufs.bufs.len() < self.num_bufs {
            bufs.bufs.resize_with(self.num_bufs, Matrix::default);
        }
        for step in &self.steps {
            // SSA: `out` strictly exceeds every operand buffer index, so
            // splitting at it hands out disjoint borrows.
            let (head, tail) = bufs.bufs.split_at_mut(step.out);
            let out = &mut tail[0];
            let val = |s: Src| -> &Matrix {
                match s {
                    Src::Input => input,
                    Src::Const(i) => &self.consts[i],
                    Src::Param(id) => params.value(id),
                    Src::Buf(i) => &head[i],
                }
            };
            match &step.op {
                StepOp::MatMul(a, b) => val(*a).matmul_into(val(*b), out),
                StepOp::Add(a, b) => val(*a).add_into(val(*b), out),
                StepOp::AddRowBroadcast(a, b) => val(*a).add_row_broadcast_into(val(*b), out),
                StepOp::Mul(a, b) => val(*a).mul_into(val(*b), out),
                StepOp::MulColBroadcast(a, b) => val(*a).mul_col_broadcast_into(val(*b), out),
                StepOp::Scale(a, s) => val(*a).scale_into(*s, out),
                StepOp::Relu(a) => val(*a).map_into(|v| v.max(0.0), out),
                StepOp::Tanh(a) => val(*a).map_into(f32::tanh, out),
                StepOp::Sigmoid(a) => val(*a).map_into(|v| 1.0 / (1.0 + (-v).exp()), out),
                StepOp::SoftmaxRows(a) => val(*a).softmax_rows_into(out),
                StepOp::ConcatCols(parts) => {
                    let refs: Vec<&Matrix> = parts.iter().map(|s| val(*s)).collect();
                    Matrix::concat_cols_into(&refs, out);
                }
                StepOp::SliceCols { input: a, start, width } => {
                    val(*a).slice_cols_into(*start, *width, out)
                }
            }
            // Same runtime-sanitizer contract as the tape (self-gated; one
            // atomic load when off), with matching op provenance.
            sanitize::check_finite(step.op.name(), out);
            if matches!(step.op, StepOp::SoftmaxRows(_)) {
                sanitize::check_rows_normalized(step.op.name(), out);
            }
        }
    }

    /// Replays over rows `[start, start + rows)` of `full` without slicing
    /// an owned copy per call: the rows are staged into the arena's input
    /// scratch (a `memcpy` into a reused allocation) and replayed from
    /// there. This is the chunked-inference entry point.
    pub fn execute_rows(
        &self,
        params: &ParamSet,
        full: &Matrix,
        start: usize,
        rows: usize,
        bufs: &mut PlanBuffers,
    ) {
        let mut scratch = std::mem::take(&mut bufs.input_scratch);
        scratch.assign_rows_from(full, start, rows);
        self.execute(params, &scratch, bufs);
        bufs.input_scratch = scratch;
    }

    /// The value of requested output `i` after the latest
    /// [`execute`](Self::execute) into `bufs`.
    pub fn output<'a>(&self, i: usize, bufs: &'a PlanBuffers) -> &'a Matrix {
        &bufs.bufs[self.outputs[i]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    /// Records a tiny two-layer forward and returns everything a replay
    /// needs: `relu(x @ w + b)` then row-softmax.
    fn record(params: &ParamSet, w: ParamId, b: ParamId, x: Matrix) -> (Graph, Var, Var) {
        let mut g = Graph::new();
        let input = g.constant(x);
        let wv = g.param(params, w);
        let bv = g.param(params, b);
        let h = g.linear_relu(input, wv, bv);
        let out = g.softmax_rows(h);
        (g, input, out)
    }

    fn setup() -> (ParamSet, ParamId, ParamId) {
        let mut params = ParamSet::new();
        let w =
            params.insert("w", Matrix::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.25, -0.75]]));
        let b = params.insert("b", Matrix::from_rows(&[vec![0.1, -0.2, 0.3]]));
        (params, w, b)
    }

    fn batch(rows: usize, seed: f32) -> Matrix {
        Matrix::from_vec(
            rows,
            2,
            (0..rows * 2).map(|i| ((i as f32 * 0.37 + seed).sin()) * 2.0).collect(),
        )
    }

    #[test]
    fn replay_matches_tape_at_other_batch_sizes() {
        let (params, w, b) = setup();
        let (g, input, out) = record(&params, w, b, batch(2, 0.0));
        let plan = CompiledPlan::compile(&g, input, &[out]).expect("compiles");
        let mut bufs = PlanBuffers::new();
        for rows in [1, 2, 5, 17] {
            let x = batch(rows, 1.5);
            let (g2, _, out2) = record(&params, w, b, x.clone());
            plan.execute(&params, &x, &mut bufs);
            assert_eq!(plan.output(0, &bufs).as_slice(), g2.value(out2).as_slice(), "rows={rows}");
        }
    }

    #[test]
    fn replay_reads_live_parameter_values() {
        let (mut params, w, b) = setup();
        let (g, input, out) = record(&params, w, b, batch(2, 0.0));
        let plan = CompiledPlan::compile(&g, input, &[out]).expect("compiles");
        // Mutate parameters after compilation; the plan must see the update.
        let snapshot: Vec<Matrix> = params.snapshot().iter().map(|m| m.scale(-0.5)).collect();
        params.restore(&snapshot);
        let x = batch(3, 2.0);
        let (g2, _, out2) = record(&params, w, b, x.clone());
        let mut bufs = PlanBuffers::new();
        plan.execute(&params, &x, &mut bufs);
        assert_eq!(plan.output(0, &bufs).as_slice(), g2.value(out2).as_slice());
    }

    #[test]
    fn execute_rows_matches_whole_batch_slice() {
        let (params, w, b) = setup();
        let (g, input, out) = record(&params, w, b, batch(2, 0.0));
        let plan = CompiledPlan::compile(&g, input, &[out]).expect("compiles");
        let full = batch(9, 0.25);
        let mut bufs = PlanBuffers::new();
        plan.execute_rows(&params, &full, 3, 4, &mut bufs);
        let window = plan.output(0, &bufs).clone();
        plan.execute(&params, &full.slice_rows(3, 4), &mut bufs);
        assert_eq!(window.as_slice(), plan.output(0, &bufs).as_slice());
    }

    #[test]
    fn scaling_constant_is_rejected() {
        let (params, w, b) = setup();
        let mut g = Graph::new();
        let x = batch(4, 0.0);
        let input = g.constant(x);
        let wv = g.param(&params, w);
        let bv = g.param(&params, b);
        let h = g.linear_relu(input, wv, bv);
        // A constant materialized at the batch size (the uniform-attention
        // shape) cannot be shape-specialized.
        let uniform = g.constant(Matrix::full(4, 3, 1.0 / 3.0));
        let out = g.mul(h, uniform);
        assert!(matches!(
            CompiledPlan::compile(&g, input, &[out]),
            Err(PlanError::ScalingConstant)
        ));
    }

    #[test]
    fn training_only_ops_are_rejected_when_reachable_and_pruned_otherwise() {
        let (params, w, b) = setup();
        let (mut g, input, out) = record(&params, w, b, batch(2, 0.0));
        let loss = g.mean_all(out);
        // Loss reachable from the requested output set -> unsupported.
        assert!(matches!(
            CompiledPlan::compile(&g, input, &[loss]),
            Err(PlanError::UnsupportedOp("mean_all"))
        ));
        // Same tape, inference output only -> the loss node is pruned away.
        let plan = CompiledPlan::compile(&g, input, &[out]).expect("prunes the loss");
        assert_eq!(plan.num_outputs(), 1);
    }

    #[test]
    fn leaf_outputs_are_rejected() {
        let (params, w, b) = setup();
        let (g, input, _) = record(&params, w, b, batch(2, 0.0));
        assert!(matches!(
            CompiledPlan::compile(&g, input, &[input]),
            Err(PlanError::UnsupportedOutput)
        ));
    }

    #[test]
    fn buffer_pool_recycles_arenas() {
        let pool = BufferPool::new();
        let (params, w, b) = setup();
        let (g, input, out) = record(&params, w, b, batch(2, 0.0));
        let plan = CompiledPlan::compile(&g, input, &[out]).expect("compiles");
        let mut bufs = pool.checkout();
        plan.execute(&params, &batch(6, 0.0), &mut bufs);
        pool.put_back(bufs);
        // The recycled arena must replay correctly at a different size.
        let mut bufs = pool.checkout();
        let x = batch(3, 4.0);
        let (g2, _, out2) = record(&params, w, b, x.clone());
        plan.execute(&params, &x, &mut bufs);
        assert_eq!(plan.output(0, &bufs).as_slice(), g2.value(out2).as_slice());
        pool.put_back(bufs);
    }
}
