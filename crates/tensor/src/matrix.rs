//! Dense row-major `f32` matrices and the kernels the autograd layer builds on.
//!
//! The three matmul variants route products above [`crate::gemm`]'s FLOP
//! floor through the cache-blocked, panel-packed microkernels of that
//! module; small or degenerate shapes keep the historical naive loops
//! (`ikj`-ordered, contiguous SAXPY inner loop). The two paths are
//! **bit-identical** for finite inputs — both accumulate every output
//! element with a single accumulator in ascending-`k` order — so the
//! threshold is purely a performance knob.
//!
//! Every output-row-partitioned kernel (the matmul variants and the large
//! elementwise/broadcast ops) dispatches through
//! [`crate::parallel::parallel_for_rows`]: inputs big enough to clear the
//! FLOP threshold split their output rows across scoped threads, while small
//! inputs keep the serial fast path. Each thread runs the same per-row loop
//! in the same order, so results are bit-identical at any thread count.
//!
//! Hot ops come in pairs: the allocating form (`matmul`, `add`, …) and an
//! `*_into` form writing into a caller-owned buffer. The allocating forms
//! delegate to the `*_into` forms, so there is exactly one implementation of
//! each kernel and the compiled inference plan ([`crate::plan`]) replaying
//! into reused buffers computes bit-identical values to the autograd tape.

use crate::{gemm, parallel};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// Shapes are `rows x cols`; element `(i, j)` lives at `data[i * cols + j]`.
/// All shape mismatches are programming errors and panic with a message that
/// names the operation, matching the conventions of numeric libraries where
/// silent broadcasting would hide bugs.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the placeholder `std::mem::take` swaps in
    /// when plan buffers are staged.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer of {} elements cannot be {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows; handy in tests.
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged input");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// A 1x1 matrix holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access. Panics on out-of-bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "Matrix::get out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element assignment. Panics on out-of-bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "Matrix::set out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of one row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "Matrix::row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "Matrix::row_mut out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The value of a 1x1 matrix. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "Matrix::item requires a 1x1 matrix");
        self.data[0]
    }

    /// Reshapes in place to `rows x cols`, reusing the allocation. Contents
    /// are unspecified afterwards; every `*_into` kernel fully overwrites
    /// (or explicitly zeroes) the buffer before reading it.
    pub(crate) fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if self.data.len() != len {
            self.data.resize(len, 0.0);
        }
    }

    /// Matrix product `self * other`; shapes `(n,k) x (k,m) -> (n,m)`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) into a caller-owned buffer (reshaped to fit).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "Matrix::matmul: {}x{} * {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        out.reset_shape(n, m);
        if gemm::use_blocked(n, k, m) {
            let a = gemm::Operand { data: &self.data, rs: k, cs: 1 };
            let b = gemm::Operand { data: &other.data, rs: m, cs: 1 };
            gemm::gemm(n, k, m, &a, &b, &mut out.data);
            return;
        }
        out.fill_zero();
        parallel::parallel_for_rows(&mut out.data, m, 2 * k * m, |i, out_row| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * m..(p + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b;
                }
            }
        });
    }

    /// `selfᵀ * other`; shapes `(k,n)ᵀ x (k,m) -> (n,m)`. Used by backward
    /// passes so gradients never materialize an explicit transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::matmul_tn: {}x{}ᵀ * {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        if gemm::use_blocked(n, k, m) {
            // The transpose is expressed purely through pack-time strides:
            // logical A[i][p] = self.data[p * n + i].
            let a = gemm::Operand { data: &self.data, rs: 1, cs: n };
            let b = gemm::Operand { data: &other.data, rs: m, cs: 1 };
            gemm::gemm(n, k, m, &a, &b, &mut out.data);
            return out;
        }
        // Per-output-row loop (rather than the k-outer order a transposed
        // product suggests) so rows can split across threads; each (i, j)
        // still accumulates over p in ascending order, keeping results
        // bit-identical to the historical serial kernel.
        parallel::parallel_for_rows(&mut out.data, m, 2 * k * m, |i, out_row| {
            for p in 0..k {
                let a = self.data[p * n + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * m..(p + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// `self * otherᵀ`; shapes `(n,k) x (m,k)ᵀ -> (n,m)`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::matmul_nt: {}x{} * {}x{}ᵀ shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(n, m);
        if gemm::use_blocked(n, k, m) {
            let a = gemm::Operand { data: &self.data, rs: k, cs: 1 };
            // Logical B[p][j] = other.data[j * k + p].
            let b = gemm::Operand { data: &other.data, rs: 1, cs: k };
            gemm::gemm(n, k, m, &a, &b, &mut out.data);
            return out;
        }
        parallel::parallel_for_rows(&mut out.data, m, 2 * k * m, |i, out_row| {
            let a_row = &self.data[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Explicit transpose; used rarely (analysis code), not in hot loops.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise sum of two equally-shaped matrices.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.add_into(other, &mut out);
        out
    }

    /// [`add`](Self::add) into a caller-owned buffer (reshaped to fit).
    pub fn add_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.shape(), other.shape(), "Matrix::add shape mismatch");
        out.reset_shape(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a + b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "Matrix::sub shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.mul_into(other, &mut out);
        out
    }

    /// [`mul`](Self::mul) into a caller-owned buffer (reshaped to fit).
    pub fn mul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.shape(), other.shape(), "Matrix::mul shape mismatch");
        out.reset_shape(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a * b;
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.scale_into(s, &mut out);
        out
    }

    /// [`scale`](Self::scale) into a caller-owned buffer (reshaped to fit).
    pub fn scale_into(&self, s: f32, out: &mut Matrix) {
        out.reset_shape(self.rows, self.cols);
        for (o, a) in out.data.iter_mut().zip(&self.data) {
            *o = a * s;
        }
    }

    /// In-place `self += other * s` (axpy); the workhorse of gradient
    /// accumulation.
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f32) {
        assert_eq!(self.shape(), other.shape(), "Matrix::add_scaled_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "Matrix::add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.add_row_broadcast_into(row, &mut out);
        out
    }

    /// [`add_row_broadcast`](Self::add_row_broadcast) into a caller-owned
    /// buffer (reshaped to fit).
    pub fn add_row_broadcast_into(&self, row: &Matrix, out: &mut Matrix) {
        assert_eq!(row.rows, 1, "Matrix::add_row_broadcast: rhs must be a row vector");
        assert_eq!(row.cols, self.cols, "Matrix::add_row_broadcast shape mismatch");
        out.reset_shape(self.rows, self.cols);
        out.data.copy_from_slice(&self.data);
        let cols = self.cols;
        parallel::parallel_for_rows(&mut out.data, cols, cols, |_i, r| {
            for (o, &b) in r.iter_mut().zip(&row.data) {
                *o += b;
            }
        });
    }

    /// Scales each row `i` by the scalar in `col[i]` (an `n x 1` column).
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.mul_col_broadcast_into(col, &mut out);
        out
    }

    /// [`mul_col_broadcast`](Self::mul_col_broadcast) into a caller-owned
    /// buffer (reshaped to fit).
    pub fn mul_col_broadcast_into(&self, col: &Matrix, out: &mut Matrix) {
        assert_eq!(col.cols, 1, "Matrix::mul_col_broadcast: rhs must be a column vector");
        assert_eq!(col.rows, self.rows, "Matrix::mul_col_broadcast shape mismatch");
        out.reset_shape(self.rows, self.cols);
        out.data.copy_from_slice(&self.data);
        let cols = self.cols;
        parallel::parallel_for_rows(&mut out.data, cols, cols, |i, r| {
            let s = col.data[i];
            for v in r {
                *v *= s;
            }
        });
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise mean, producing a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.data[i * self.cols + j];
            }
        }
        let inv = 1.0 / self.rows as f32;
        out.data.iter_mut().for_each(|v| *v *= inv);
        out
    }

    /// Column-wise sum over each row, producing an `n x 1` column vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for i in 0..self.rows {
            out.data[i] = self.row(i).iter().sum();
        }
        out
    }

    /// Row-wise softmax; each row becomes a probability distribution.
    ///
    /// Uses the max-subtraction trick for numerical stability.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.softmax_rows_into(&mut out);
        out
    }

    /// [`softmax_rows`](Self::softmax_rows) into a caller-owned buffer
    /// (reshaped to fit).
    pub fn softmax_rows_into(&self, out: &mut Matrix) {
        out.reset_shape(self.rows, self.cols);
        out.data.copy_from_slice(&self.data);
        let cols = self.cols;
        // ~4 flops per element plus an exp; 16 is a conservative estimate.
        parallel::parallel_for_rows(&mut out.data, cols, 16 * cols, |_i, row| {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        });
    }

    /// Elementwise map. `f` must be `Sync`: rows of large matrices are
    /// mapped on scoped worker threads (`relu`/`tanh` over big batches).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.map_into(f, &mut out);
        out
    }

    /// [`map`](Self::map) into a caller-owned buffer (reshaped to fit).
    pub fn map_into(&self, f: impl Fn(f32) -> f32 + Sync, out: &mut Matrix) {
        out.reset_shape(self.rows, self.cols);
        let cols = self.cols;
        // Assume a transcendental-ish op per element.
        parallel::parallel_for_rows(&mut out.data, cols, 8 * cols, |i, row| {
            let src = &self.data[i * cols..(i + 1) * cols];
            for (o, &v) in row.iter_mut().zip(src) {
                *o = f(v);
            }
        });
    }

    /// Horizontal concatenation of matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        Matrix::concat_cols_into(parts, &mut out);
        out
    }

    /// [`concat_cols`](Self::concat_cols) into a caller-owned buffer
    /// (reshaped to fit).
    pub fn concat_cols_into(parts: &[&Matrix], out: &mut Matrix) {
        assert!(!parts.is_empty(), "Matrix::concat_cols: empty input");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "Matrix::concat_cols: row count mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        out.reset_shape(rows, cols);
        for i in 0..rows {
            let dst = &mut out.data[i * cols..(i + 1) * cols];
            let mut offset = 0;
            for p in parts {
                dst[offset..offset + p.cols].copy_from_slice(p.row(i));
                offset += p.cols;
            }
        }
    }

    /// Vertical concatenation of matrices with equal column counts.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "Matrix::concat_rows: empty input");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(p.cols, cols, "Matrix::concat_rows: column count mismatch");
            data.extend_from_slice(&p.data);
        }
        let rows = data.len() / cols.max(1);
        Matrix { rows, cols, data }
    }

    /// Copies a contiguous column block `[start, start + width)`.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.slice_cols_into(start, width, &mut out);
        out
    }

    /// [`slice_cols`](Self::slice_cols) into a caller-owned buffer (reshaped
    /// to fit).
    pub fn slice_cols_into(&self, start: usize, width: usize, out: &mut Matrix) {
        assert!(start + width <= self.cols, "Matrix::slice_cols out of bounds");
        out.reset_shape(self.rows, width);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..start + width]);
        }
    }

    /// Copies rows `[start, start + count)` of `src` into `self` (reshaped
    /// to fit) — the allocation-free counterpart of
    /// [`slice_rows`](Self::slice_rows) the inference plan uses to stage
    /// each chunk of a batch.
    pub fn assign_rows_from(&mut self, src: &Matrix, start: usize, count: usize) {
        assert!(start + count <= src.rows, "Matrix::assign_rows_from out of bounds");
        self.reset_shape(count, src.cols);
        self.data.copy_from_slice(&src.data[start * src.cols..(start + count) * src.cols]);
    }

    /// Copies a contiguous row block `[start, start + count)`; cheap
    /// (one `memcpy`) because storage is row-major. Chunked batch inference
    /// uses this to hand each worker its block of encoded pairs.
    pub fn slice_rows(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows, "Matrix::slice_rows out of bounds");
        let data = self.data[start * self.cols..(start + count) * self.cols].to_vec();
        Matrix { rows: count, cols: self.cols, data }
    }

    /// Copies a subset of rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Euclidean distance between two equally shaped matrices.
    pub fn distance(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "Matrix::distance shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt()
    }

    /// True if all elements are finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id =
            Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.5], vec![-1.0, 2.0], vec![0.0, 3.0]]);
        let via_t = a.transpose().matmul(&b);
        let fused = a.matmul_tn(&b);
        assert_eq!(via_t.shape(), fused.shape());
        for (x, y) in via_t.as_slice().iter().zip(fused.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.5, 1.5, -1.0]]);
        let via_t = a.matmul(&b.transpose());
        let fused = a.matmul_nt(&b);
        for (x, y) in via_t.as_slice().iter().zip(fused.as_slice()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn softmax_rows_sums_to_one_and_is_stable() {
        let m = Matrix::from_rows(&[vec![1000.0, 1000.0, 1000.0], vec![-5.0, 0.0, 5.0]]);
        let s = m.softmax_rows();
        assert!(s.is_finite());
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!(approx(sum, 1.0));
        }
        assert!(approx(s.get(0, 0), 1.0 / 3.0));
        assert!(s.get(1, 2) > s.get(1, 1));
    }

    #[test]
    fn broadcast_ops() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = Matrix::from_rows(&[vec![10.0, 20.0]]);
        let out = m.add_row_broadcast(&bias);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);

        let col = Matrix::from_vec(2, 1, vec![2.0, -1.0]);
        let out = m.mul_col_broadcast(&col);
        assert_eq!(out.as_slice(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0], vec![3.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 5.0], vec![4.0, 6.0]]);
        let cat = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.as_slice(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        assert_eq!(cat.slice_cols(0, 1), a);
        assert_eq!(cat.slice_cols(1, 2), b);
    }

    #[test]
    fn mean_rows_and_select() {
        let m = Matrix::from_rows(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        let mu = m.mean_rows();
        assert_eq!(mu.as_slice(), &[2.0, 4.0]);
        let sel = m.select_rows(&[1]);
        assert_eq!(sel.as_slice(), &[3.0, 5.0]);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!(approx(a.distance(&b), 5.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = a.add(&b);
    }

    #[test]
    fn empty_mean_is_zero() {
        let m = Matrix::zeros(0, 3);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.mean_rows().as_slice(), &[0.0, 0.0, 0.0]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn concat_rows_stacks_vertically() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let cat = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn concat_rows_rejects_mismatched_widths() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        let _ = Matrix::concat_rows(&[&a, &b]);
    }

    #[test]
    fn sum_cols_reduces_each_row() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 1.0]]);
        let s = m.sum_cols();
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.as_slice(), &[6.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_cols_bounds_checked() {
        let m = Matrix::zeros(2, 3);
        let _ = m.slice_cols(2, 2);
    }

    #[test]
    fn scalar_and_item_round_trip() {
        assert_eq!(Matrix::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "1x1")]
    fn item_rejects_non_scalar() {
        let _ = Matrix::zeros(2, 1).item();
    }

    #[test]
    fn map_and_scale_agree() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        assert_eq!(m.scale(2.0), m.map(|v| v * 2.0));
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Matrix::full(1, 3, 1.0);
        let b = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.add_scaled_assign(&b, -0.5);
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m.set(0, 0, f32::NAN);
        assert!(!m.is_finite());
        m.set(0, 0, f32::INFINITY);
        assert!(!m.is_finite());
    }
}
