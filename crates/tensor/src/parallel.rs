//! Std-only scoped-thread parallel runtime for row-partitioned kernels.
//!
//! Every hot kernel in this workspace — the three matmul variants, the large
//! elementwise ops, pair encoding, and batched inference — is *embarrassingly
//! parallel across output rows*: each output row is a pure function of the
//! inputs and never aliases another row's slice. This module exploits exactly
//! that shape with `std::thread::scope` (no dependencies, no persistent pool):
//! the output buffer is split into disjoint `&mut` row blocks, one per worker,
//! and every worker runs the *same per-row kernel in the same per-row order*
//! as the serial path. Results are therefore **bit-identical** to serial
//! execution regardless of thread count — the per-row floating-point
//! reduction order never changes, only which OS thread executes it.
//!
//! Dispatch policy, in order:
//!
//! 1. nested calls (a kernel already running on a worker thread) always run
//!    serially, so parallel sections never oversubscribe;
//! 2. a thread-local override installed by [`with_threads`] forces an exact
//!    worker count and bypasses the FLOP threshold (tests and benches use
//!    this to exercise ragged splits on small inputs);
//! 3. otherwise the `ADAMEL_NUM_THREADS` environment variable, read once per
//!    process, caps the worker count; unset, it defaults to
//!    `std::thread::available_parallelism`;
//! 4. work estimated below [`SERIAL_FLOP_THRESHOLD`] runs serially: scoped
//!    threads are spawned per call, so a parallel section must be worth a few
//!    milliseconds of serial work before the spawn cost amortizes.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Estimated-FLOP floor below which work is not worth spawning threads for.
///
/// Scoped workers are real OS threads spawned per dispatch (~tens of µs
/// each); at a conservative 1 GFLOP/s a section needs roughly this much work
/// (~4 ms serial) before splitting it wins. Training-sized batches (16 rows)
/// deliberately stay under the floor so the training loop's many small
/// matmuls keep their serial fast path.
pub const SERIAL_FLOP_THRESHOLD: usize = 1 << 22;

thread_local! {
    /// `with_threads` override; 0 means "not overridden".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True on worker threads spawned by this module: nested dispatches
    /// degrade to serial instead of oversubscribing.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide worker cap: `ADAMEL_NUM_THREADS` if set to a positive
/// integer, otherwise the host's available parallelism. Read once.
fn env_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("ADAMEL_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            })
    })
}

/// The worker count the next top-level dispatch on this thread would use
/// (before the FLOP threshold and row count are applied).
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let forced = OVERRIDE.with(Cell::get);
    if forced > 0 {
        forced
    } else {
        env_threads()
    }
}

/// The host's available parallelism (ignoring any override), for reporting.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs `f` with dispatches on this thread forced to exactly `threads`
/// workers, bypassing the FLOP threshold. `with_threads(1, ..)` is the
/// canonical way to obtain a serial reference result; equivalence tests and
/// the bench harness sweep higher counts. The previous override is restored
/// on exit (including on panic).
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "with_threads: thread count must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(threads)));
    f()
}

/// Decides how many workers a dispatch over `rows` rows costing
/// `flops_per_row` each should use. Returns 1 for the serial path.
fn plan(rows: usize, flops_per_row: usize) -> usize {
    if rows <= 1 || IN_WORKER.with(Cell::get) {
        return 1;
    }
    let forced = OVERRIDE.with(Cell::get);
    if forced > 0 {
        return forced.min(rows);
    }
    let threads = env_threads();
    if threads <= 1 || rows.saturating_mul(flops_per_row) < SERIAL_FLOP_THRESHOLD {
        return 1;
    }
    threads.min(rows)
}

/// Applies `kernel(row_index, row_slice)` to every `width`-element row of
/// `out`, splitting rows across scoped worker threads when the estimated
/// work (`rows * flops_per_row`) clears the dispatch policy.
///
/// The kernel must be a pure function of the row index (plus captured shared
/// state); it is invoked exactly once per row, in ascending index order
/// within each worker, so results are bit-identical to the serial loop.
pub fn parallel_for_rows<F>(out: &mut [f32], width: usize, flops_per_row: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    parallel_for_row_blocks(out, width, 1, flops_per_row, kernel);
}

/// Block-granular variant of [`parallel_for_rows`]: rows are grouped into
/// blocks of `block_rows` (the final block may be ragged) and
/// `kernel(first_row_index, block_slice)` is called once per block.
///
/// Block boundaries are a function of `block_rows` alone — **never** of the
/// worker count — so a kernel whose per-row results are independent (every
/// kernel in this workspace) produces bit-identical output at any thread
/// count. Batched inference uses this to build one bounded autograd graph
/// per block instead of a monolithic graph over the full input.
pub fn parallel_for_row_blocks<F>(
    out: &mut [f32],
    width: usize,
    block_rows: usize,
    flops_per_row: usize,
    kernel: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() || width == 0 {
        return;
    }
    assert_eq!(out.len() % width, 0, "parallel_for_row_blocks: buffer not a multiple of width");
    let rows = out.len() / width;
    let block_rows = block_rows.max(1);
    let blocks = rows.div_ceil(block_rows);
    let threads = plan(rows, flops_per_row).min(blocks);

    if adamel_obs::enabled() {
        adamel_obs::counter_add(
            "parallel.flops_estimated",
            rows.saturating_mul(flops_per_row) as u64,
        );
        if threads <= 1 {
            adamel_obs::counter_add("parallel.dispatch_serial", 1);
        } else {
            adamel_obs::counter_add("parallel.dispatch_parallel", 1);
            adamel_obs::record_value("parallel.workers", threads as f64);
        }
    }

    if threads <= 1 {
        let mut row = 0;
        for block in out.chunks_mut(block_rows * width) {
            kernel(row, block);
            row += block.len() / width;
        }
        return;
    }

    // Hand each worker a contiguous run of whole blocks, balanced to within
    // one block. split_at_mut proves the slices are disjoint, so no locks.
    let base = blocks / threads;
    let extra = blocks % threads;
    std::thread::scope(|s| {
        let kernel = &kernel;
        let mut rest = out;
        let mut row0 = 0;
        for t in 0..threads {
            let nblocks = base + usize::from(t < extra);
            let span = (nblocks * block_rows).min(rows - row0);
            let (head, tail) = rest.split_at_mut(span * width);
            rest = tail;
            let start = row0;
            // Per-worker work share (self-gated; one atomic load when off).
            adamel_obs::trace_value!("parallel.rows_per_worker", span as f64);
            s.spawn(move || {
                IN_WORKER.with(|c| c.set(true));
                let mut row = start;
                for block in head.chunks_mut(block_rows * width) {
                    kernel(row, block);
                    row += block.len() / width;
                }
            });
            row0 += span;
        }
    });
}

/// A handle to a long-running service thread spawned by [`spawn_service`].
///
/// Dropping the handle without calling [`join`](Self::join) detaches the
/// thread (it keeps running until the process exits); daemons that want a
/// clean shutdown signal the thread through their own channel and then
/// `join`.
#[derive(Debug)]
pub struct ServiceHandle {
    inner: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// Blocks until the service thread returns. A panicking service is
    /// reported as `Err` with the thread's name rather than propagating the
    /// panic into the caller.
    pub fn join(mut self) -> Result<(), String> {
        match self.inner.take() {
            Some(h) => {
                let name = h.thread().name().unwrap_or("adamel-service").to_string();
                h.join().map_err(|_| format!("service thread `{name}` panicked"))
            }
            None => Ok(()),
        }
    }
}

/// Spawns a named long-running **service thread** — the only sanctioned way
/// for workspace code to obtain a thread that outlives a single parallel
/// dispatch (the `no-thread-spawn` lint confines `std::thread` to this
/// module so every thread in the process is accounted for here).
///
/// Unlike the scoped dispatch workers above, a service thread is *not*
/// marked as a worker: parallel dispatches it performs (e.g. batched
/// inference inside a request handler) follow the normal dispatch policy,
/// and a daemon that wants one-request-one-core discipline wraps its
/// compute in [`with_threads`]`(1, ..)` instead. Service threads carry no
/// determinism obligations of their own — determinism is a property of the
/// dispatched kernels, which stay bit-identical on any thread.
///
/// Returns an error if the OS refuses to spawn the thread.
pub fn spawn_service(
    name: &str,
    f: impl FnOnce() + Send + 'static,
) -> std::io::Result<ServiceHandle> {
    let handle = std::thread::Builder::new().name(name.to_string()).spawn(f)?;
    Ok(ServiceHandle { inner: Some(handle) })
}

/// Produces `(0..n).map(f).collect()` with `f` evaluated across scoped
/// worker threads when `n * cost_per_item` estimated FLOPs clear the
/// dispatch policy. Output order is always index order.
pub fn parallel_map_collect<T, F>(n: usize, cost_per_item: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = plan(n, cost_per_item);
    if adamel_obs::enabled() {
        adamel_obs::counter_add("parallel.flops_estimated", n.saturating_mul(cost_per_item) as u64);
        if threads <= 1 {
            adamel_obs::counter_add("parallel.dispatch_serial", 1);
        } else {
            adamel_obs::counter_add("parallel.dispatch_parallel", 1);
            adamel_obs::record_value("parallel.workers", threads as f64);
        }
    }
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let base = n / threads;
    let extra = n % threads;
    std::thread::scope(|s| {
        let f = &f;
        let mut rest = out.as_mut_slice();
        let mut start = 0;
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let first = start;
            adamel_obs::trace_value!("parallel.rows_per_worker", len as f64);
            s.spawn(move || {
                IN_WORKER.with(|c| c.set(true));
                for (j, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(first + j));
                }
            });
            start += len;
        }
    });
    out.into_iter().map(|v| v.expect("parallel_map_collect: unfilled slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn for_rows_visits_every_row_once() {
        for threads in [1, 2, 3, 4, 8] {
            let rows = 7;
            let width = 3;
            let mut out = vec![0.0f32; rows * width];
            with_threads(threads, || {
                parallel_for_rows(&mut out, width, 1, |i, row| {
                    for v in row.iter_mut() {
                        *v += i as f32 + 1.0;
                    }
                });
            });
            for i in 0..rows {
                for j in 0..width {
                    assert_eq!(out[i * width + j], i as f32 + 1.0, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn row_blocks_are_ragged_safe_and_thread_count_invariant() {
        // 10 rows in blocks of 4 -> blocks of 4, 4, 2; block starts must be
        // 0, 4, 8 at every thread count (more threads than blocks included).
        for threads in [1, 2, 3, 16] {
            let mut out = vec![0.0f32; 10];
            with_threads(threads, || {
                parallel_for_row_blocks(&mut out, 1, 4, 1, |start, block| {
                    assert!(start % 4 == 0, "block start {start} not on a block boundary");
                    for (j, v) in block.iter_mut().enumerate() {
                        *v = (start + j) as f32;
                    }
                });
            });
            let expect: Vec<f32> = (0..10).map(|i| i as f32).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn fewer_rows_than_threads() {
        let mut out = vec![0.0f32; 2];
        with_threads(8, || {
            parallel_for_rows(&mut out, 1, 1, |i, row| row[0] = i as f32 + 0.5);
        });
        assert_eq!(out, vec![0.5, 1.5]);
    }

    #[test]
    fn empty_and_zero_width_are_no_ops() {
        let mut out: Vec<f32> = Vec::new();
        parallel_for_rows(&mut out, 4, 1, |_, _| panic!("kernel must not run"));
        let mut out = vec![1.0f32; 4];
        parallel_for_rows(&mut out, 0, 1, |_, _| panic!("kernel must not run"));
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn nested_dispatch_degrades_to_serial() {
        let mut out = vec![0.0f32; 6];
        with_threads(3, || {
            parallel_for_rows(&mut out, 2, 1, |i, row| {
                // Inside a worker the nested dispatch must not spawn.
                assert_eq!(current_threads(), 1);
                let mut inner = vec![0.0f32; 2];
                parallel_for_rows(&mut inner, 1, 1, |j, r| r[0] = j as f32);
                row[0] = i as f32 + inner[1];
                row[1] = i as f32;
            });
        });
        assert_eq!(out, vec![1.0, 0.0, 2.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn map_collect_preserves_order() {
        for threads in [1, 2, 5] {
            let v = with_threads(threads, || parallel_map_collect(11, 1, |i| i * i));
            let expect: Vec<usize> = (0..11).map(|i| i * i).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn service_threads_run_join_and_dispatch_normally() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let h = spawn_service("adamel-test-service", move || {
            // A service thread is not a dispatch worker: nested parallel
            // sections follow the normal policy and stay bit-identical.
            let v = with_threads(2, || parallel_map_collect(5, 1, |i| i * 2));
            assert_eq!(v, vec![0, 2, 4, 6, 8]);
            hits2.fetch_add(1, Ordering::SeqCst);
        })
        .expect("spawn");
        h.join().expect("service completed");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn service_panic_is_reported_not_propagated() {
        let h = spawn_service("adamel-test-panic", || panic!("boom")).expect("spawn");
        let err = h.join().expect_err("panic must surface as Err");
        assert!(err.contains("adamel-test-panic"), "err was: {err}");
    }

    #[test]
    fn map_collect_empty() {
        let v: Vec<u8> = parallel_map_collect(0, 1, |_| unreachable!());
        assert!(v.is_empty());
    }
}
