//! Optimizers: Adam (the paper's choice, Kingma & Ba 2014) and plain SGD.

use crate::matrix::Matrix;
use crate::params::ParamSet;

/// Common interface so training loops can be generic over the optimizer.
pub trait Optimizer {
    /// Applies one update using the gradients currently stored in `params`,
    /// then leaves the gradients untouched (callers zero them).
    fn step(&mut self, params: &mut ParamSet);
    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
    /// Changes the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Adam with bias correction; defaults match the paper's configuration
/// (lr = 1e-4) and the standard β/ε choices.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with custom hyperparameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self { lr, beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn with_lr(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8)
    }

    fn ensure_state(&mut self, params: &ParamSet) {
        if self.m.len() == params.len() {
            return;
        }
        assert!(
            self.m.is_empty(),
            "Adam: parameter set grew after the first step; create a new optimizer"
        );
        for id in params.ids() {
            let shape = params.value(id).shape();
            self.m.push(Matrix::zeros(shape.0, shape.1));
            self.v.push(Matrix::zeros(shape.0, shape.1));
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::with_lr(1e-4)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) {
        adamel_obs::trace_span!("adam_step");
        crate::sanitize::check_grads_finite("adam", params);
        self.ensure_state(params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, id) in params.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let (value, grad) = params.value_and_grad_mut(id);
            let m = &mut self.m[k];
            let v = &mut self.v[k];
            for (((val, mv), vv), g) in value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_mut_slice().iter_mut())
                .zip(v.as_mut_slice().iter_mut())
                .zip(grad.as_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *val -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Vanilla stochastic gradient descent; used by the TLER baseline's logistic
/// regression and as a reference in tests.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) {
        crate::sanitize::check_grads_finite("sgd", params);
        for id in params.ids().collect::<Vec<_>>() {
            let lr = self.lr;
            let (value, grad) = params.value_and_grad_mut(id);
            for (v, g) in value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *v -= lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizing (w - 3)² should drive w toward 3 with either optimizer.
    fn quadratic_descent(opt: &mut dyn Optimizer) -> f32 {
        let mut params = ParamSet::new();
        let w_id = params.insert("w", Matrix::scalar(0.0));
        for _ in 0..2000 {
            params.zero_grads();
            let mut g = Graph::new();
            let w = g.param(&params, w_id);
            let c = g.constant(Matrix::scalar(-3.0));
            let diff = g.add(w, c);
            let sq = g.mul(diff, diff);
            let loss = g.sum_all(sq);
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        params.value(w_id).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(&mut Sgd::new(0.05));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(&mut Adam::with_lr(0.05));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the first Adam step is ~lr in magnitude
        // regardless of the gradient scale.
        let mut params = ParamSet::new();
        let w_id = params.insert("w", Matrix::scalar(0.0));
        params.grad_mut(w_id).add_assign(&Matrix::scalar(1000.0));
        let mut opt = Adam::with_lr(0.1);
        opt.step(&mut params);
        assert!((params.value(w_id).item() + 0.1).abs() < 1e-3);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::with_lr(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.2);
        assert_eq!(opt.learning_rate(), 0.2);
    }
}
