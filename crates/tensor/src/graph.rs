//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Graph`] is a tape: every operation appends a node recording its
//! inputs, its output value, and enough context to compute vector-Jacobian
//! products on the way back. A fresh graph is built per training step (define
//! -by-run); parameters live outside the graph in a
//! [`ParamSet`](crate::params::ParamSet) and are re-inserted as leaves each
//! step, which keeps the tape simple and makes gradient accumulation
//! explicit.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use crate::sanitize;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Position on the tape; the plan compiler keys its node tables on this.
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// The recorded operation of a tape node.
pub(crate) enum Op {
    /// Constant input; no gradient flows further.
    Constant,
    /// Leaf bound to a trainable parameter; backward accumulates into the
    /// parameter's gradient buffer.
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    /// `(n,m) + (1,m)` bias addition.
    AddRowBroadcast(Var, Var),
    /// Elementwise product of equally shaped nodes.
    Mul(Var, Var),
    /// `(n,m) * (n,1)`: row `i` scaled by `col[i]`.
    MulColBroadcast(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    SoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    /// Contiguous column window `[start, start+width)` of the input.
    SliceCols {
        input: Var,
        start: usize,
        width: usize,
    },
    MeanAll(Var),
    SumAll(Var),
    /// Mean binary cross-entropy on logits vs. constant targets, with
    /// per-sample constant weights. Fused for numerical stability.
    WeightedBceWithLogits {
        logits: Var,
        targets: Matrix,
        weights: Matrix,
    },
    /// Mean over rows of `KL(q || p_i)` with a constant row distribution `q`
    /// and `p` the (already normalized) rows of the input.
    KlConstRows {
        probs: Var,
        target: Matrix,
        eps: f32,
    },
}

impl Op {
    /// Stable op name for sanitizer provenance and diagnostics.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Op::Constant => "constant",
            Op::Param(_) => "param",
            Op::MatMul(..) => "matmul",
            Op::Add(..) => "add",
            Op::AddRowBroadcast(..) => "add_row_broadcast",
            Op::Mul(..) => "mul",
            Op::MulColBroadcast(..) => "mul_col_broadcast",
            Op::Scale(..) => "scale",
            Op::Relu(_) => "relu",
            Op::Tanh(_) => "tanh",
            Op::Sigmoid(_) => "sigmoid",
            Op::SoftmaxRows(_) => "softmax_rows",
            Op::ConcatCols(_) => "concat_cols",
            Op::SliceCols { .. } => "slice_cols",
            Op::MeanAll(_) => "mean_all",
            Op::SumAll(_) => "sum_all",
            Op::WeightedBceWithLogits { .. } => "weighted_bce_with_logits",
            Op::KlConstRows { .. } => "kl_const_rows",
        }
    }
}

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) op: Op,
}

/// A define-by-run autograd tape.
pub struct Graph {
    nodes: Vec<Node>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        // Observe-at-death: nodes only ever append, so a tape's footprint
        // peaks exactly when it drops. One absolute gauge observation per
        // graph keeps the per-op hot path untouched; when tracing is off
        // this is a single relaxed atomic load.
        if adamel_obs::enabled() {
            let bytes: u64 = self.nodes.iter().map(|n| (n.value.as_slice().len() * 4) as u64).sum();
            adamel_obs::mem::observe("tensor.graph.bytes", bytes);
        }
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(64) }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        // Sanitizer (on by default in debug builds, `ADAMEL_SANITIZE=1`
        // elsewhere): every tape op's output must be finite, and a softmax
        // output must additionally be a valid row distribution (Eq. 5–6).
        sanitize::check_finite(op.name(), &value);
        if matches!(op, Op::SoftmaxRows(_)) {
            sanitize::check_rows_normalized(op.name(), &value);
        }
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The recorded tape, in push order; the plan compiler walks this.
    pub(crate) fn tape(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Inserts a constant (no gradient) input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant)
    }

    /// Inserts a leaf bound to parameter `id`, copying its current value.
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        self.push(params.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        adamel_obs::trace_op!("matmul");
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a, b))
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        adamel_obs::trace_op!("add");
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(value, Op::Add(a, b))
    }

    /// Adds a `1 x m` bias row to every row of an `n x m` node.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        adamel_obs::trace_op!("add_row_broadcast");
        let value = self.nodes[a.0].value.add_row_broadcast(&self.nodes[bias.0].value);
        self.push(value, Op::AddRowBroadcast(a, bias))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        adamel_obs::trace_op!("mul");
        let value = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        self.push(value, Op::Mul(a, b))
    }

    /// Scales row `i` of `a` by element `i` of the `n x 1` node `col`.
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        adamel_obs::trace_op!("mul_col_broadcast");
        let value = self.nodes[a.0].value.mul_col_broadcast(&self.nodes[col.0].value);
        self.push(value, Op::MulColBroadcast(a, col))
    }

    /// Multiplies by a compile-time constant scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        adamel_obs::trace_op!("scale");
        let value = self.nodes[a.0].value.scale(s);
        self.push(value, Op::Scale(a, s))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        adamel_obs::trace_op!("relu");
        let value = self.nodes[a.0].value.map(|v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        adamel_obs::trace_op!("tanh");
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        adamel_obs::trace_op!("sigmoid");
        let value = self.nodes[a.0].value.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        adamel_obs::trace_op!("softmax_rows");
        let value = self.nodes[a.0].value.softmax_rows();
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        adamel_obs::trace_op!("concat_cols");
        let values: Vec<&Matrix> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let value = Matrix::concat_cols(&values);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Copies a contiguous column window `[start, start+width)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, width: usize) -> Var {
        adamel_obs::trace_op!("slice_cols");
        let value = self.nodes[a.0].value.slice_cols(start, width);
        self.push(value, Op::SliceCols { input: a, start, width })
    }

    /// Mean over all elements, producing a 1x1 node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        adamel_obs::trace_op!("mean_all");
        let value = Matrix::scalar(self.nodes[a.0].value.mean());
        self.push(value, Op::MeanAll(a))
    }

    /// Sum over all elements, producing a 1x1 node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        adamel_obs::trace_op!("sum_all");
        let value = Matrix::scalar(self.nodes[a.0].value.sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean binary cross-entropy with logits (numerically stable fused op).
    ///
    /// `logits` is `n x 1`; `targets` holds 0/1 labels and `weights`
    /// per-sample non-negative weights (both constants, `n x 1`). The loss is
    /// `mean_i w_i * bce(sigmoid(z_i), y_i)` computed as
    /// `w * (max(z,0) - z*y + ln(1 + e^{-|z|}))`.
    pub fn weighted_bce_with_logits(
        &mut self,
        logits: Var,
        targets: Matrix,
        weights: Matrix,
    ) -> Var {
        adamel_obs::trace_op!("weighted_bce_with_logits");
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.cols(), 1, "bce_with_logits expects n x 1 logits");
        assert_eq!(z.shape(), targets.shape(), "bce targets shape mismatch");
        assert_eq!(z.shape(), weights.shape(), "bce weights shape mismatch");
        let n = z.rows().max(1) as f32;
        let mut total = 0.0;
        for i in 0..z.rows() {
            let zi = z.get(i, 0);
            let yi = targets.get(i, 0);
            let wi = weights.get(i, 0);
            total += wi * (zi.max(0.0) - zi * yi + (-zi.abs()).exp().ln_1p());
        }
        self.push(Matrix::scalar(total / n), Op::WeightedBceWithLogits { logits, targets, weights })
    }

    /// Mean binary cross-entropy with logits and unit weights.
    pub fn bce_with_logits(&mut self, logits: Var, targets: Matrix) -> Var {
        let weights = Matrix::full(targets.rows(), targets.cols(), 1.0);
        self.weighted_bce_with_logits(logits, targets, weights)
    }

    /// Mean over rows of `KL(q || p_i) = Σ_j q_j ln(q_j / p_ij)` where `q` is
    /// a constant `1 x m` distribution and the input rows `p_i` are already
    /// normalized (e.g. softmax outputs). `eps` guards the logarithm.
    pub fn kl_const_rows(&mut self, probs: Var, target: Matrix, eps: f32) -> Var {
        adamel_obs::trace_op!("kl_const_rows");
        let p = &self.nodes[probs.0].value;
        assert_eq!(target.rows(), 1, "kl_const_rows expects a 1 x m target");
        assert_eq!(p.cols(), target.cols(), "kl_const_rows shape mismatch");
        let n = p.rows().max(1) as f32;
        let mut total = 0.0;
        for i in 0..p.rows() {
            for j in 0..p.cols() {
                let q = target.get(0, j);
                if q > 0.0 {
                    total += q * ((q / (p.get(i, j) + eps)).ln());
                }
            }
        }
        // KL is analytically non-negative; the eps guard can dip the
        // computed mean a hair below zero but never materially (Eq. 9–10).
        sanitize::check_loss_non_negative("kl_const_rows", total / n, 1e-3);
        self.push(Matrix::scalar(total / n), Op::KlConstRows { probs, target, eps })
    }

    /// Convenience: `relu(x @ w + b)` with a `1 x out` bias row.
    pub fn linear_relu(&mut self, x: Var, w: Var, b: Var) -> Var {
        let z = self.matmul(x, w);
        let z = self.add_row_broadcast(z, b);
        self.relu(z)
    }

    /// Convenience: `x @ w + b`.
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let z = self.matmul(x, w);
        self.add_row_broadcast(z, b)
    }

    /// Runs reverse-mode differentiation from the scalar node `root`,
    /// accumulating parameter gradients into `params`.
    ///
    /// The tape is consumed conceptually (gradients of interior nodes are
    /// dropped afterwards); call once per constructed graph.
    pub fn backward(&self, root: Var, params: &mut ParamSet) {
        adamel_obs::trace_span!("backward");
        assert_eq!(
            self.nodes[root.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) root"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Matrix::scalar(1.0));

        for idx in (0..=root.0).rev() {
            let Some(grad) = grads[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Constant => {}
                Op::Param(id) => params.grad_mut(*id).add_assign(&grad),
                Op::MatMul(a, b) => {
                    // dL/dA = G Bᵀ ; dL/dB = Aᵀ G
                    let ga = grad.matmul_nt(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.matmul_tn(&grad);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, grad.clone());
                    accumulate(&mut grads, *b, grad);
                }
                Op::AddRowBroadcast(a, bias) => {
                    // Bias gradient is the column sum of the upstream grad.
                    let mut gb = Matrix::zeros(1, grad.cols());
                    for i in 0..grad.rows() {
                        for j in 0..grad.cols() {
                            gb.set(0, j, gb.get(0, j) + grad.get(i, j));
                        }
                    }
                    accumulate(&mut grads, *a, grad);
                    accumulate(&mut grads, *bias, gb);
                }
                Op::Mul(a, b) => {
                    let ga = grad.mul(&self.nodes[b.0].value);
                    let gb = grad.mul(&self.nodes[a.0].value);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::MulColBroadcast(a, col) => {
                    let aval = &self.nodes[a.0].value;
                    let cval = &self.nodes[col.0].value;
                    let ga = grad.mul_col_broadcast(cval);
                    // d/dcol_i = Σ_j grad_ij * a_ij
                    let gc = grad.mul(aval).sum_cols();
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *col, gc);
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, grad.scale(*s)),
                Op::Relu(a) => {
                    let mask = self.nodes[a.0].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accumulate(&mut grads, *a, grad.mul(&mask));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let deriv = y.map(|t| 1.0 - t * t);
                    accumulate(&mut grads, *a, grad.mul(&deriv));
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let deriv = y.map(|s| s * (1.0 - s));
                    accumulate(&mut grads, *a, grad.mul(&deriv));
                }
                Op::SoftmaxRows(a) => {
                    // dL/dz_ij = p_ij * (g_ij - Σ_k g_ik p_ik)
                    let p = &self.nodes[idx].value;
                    let mut gz = Matrix::zeros(p.rows(), p.cols());
                    for i in 0..p.rows() {
                        let dot: f32 = grad.row(i).iter().zip(p.row(i)).map(|(g, pi)| g * pi).sum();
                        for j in 0..p.cols() {
                            gz.set(i, j, p.get(i, j) * (grad.get(i, j) - dot));
                        }
                    }
                    accumulate(&mut grads, *a, gz);
                }
                Op::SliceCols { input, start, width } => {
                    let v = &self.nodes[input.0].value;
                    let mut gi = Matrix::zeros(v.rows(), v.cols());
                    for i in 0..grad.rows() {
                        for j in 0..*width {
                            gi.set(i, start + j, grad.get(i, j));
                        }
                    }
                    accumulate(&mut grads, *input, gi);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for part in parts {
                        let width = self.nodes[part.0].value.cols();
                        let gp = grad.slice_cols(offset, width);
                        accumulate(&mut grads, *part, gp);
                        offset += width;
                    }
                }
                Op::MeanAll(a) => {
                    let v = &self.nodes[a.0].value;
                    let g = grad.item() / v.len().max(1) as f32;
                    accumulate(&mut grads, *a, Matrix::full(v.rows(), v.cols(), g));
                }
                Op::SumAll(a) => {
                    let v = &self.nodes[a.0].value;
                    accumulate(&mut grads, *a, Matrix::full(v.rows(), v.cols(), grad.item()));
                }
                Op::WeightedBceWithLogits { logits, targets, weights } => {
                    // d/dz of mean_i w_i * bce = w_i (sigmoid(z_i) - y_i) / n
                    let z = &self.nodes[logits.0].value;
                    let n = z.rows().max(1) as f32;
                    let g = grad.item();
                    let mut gz = Matrix::zeros(z.rows(), 1);
                    for i in 0..z.rows() {
                        let s = 1.0 / (1.0 + (-z.get(i, 0)).exp());
                        gz.set(i, 0, g * weights.get(i, 0) * (s - targets.get(i, 0)) / n);
                    }
                    accumulate(&mut grads, *logits, gz);
                }
                Op::KlConstRows { probs, target, eps } => {
                    // d/dp_ij of mean_i Σ_j q_j ln(q_j/(p_ij+eps)) = -q_j/(p_ij+eps)/n
                    let p = &self.nodes[probs.0].value;
                    let n = p.rows().max(1) as f32;
                    let g = grad.item();
                    let mut gp = Matrix::zeros(p.rows(), p.cols());
                    for i in 0..p.rows() {
                        for j in 0..p.cols() {
                            let q = target.get(0, j);
                            if q > 0.0 {
                                gp.set(i, j, -g * q / ((p.get(i, j) + eps) * n));
                            }
                        }
                    }
                    accumulate(&mut grads, *probs, gp);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], var: Var, grad: Matrix) {
    match &mut grads[var.0] {
        Some(existing) => existing.add_assign(&grad),
        slot => *slot = Some(grad),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;

    fn approx(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn backward_through_matmul() {
        // L = sum(A @ B); dL/dA = 1 Bᵀ, dL/dB = Aᵀ 1
        let mut params = ParamSet::new();
        let a_id = params.insert("a", Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b_id = params.insert("b", Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]));
        let mut g = Graph::new();
        let a = g.param(&params, a_id);
        let b = g.param(&params, b_id);
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss, &mut params);
        // dL/dA = ones(2,2) @ Bᵀ = [[11, 15], [11, 15]]
        assert_eq!(params.grad(a_id).as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        // dL/dB = Aᵀ @ ones = [[4, 4], [6, 6]]
        assert_eq!(params.grad(b_id).as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn backward_through_softmax_is_zero_for_uniform_upstream() {
        // Σ_j softmax_j is constant 1, so d(sum softmax)/dz = 0.
        let mut params = ParamSet::new();
        let z_id = params.insert("z", Matrix::from_rows(&[vec![0.3, -1.2, 2.0]]));
        let mut g = Graph::new();
        let z = g.param(&params, z_id);
        let p = g.softmax_rows(z);
        let loss = g.sum_all(p);
        g.backward(loss, &mut params);
        for &v in params.grad(z_id).as_slice() {
            assert!(approx(v, 0.0, 1e-6), "grad {v} should vanish");
        }
    }

    #[test]
    fn bce_gradient_matches_sigmoid_minus_target() {
        let mut params = ParamSet::new();
        let z_id = params.insert("z", Matrix::from_vec(2, 1, vec![0.5, -1.0]));
        let mut g = Graph::new();
        let z = g.param(&params, z_id);
        let targets = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        let loss = g.bce_with_logits(z, targets);
        g.backward(loss, &mut params);
        let s0 = 1.0 / (1.0 + (-0.5f32).exp());
        let s1 = 1.0 / (1.0 + (1.0f32).exp());
        assert!(approx(params.grad(z_id).get(0, 0), (s0 - 1.0) / 2.0, 1e-6));
        assert!(approx(params.grad(z_id).get(1, 0), s1 / 2.0, 1e-6));
    }

    #[test]
    fn kl_is_zero_when_distributions_match() {
        let mut g = Graph::new();
        let p = g.constant(Matrix::from_rows(&[vec![0.25, 0.75], vec![0.25, 0.75]]));
        let q = Matrix::from_rows(&[vec![0.25, 0.75]]);
        let kl = g.kl_const_rows(p, q, 0.0);
        assert!(approx(g.value(kl).item(), 0.0, 1e-6));
    }

    #[test]
    fn kl_is_positive_when_distributions_differ() {
        let mut g = Graph::new();
        let p = g.constant(Matrix::from_rows(&[vec![0.9, 0.1]]));
        let q = Matrix::from_rows(&[vec![0.1, 0.9]]);
        let kl = g.kl_const_rows(p, q, 0.0);
        assert!(g.value(kl).item() > 0.5);
    }

    #[test]
    fn chained_linear_relu_shapes() {
        let mut params = ParamSet::new();
        let w_id = params.insert("w", Matrix::zeros(3, 4));
        let b_id = params.insert("b", Matrix::zeros(1, 4));
        let mut g = Graph::new();
        let x = g.constant(Matrix::full(5, 3, 1.0));
        let w = g.param(&params, w_id);
        let b = g.param(&params, b_id);
        let y = g.linear_relu(x, w, b);
        assert_eq!(g.value(y).shape(), (5, 4));
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar_root() {
        let mut params = ParamSet::new();
        let mut g = Graph::new();
        let x = g.constant(Matrix::zeros(2, 2));
        g.backward(x, &mut params);
    }
}

#[cfg(test)]
mod shape_guard_tests {
    use super::*;
    use crate::params::ParamSet;

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::zeros(2, 3));
        let b = g.constant(Matrix::zeros(2, 3));
        let _ = g.matmul(a, b);
    }

    #[test]
    #[should_panic(expected = "bce")]
    fn bce_rejects_wide_logits() {
        let mut g = Graph::new();
        let z = g.constant(Matrix::zeros(2, 2));
        let _ = g.bce_with_logits(z, Matrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "kl_const_rows")]
    fn kl_rejects_matrix_target() {
        let mut g = Graph::new();
        let p = g.constant(Matrix::zeros(2, 3));
        let _ = g.kl_const_rows(p, Matrix::zeros(2, 3), 1e-8);
    }

    #[test]
    fn second_backward_on_fresh_graph_is_consistent() {
        // Gradients accumulate across backward calls on the same ParamSet
        // unless zeroed — verify both behaviors.
        let mut params = ParamSet::new();
        let w = params.insert("w", Matrix::scalar(2.0));
        let run = |params: &mut ParamSet| {
            let mut g = Graph::new();
            let wv = g.param(params, w);
            let sq = g.mul(wv, wv);
            let loss = g.sum_all(sq);
            g.backward(loss, params);
        };
        run(&mut params);
        assert_eq!(params.grad(w).item(), 4.0);
        run(&mut params);
        assert_eq!(params.grad(w).item(), 8.0, "gradients must accumulate");
        params.zero_grads();
        run(&mut params);
        assert_eq!(params.grad(w).item(), 4.0);
    }

    #[test]
    fn constants_receive_no_parameter_gradient() {
        let mut params = ParamSet::new();
        let w = params.insert("w", Matrix::scalar(1.0));
        let mut g = Graph::new();
        let c = g.constant(Matrix::scalar(5.0));
        let wv = g.param(&params, w);
        let prod = g.mul(c, wv);
        let loss = g.sum_all(prod);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(w).item(), 5.0);
    }
}
