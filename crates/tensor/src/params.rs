//! Trainable parameter storage.
//!
//! Parameters live outside the autograd tape so a fresh [`Graph`](crate::Graph)
//! can be built every step while values, gradients, and optimizer state
//! persist across steps.

use crate::matrix::Matrix;

/// Handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct ParamEntry {
    name: String,
    value: Matrix,
    grad: Matrix,
}

/// A named collection of trainable matrices with gradient buffers.
#[derive(Default)]
pub struct ParamSet {
    entries: Vec<ParamEntry>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Registers a parameter, returning its handle. Names are for
    /// introspection and need not be unique (e.g. per-feature weights share a
    /// prefix).
    pub fn insert(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry { name: name.into(), value, grad });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters, as reported in the paper's §4.5
    /// complexity analysis.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Mutable value access (used by optimizers and serialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].grad
    }

    /// Mutable gradient access (used by `Graph::backward`).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].grad
    }

    /// Simultaneous mutable value / immutable gradient access for one
    /// parameter — lets optimizers update in place without cloning the
    /// gradient.
    pub fn value_and_grad_mut(&mut self, id: ParamId) -> (&mut Matrix, &Matrix) {
        let e = &mut self.entries[id.0];
        (&mut e.value, &e.grad)
    }

    /// The name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Handles of every parameter, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zeroes every gradient buffer; call before each backward pass.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Global L2 norm of all gradients; useful for clipping and diagnostics.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.as_slice().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                for v in e.grad.as_mut_slice() {
                    *v *= s;
                }
            }
        }
    }

    /// Deep-copies all current values (snapshot for early stopping / best
    /// model tracking).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.entries.iter().map(|e| e.value.clone()).collect()
    }

    /// Restores values from a [`snapshot`](Self::snapshot). Panics if the
    /// shapes do not line up.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.entries.len(), "ParamSet::restore arity mismatch");
        for (e, s) in self.entries.iter_mut().zip(snapshot) {
            assert_eq!(e.value.shape(), s.shape(), "ParamSet::restore shape mismatch");
            e.value = s.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_count_scalars() {
        let mut p = ParamSet::new();
        let a = p.insert("w", Matrix::zeros(3, 4));
        let b = p.insert("b", Matrix::zeros(1, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 16);
        assert_eq!(p.name(a), "w");
        assert_eq!(p.name(b), "b");
    }

    #[test]
    fn zero_grads_resets() {
        let mut p = ParamSet::new();
        let a = p.insert("w", Matrix::zeros(2, 2));
        p.grad_mut(a).add_assign(&Matrix::full(2, 2, 3.0));
        assert_eq!(p.grad(a).sum(), 12.0);
        p.zero_grads();
        assert_eq!(p.grad(a).sum(), 0.0);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut p = ParamSet::new();
        let a = p.insert("w", Matrix::zeros(1, 2));
        p.grad_mut(a).add_assign(&Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        p.clip_grad_norm(1.0);
        assert!((p.grad_norm() - 1.0).abs() < 1e-6);
        // Direction is preserved.
        let g = p.grad(a);
        assert!((g.get(0, 0) / g.get(0, 1) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut p = ParamSet::new();
        let a = p.insert("w", Matrix::full(2, 2, 1.0));
        let snap = p.snapshot();
        p.value_mut(a).add_assign(&Matrix::full(2, 2, 5.0));
        assert_eq!(p.value(a).get(0, 0), 6.0);
        p.restore(&snap);
        assert_eq!(p.value(a).get(0, 0), 1.0);
    }
}
