//! Opt-in runtime numerics sanitizer.
//!
//! AdaMEL's correctness rests on numeric invariants the type system cannot
//! express: every tape op must produce finite values, the feature-attention
//! softmax must emit valid distributions (paper Eq. 5–6), the `eps`-guarded
//! KL adaptation term must stay finite and non-negative (Eq. 9–10), and
//! gradients reaching the optimizer must be finite. This module checks those
//! invariants *at the op that violates them*, so a NaN is reported with the
//! name of the operation (and, for gradients, the parameter) that produced
//! it instead of surfacing fifty ops later as a garbage PRAUC.
//!
//! ## Enabling
//!
//! * `ADAMEL_SANITIZE=1` (or `true`/`on`) — on in any build;
//! * `ADAMEL_SANITIZE=0` (or `false`/`off`) — off in any build;
//! * unset — on under `debug_assertions`, off in release.
//!
//! The environment is read once; [`set_forced`] overrides it at runtime for
//! benches that measure the overhead pair.
//!
//! ## Cost
//!
//! Every check is gated on [`enabled`], a relaxed atomic load plus a cached
//! bool — when the sanitizer is off the per-op cost is one predictable
//! branch, which is unmeasurable next to any tape op's own work (the
//! `sanitize` rows of `BENCH_parallel.json` record the pair). When on, each
//! op adds one pass over its output.
//!
//! Violations abort via `panic!` with an `adamel-sanitize:` prefix. That is
//! a deliberate `no-panic` lint exception (see `lint.allow`): a NaN in the
//! tape means the training step is already lost, and the panic carries the
//! provenance the sanitizer exists to provide.

use crate::matrix::Matrix;
use crate::params::ParamSet;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Runtime override state: 0 = follow the environment, 1 = forced off,
/// 2 = forced on.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces the sanitizer on/off (`Some`) or back to the environment default
/// (`None`), overriding `ADAMEL_SANITIZE`. Process-global: intended for
/// single-threaded benches (the perfjson overhead pair) and isolated test
/// binaries, not for toggling mid-training.
pub fn set_forced(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("ADAMEL_SANITIZE") {
        Ok(v) => matches!(v.trim(), "1" | "true" | "on"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// True when sanitizer checks run. See the module docs for the policy.
#[inline]
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_default(),
    }
}

#[cold]
#[inline(never)]
fn fail(msg: String) -> ! {
    panic!("adamel-sanitize: {msg}");
}

/// Asserts every element of `value` is finite, attributing a violation to
/// the graph op `op`. No-op when the sanitizer is off.
#[inline]
pub fn check_finite(op: &str, value: &Matrix) {
    if !enabled() {
        return;
    }
    for (idx, v) in value.as_slice().iter().enumerate() {
        if !v.is_finite() {
            let cols = value.cols().max(1);
            fail(format!(
                "op `{op}` produced non-finite value {v} at ({}, {}) of its {}x{} output",
                idx / cols,
                idx % cols,
                value.rows(),
                value.cols()
            ));
        }
    }
}

/// Asserts every row of `value` sums to ~1 (a valid distribution), as the
/// attention softmax must (Eq. 5–6). No-op when the sanitizer is off.
#[inline]
pub fn check_rows_normalized(op: &str, value: &Matrix) {
    if !enabled() {
        return;
    }
    for i in 0..value.rows() {
        let sum: f32 = value.row(i).iter().sum();
        if !(sum.is_finite() && (sum - 1.0).abs() <= ROW_SUM_TOL) {
            fail(format!(
                "op `{op}` row {i} sums to {sum}, not a distribution (|sum - 1| <= {ROW_SUM_TOL} \
                 required)"
            ));
        }
    }
}

/// Tolerance for [`check_rows_normalized`]: softmax rows of realistic width
/// (≤ a few thousand columns) sum to 1 within a few f32 ulps per term.
pub const ROW_SUM_TOL: f32 = 1e-3;

/// Asserts a scalar loss term is finite and ≥ `-tol`. KL divergence is
/// non-negative analytically; the `eps` log guard can push the computed
/// value a hair below zero, hence the tolerance. NaN and ±inf fail. No-op
/// when the sanitizer is off.
#[inline]
pub fn check_loss_non_negative(op: &str, value: f32, tol: f32) {
    if !enabled() {
        return;
    }
    if !value.is_finite() || value < -tol {
        fail(format!("op `{op}` produced loss {value}, expected finite and >= -{tol}"));
    }
}

/// Asserts every accumulated gradient in `params` is finite before an
/// optimizer consumes it, attributing a violation to the parameter by name.
/// No-op when the sanitizer is off.
#[inline]
pub fn check_grads_finite(optimizer: &str, params: &ParamSet) {
    if !enabled() {
        return;
    }
    for id in params.ids() {
        if !params.grad(id).is_finite() {
            fail(format!(
                "optimizer `{optimizer}` received a non-finite gradient for parameter `{}`",
                params.name(id)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The panic-path tests live in `tests/sanitize.rs` (op provenance) and
    // `tests/sanitize_disabled.rs` (forced-off no-op), each its own process;
    // here only the pure predicates.

    #[test]
    fn row_sum_tolerance_accepts_real_softmax() {
        let m = Matrix::from_rows(&[vec![5.0, -3.0, 0.5], vec![-100.0, 0.0, 100.0]]).softmax_rows();
        if enabled() {
            check_rows_normalized("softmax_rows", &m);
        }
    }

    #[test]
    fn forced_state_round_trips() {
        // Only observes `enabled()` transitions that are unambiguous under
        // either environment default, and restores the default at the end.
        set_forced(Some(true));
        assert!(enabled());
        set_forced(Some(false));
        assert!(!enabled());
        set_forced(None);
    }
}
