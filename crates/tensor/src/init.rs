//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Appropriate for tanh layers like the
/// attention head.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// He/Kaiming uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// Appropriate for ReLU layers (the per-feature affine and classifier).
pub fn he_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / rows.max(1) as f32).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// Uniform initialization in `[lo, hi)`.
pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
        // Not degenerate: values differ.
        assert!(m.as_slice().iter().any(|&v| v != m.get(0, 0)));
    }

    #[test]
    fn he_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = he_uniform(24, 8, &mut rng);
        let a = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(1));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
