//! End-to-end tests over real sockets: boot the daemon on an ephemeral
//! port, drive it with hand-written HTTP, and hold it to the crate's three
//! load-bearing promises — bit-identity with the offline pipeline, atomic
//! hot-swap under concurrent traffic, and bounded-queue backpressure
//! without deadlock.
//!
//! The run ledger and its event counts are process-global, so the tests
//! serialize on a static lock. Client-side concurrency comes from the
//! workspace parallel runtime (`with_threads` + `parallel_map_collect`),
//! never raw `thread::spawn`.

use adamel::config::{AdamelConfig, Variant};
use adamel::train::fit;
use adamel::{AdamelModel, Linker, LinkerConfig};
use adamel_obs::json::Json;
use adamel_schema::{Domain, EntityPair, Record, Schema, SourceId};
use adamel_serve::{DriftConfig, Engine, EngineConfig, RecordLine, Server, ServerConfig};
use adamel_tensor::parallel;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn rec(source: u32, id: u64, name: &str) -> Record {
    let mut r = Record::new(SourceId(source), id);
    r.set("name", name);
    r
}

fn trained_model_on(names: &[&str]) -> AdamelModel {
    let schema = Schema::new(vec!["name".into()]);
    let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
    let mut train = Vec::new();
    for (i, n) in names.iter().enumerate() {
        let id = i as u64;
        train.push(EntityPair::labeled(rec(0, id, n), rec(1, id, n), true));
        let other = names[(i + 1) % names.len()];
        train.push(EntityPair::labeled(rec(0, id, n), rec(1, id + 50, other), false));
    }
    fit(&mut model, Variant::Base, &Domain::new(train), None, None);
    model
}

fn trained_model() -> AdamelModel {
    trained_model_on(&["alpha beta", "gamma delta", "epsilon zeta", "eta theta"])
}

/// Corpus records in ascending `(source, entity_id)` key order, so the
/// engine's snapshot equals this vec verbatim and offline `link` over it is
/// the ground truth for the served results.
fn corpus() -> Vec<Record> {
    vec![
        rec(1, 10, "alpha beta"),
        rec(1, 11, "gamma delta"),
        rec(1, 12, "epsilon zeta"),
        rec(2, 20, "alpha gamma"),
    ]
}

fn record_line(r: &Record) -> String {
    let SourceId(source) = r.source;
    let values: BTreeMap<String, String> =
        r.values.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    RecordLine { source, entity_id: r.entity_id, values }.to_json()
}

fn jsonl(records: &[Record]) -> String {
    records.iter().map(|r| record_line(r) + "\n").collect()
}

/// One HTTP exchange on a fresh connection; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("set timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Parses a `/link` JSONL response into `(query, source, entity_id,
/// score_bits)` rows, dropping the trailing summary line.
fn parse_matches(body: &str) -> Vec<(usize, u32, u64, u32)> {
    body.lines()
        .filter(|l| l.contains("\"score_bits\""))
        .map(|l| {
            let v = Json::parse(l).expect("valid match line");
            let bits_hex = v.get("score_bits").and_then(Json::as_str).expect("score_bits");
            (
                v.get("query").and_then(Json::as_u64).expect("query") as usize,
                v.get("source").and_then(Json::as_u64).expect("source") as u32,
                v.get("entity_id").and_then(Json::as_u64).expect("entity_id"),
                u32::from_str_radix(bits_hex, 16).expect("hex bits"),
            )
        })
        .collect()
}

#[test]
fn served_links_are_bit_identical_and_drift_reaches_the_ledger() {
    let _guard = serialized();
    let ledger =
        std::env::temp_dir().join(format!("adamel-serve-e2e-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&ledger);
    adamel_obs::runlog::set_forced_path(ledger.to_str());

    let drift = DriftConfig {
        seen_sources: [0u32, 1].into_iter().collect(),
        dominance_window: 4,
        ..Default::default()
    };
    let engine = Arc::new(Engine::new(
        Linker::new(trained_model(), LinkerConfig::default()),
        EngineConfig { drift: Some(drift), compute_threads: 0 },
    ));
    let server = Server::start(engine, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();

    // Upsert the corpus.
    let (status, body) = request(addr, "POST", "/records", &jsonl(&corpus()));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"inserted\": 4"), "{body}");

    // Served scores must equal the offline pipeline bit for bit.
    let queries = vec![rec(9, 1, "alpha beta"), rec(9, 2, "gamma delta")];
    let (status, body) = request(addr, "POST", "/link", &jsonl(&queries));
    assert_eq!(status, 200, "{body}");
    let served = parse_matches(&body);
    assert!(!served.is_empty(), "no matches in {body}");

    let offline = Linker::new(trained_model(), LinkerConfig::default());
    let right = corpus();
    let reference = offline.link(&queries, &right);
    assert_eq!(served.len(), reference.len());
    for ((query, source, entity_id, bits), m) in served.iter().zip(reference.iter()) {
        let expect = &right[m.right];
        assert_eq!(*query, m.left);
        assert_eq!((SourceId(*source), *entity_id), (expect.source, expect.entity_id));
        assert_eq!(*bits, m.score.to_bits(), "served score differs bitwise from offline");
    }

    // Health before drift: serving, version 1, no re-adaptation signal.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let h = Json::parse(&health).expect("health json");
    assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(h.get("model_version").and_then(Json::as_u64), Some(1));
    assert_eq!(h.get("records").and_then(Json::as_u64), Some(4));
    assert_eq!(h.get("readapt_recommended").and_then(Json::as_bool), Some(false));

    // Traffic from an unseen source with a new attribute (C2) and
    // out-of-vocabulary tokens (C3) — it still shares the "alpha" blocking
    // token, so pairs exist for the monitor to assess.
    for i in 0..6u64 {
        let mut q = rec(77, i, "alpha zzz9 qqq7");
        q.set("weird_attr", "noise");
        let (status, _) = request(addr, "POST", "/link", &jsonl(&[q]));
        assert_eq!(status, 200);
    }

    let (_, health) = request(addr, "GET", "/healthz", "");
    let h = Json::parse(&health).expect("health json");
    assert_eq!(
        h.get("readapt_recommended").and_then(Json::as_bool),
        Some(true),
        "unseen-source dominance should latch: {health}"
    );

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = Json::parse(&metrics).expect("metrics json");
    assert_eq!(m.get("schema").and_then(Json::as_str), Some("adamel-serve-metrics/v1"));
    let counters = m.get("counters").expect("counters");
    assert!(counters.get("link_batches").and_then(Json::as_u64) >= Some(7));
    let drift_status = m.get("drift").expect("drift section");
    assert_eq!(drift_status.get("readapt_recommended").and_then(Json::as_bool), Some(true));

    server.shutdown().expect("clean shutdown");
    adamel_obs::runlog::flush();

    let text = std::fs::read_to_string(&ledger).expect("ledger written");
    let events: Vec<String> = text
        .lines()
        .filter_map(|l| Json::parse(l).ok())
        .filter_map(|v| v.get("event").and_then(Json::as_str).map(str::to_owned))
        .collect();
    for expected in ["link", "drift", "warn", "readapt"] {
        assert!(events.iter().any(|e| e == expected), "no `{expected}` event in {events:?}");
    }

    adamel_obs::runlog::set_forced_path(None);
    let _ = std::fs::remove_file(&ledger);
}

#[test]
fn trace_id_joins_link_response_runlog_and_metrics_at_full() {
    let _guard = serialized();
    let ledger =
        std::env::temp_dir().join(format!("adamel-serve-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&ledger);
    adamel_obs::runlog::set_forced_path(ledger.to_str());
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Full));
    adamel_obs::report::reset();

    let engine = Arc::new(Engine::new(
        Linker::new(trained_model(), LinkerConfig::default()),
        EngineConfig::default(),
    ));
    let server = Server::start(engine, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();
    let (status, _) = request(addr, "POST", "/records", &jsonl(&corpus()));
    assert_eq!(status, 200);

    // The /link response summary carries the request's trace id …
    let queries = vec![rec(9, 1, "alpha beta")];
    let (status, body) = request(addr, "POST", "/link", &jsonl(&queries));
    assert_eq!(status, 200, "{body}");
    let summary = body.lines().find(|l| l.contains("\"summary\"")).expect("summary line");
    let trace_id = Json::parse(summary)
        .expect("summary json")
        .get("summary")
        .and_then(|s| s.get("trace_id"))
        .and_then(Json::as_u64)
        .expect("trace_id in summary");

    // … the same id tags a `req.{id}` op span nested under the endpoint
    // span in /metrics, whose `endpoints` section also times the route …
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let m = Json::parse(&metrics).expect("metrics json");
    let spans = m.get("obs").and_then(|o| o.get("spans")).and_then(Json::as_object).expect("spans");
    let wanted = format!("serve.link/req.{trace_id}");
    assert!(
        spans.keys().any(|k| k == &wanted),
        "no span path {wanted:?} among {:?}",
        spans.keys().collect::<Vec<_>>()
    );
    let endpoints = m.get("endpoints").and_then(Json::as_object).expect("endpoints");
    let link_count =
        endpoints.get("serve.link").and_then(|e| e.get("count")).and_then(Json::as_u64);
    assert_eq!(link_count, Some(1), "endpoints section times the /link route");

    // … and with tracing on, mem gauges are live in the embedded report.
    let gauges = m
        .get("obs")
        .and_then(|o| o.get("mem"))
        .and_then(|mem| mem.get("gauges"))
        .and_then(Json::as_object)
        .expect("mem gauges");
    assert!(
        gauges.contains_key("schema.live_index.snapshot.bytes"),
        "snapshot gauge missing from {:?}",
        gauges.keys().collect::<Vec<_>>()
    );

    server.shutdown().expect("clean shutdown");
    adamel_obs::runlog::flush();

    // … and the runlog `link` event emitted inside that request carries
    // the same id, so one request joins across all three surfaces.
    let text = std::fs::read_to_string(&ledger).expect("ledger written");
    let mut found = false;
    for line in text.lines() {
        let Ok(v) = Json::parse(line) else { continue };
        if v.get("event").and_then(Json::as_str) == Some("link") {
            assert_eq!(
                v.get("trace_id").and_then(Json::as_u64),
                Some(trace_id),
                "link event not tagged with the request's trace id: {line}"
            );
            found = true;
        }
    }
    assert!(found, "no link event in the ledger: {text}");

    adamel_obs::set_forced(None);
    adamel_obs::report::reset();
    adamel_obs::runlog::set_forced_path(None);
    let _ = std::fs::remove_file(&ledger);
}

#[test]
fn hot_swap_is_atomic_under_concurrent_traffic() {
    let _guard = serialized();
    adamel_obs::runlog::set_forced_path(Some("")); // forced off

    let engine = Arc::new(Engine::new(
        Linker::new(trained_model(), LinkerConfig::default()),
        EngineConfig::default(),
    ));
    let server = Server::start(engine, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();
    let (status, _) = request(addr, "POST", "/records", &jsonl(&corpus()));
    assert_eq!(status, 200);

    // Model B: same schema, different training data, different parameters.
    let model_b = trained_model_on(&["alpha gamma", "beta delta", "gamma zeta", "delta theta"]);
    let mut snapshot = Vec::new();
    adamel::save_model(&model_b, &mut snapshot).expect("serialize model");
    let snapshot = String::from_utf8(snapshot).expect("text format");

    let queries = vec![rec(9, 1, "alpha beta"), rec(9, 2, "gamma delta")];
    let query_body = jsonl(&queries);

    // One swap races seven link batches; every request must succeed — no
    // torn model, no error, no deadlock.
    let statuses = parallel::with_threads(4, || {
        parallel::parallel_map_collect(8, 1 << 23, |i| {
            if i == 3 {
                request(addr, "POST", "/model", &snapshot).0
            } else {
                request(addr, "POST", "/link", &query_body).0
            }
        })
    });
    assert_eq!(statuses, vec![200; 8], "all concurrent requests succeed");

    let (_, health) = request(addr, "GET", "/healthz", "");
    let h = Json::parse(&health).expect("health json");
    assert_eq!(h.get("model_version").and_then(Json::as_u64), Some(2), "{health}");

    // After the swap, served scores equal offline model B bit for bit.
    let (status, body) = request(addr, "POST", "/link", &query_body);
    assert_eq!(status, 200);
    let served = parse_matches(&body);
    let offline = Linker::new(model_b, LinkerConfig::default());
    let right = corpus();
    let reference = offline.link(&queries, &right);
    assert_eq!(served.len(), reference.len());
    for ((_, _, _, bits), m) in served.iter().zip(reference.iter()) {
        assert_eq!(*bits, m.score.to_bits(), "post-swap score differs from offline model B");
    }

    // A schema-mismatched snapshot is refused without touching the version.
    let other = AdamelModel::new(AdamelConfig::tiny(), Schema::new(vec!["title".into()]));
    let mut bad = Vec::new();
    adamel::save_model(&other, &mut bad).expect("serialize");
    let (status, _) = request(addr, "POST", "/model", &String::from_utf8(bad).expect("text"));
    assert_eq!(status, 409);
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert!(health.contains("\"model_version\": 2"), "{health}");

    server.shutdown().expect("clean shutdown");
    adamel_obs::runlog::set_forced_path(None);
}

#[test]
fn full_queue_rejects_with_429_and_never_deadlocks() {
    let _guard = serialized();
    adamel_obs::runlog::set_forced_path(Some("")); // forced off

    let engine = Arc::new(Engine::new(
        Linker::new(trained_model(), LinkerConfig::default()),
        EngineConfig::default(),
    ));
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, cfg).expect("bind ephemeral port");
    let addr = server.addr();

    // Three idle connections against one worker and a one-slot queue: by
    // pigeonhole at least one cannot be buffered and gets 429 on the spot.
    let mut conns: Vec<TcpStream> = (0..3)
        .map(|_| {
            let c = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(150));
            c
        })
        .collect();

    let mut rejected = 0;
    let mut live = Vec::new();
    for mut c in conns.drain(..) {
        c.set_read_timeout(Some(Duration::from_secs(2))).expect("set timeout");
        let mut buf = [0u8; 512];
        match c.read(&mut buf) {
            Ok(n) if n > 0 => {
                let text = String::from_utf8_lossy(&buf[..n]).to_string();
                assert!(text.starts_with("HTTP/1.1 429"), "unexpected early response: {text}");
                rejected += 1;
            }
            _ => live.push(c), // no data: held by the worker or queued
        }
    }
    assert!(rejected >= 1, "a full queue must reject at least one connection");

    // The surviving connections are served normally once asked — the
    // rejection path left no thread stuck.
    for mut c in live {
        write!(c, "GET /healthz HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n")
            .expect("send healthz");
        c.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
        let mut raw = String::new();
        c.read_to_string(&mut raw).expect("read healthz response");
        assert!(raw.starts_with("HTTP/1.1 200"), "unexpected response: {raw}");
    }

    // Fresh requests still work.
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    server.shutdown().expect("clean shutdown");
    adamel_obs::runlog::set_forced_path(None);
}
