//! A deliberately minimal HTTP/1.1 layer: request line + headers +
//! `Content-Length` body in, status line + JSON body out.
//!
//! The daemon speaks exactly the subset curl and load balancers need —
//! one request per connection (`Connection: close`), no chunked encoding,
//! no keep-alive, no TLS. Anything outside the subset is answered with a
//! `400` by the caller; the parser itself never panics (every error is a
//! [`HttpError`] value).

use std::io::{BufRead, Write};

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-read (includes read timeouts).
    Io(std::io::Error),
    /// The bytes on the wire are not the supported HTTP subset.
    BadRequest(String),
    /// The declared `Content-Length` exceeds the configured cap.
    TooLarge {
        /// Declared body size in bytes.
        declared: usize,
        /// Configured maximum body size in bytes.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path without query string (`/link`).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Reads one request from `stream`, capping the body at `max_body` bytes.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut line = String::new();
    stream.read_line(&mut line).map_err(HttpError::Io)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m.to_uppercase(), t),
        _ => return Err(HttpError::BadRequest(format!("malformed request line {line:?}"))),
    };
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    loop {
        let mut header = String::new();
        stream.read_line(&mut header).map_err(HttpError::Io)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
            }
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge { declared: content_length, limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request { method, path, body })
}

/// Writes a response with the given status and JSON(L) body, then flushes.
/// The connection is advertised as closing — the daemon is strictly
/// one-request-per-connection.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Serializes `{"error": msg}` for an error response body.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", adamel_obs::json::escape(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /link HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/link");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body_and_strips_query() {
        let req = parse("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n").expect("valid request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::TooLarge { declared: 9999, limit: 1024 })
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_has_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "Too Many Requests", "{\"error\": \"queue full\"}\n")
            .expect("write to Vec");
        let text = String::from_utf8(out).expect("ascii response");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 24\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"error\": \"queue full\"}\n"));
    }
}
