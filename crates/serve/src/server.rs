//! The network front: accept loop, bounded worker pool, routing.
//!
//! One accept thread pushes connections onto a [`BoundedQueue`]; `workers`
//! threads pop and handle one request per connection. A full queue is
//! answered `429 Too Many Requests` on the accept thread immediately —
//! load the daemon cannot absorb is visible to the caller, never silently
//! buffered. All threads come from
//! [`adamel_tensor::parallel::spawn_service`].

use crate::api::{self, DeleteLine, RecordLine};
use crate::engine::Engine;
use crate::http::{self, HttpError, Request};
use crate::queue::{BoundedQueue, PushError};
use adamel_schema::SourceId;
use adamel_tensor::parallel::{self, ServiceHandle};
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server construction options (see OPERATIONS.md for the env-var table).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Connections the queue buffers before the accept thread answers
    /// `429`.
    pub queue_capacity: usize,
    /// Maximum request-body size in bytes (larger bodies get `413`).
    pub max_body_bytes: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            queue_capacity: 64,
            max_body_bytes: 64 << 20,
            read_timeout: Duration::from_secs(30),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `ADAMEL_SERVE_ADDR`, `ADAMEL_SERVE_WORKERS`,
    /// `ADAMEL_SERVE_QUEUE`, and `ADAMEL_SERVE_MAX_BODY` (bytes).
    /// Unparsable values fall back silently to the defaults (a daemon
    /// should boot, not die on a typo).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(addr) = std::env::var("ADAMEL_SERVE_ADDR") {
            if !addr.trim().is_empty() {
                cfg.addr = addr.trim().to_string();
            }
        }
        if let Some(n) = env_usize("ADAMEL_SERVE_WORKERS") {
            cfg.workers = n;
        }
        if let Some(n) = env_usize("ADAMEL_SERVE_QUEUE") {
            cfg.queue_capacity = n;
        }
        if let Some(n) = env_usize("ADAMEL_SERVE_MAX_BODY") {
            cfg.max_body_bytes = n;
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok().filter(|n: &usize| *n > 0)
}

/// A running daemon: accept thread + worker pool around an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    queue: Arc<BoundedQueue<TcpStream>>,
    stop: Arc<AtomicBool>,
    threads: Vec<ServiceHandle>,
}

impl Server {
    /// Binds `cfg.addr` and starts the accept thread and `cfg.workers`
    /// workers. Returns once the socket is listening — callers can connect
    /// immediately.
    pub fn start(engine: Arc<Engine>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        for i in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let (max_body, timeout) = (cfg.max_body_bytes, cfg.read_timeout);
            threads.push(parallel::spawn_service(
                &format!("adamel-serve-worker-{i}"),
                move || {
                    while let Some(stream) = queue.pop() {
                        handle_connection(&engine, &queue, stream, max_body, timeout);
                    }
                },
            )?);
        }

        {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            threads.push(parallel::spawn_service("adamel-serve-accept", move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if let Err(PushError::Full(mut rejected) | PushError::Closed(mut rejected)) =
                        queue.try_push(stream)
                    {
                        engine.note_rejected();
                        let _ = http::write_response(
                            &mut rejected,
                            429,
                            "Too Many Requests",
                            &http::error_body("queue full"),
                        );
                    }
                }
            })?);
        }

        Ok(Server { addr, engine, queue, stop, threads })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    pub fn shutdown(mut self) -> Result<(), String> {
        self.stop.store(true, Ordering::Relaxed);
        // The accept thread blocks in `incoming()`; a self-connection makes
        // it observe the stop flag. The connection itself lands on the
        // (now closed) queue or is dropped — either is fine.
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
        let mut errors = Vec::new();
        for h in self.threads.drain(..) {
            if let Err(e) = h.join() {
                errors.push(e);
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.join("; "))
        }
    }
}

fn handle_connection(
    engine: &Engine,
    queue: &BoundedQueue<TcpStream>,
    mut stream: TcpStream,
    max_body: usize,
    timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(timeout));
    let request = {
        let Ok(reader) = stream.try_clone() else { return };
        read_limited(reader, max_body)
    };
    let (status, reason, body) = match request {
        Ok(req) => {
            engine.note_request();
            // Request-scoped tracing: a deterministic id (arrival-order
            // counter, never a clock) joins this request's endpoint span,
            // its `req.{id}` op span (Full level), its runlog events, and
            // — for `/link` — the response summary.
            let trace_id = engine.next_trace_id();
            let _endpoint = adamel_obs::span(endpoint_label(&req.method, &req.path));
            let _request = adamel_obs::op_span(&format!("req.{trace_id}"));
            let _trace = adamel_obs::runlog::trace_scope(trace_id);
            route(engine, queue, &req, trace_id)
        }
        Err(HttpError::TooLarge { declared, limit }) => (
            413,
            "Payload Too Large",
            http::error_body(&format!("body of {declared} bytes exceeds the {limit}-byte limit")),
        ),
        Err(HttpError::BadRequest(msg)) => (400, "Bad Request", http::error_body(&msg)),
        Err(HttpError::Io(_)) => return, // client went away; nothing to answer
    };
    let _ = http::write_response(&mut stream, status, reason, &body);
}

fn read_limited(stream: impl Read, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    http::read_request(&mut reader, max_body)
}

/// The span name a request is timed under in the `/metrics` `endpoints`
/// section. One label per route so the histograms stay low-cardinality.
fn endpoint_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("GET", "/healthz") => "serve.healthz",
        ("GET", "/metrics") => "serve.metrics",
        ("POST", "/records") => "serve.records.upsert",
        ("DELETE", "/records") => "serve.records.delete",
        ("POST", "/link") => "serve.link",
        ("POST", "/model") => "serve.model",
        _ => "serve.other",
    }
}

fn route(
    engine: &Engine,
    queue: &BoundedQueue<TcpStream>,
    req: &Request,
    trace_id: u64,
) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", engine.health().to_json()),
        ("GET", "/metrics") => (200, "OK", engine.metrics_json(queue.len(), queue.capacity())),
        ("POST", "/records") => match api::parse_body(&req.body, RecordLine::from_json) {
            Ok(lines) => {
                let records = lines.into_iter().map(RecordLine::into_record).collect();
                let (inserted, replaced) = engine.upsert(records);
                (200, "OK", format!("{{\"inserted\": {inserted}, \"replaced\": {replaced}}}\n"))
            }
            Err(msg) => (400, "Bad Request", http::error_body(&msg)),
        },
        ("DELETE", "/records") => match api::parse_body(&req.body, DeleteLine::from_json) {
            Ok(lines) => {
                let keys: Vec<_> =
                    lines.iter().map(|d| (SourceId(d.source), d.entity_id)).collect();
                let removed = engine.delete(&keys);
                (200, "OK", format!("{{\"removed\": {removed}}}\n"))
            }
            Err(msg) => (400, "Bad Request", http::error_body(&msg)),
        },
        ("POST", "/link") => match api::parse_body(&req.body, RecordLine::from_json) {
            Ok(lines) => {
                let queries: Vec<_> = lines.into_iter().map(RecordLine::into_record).collect();
                let outcome = engine.link(&queries);
                let mut body = String::new();
                for m in &outcome.matches {
                    body.push_str(&m.to_json());
                    body.push('\n');
                }
                body.push_str(&format!(
                    "{{\"summary\": {{\"queries\": {}, \"candidates\": {}, \"matches\": {}, \"corpus_records\": {}, \"trace_id\": {trace_id}}}}}\n",
                    queries.len(),
                    outcome.candidates,
                    outcome.matches.len(),
                    outcome.corpus_records,
                ));
                (200, "OK", body)
            }
            Err(msg) => (400, "Bad Request", http::error_body(&msg)),
        },
        ("POST", "/model") => {
            let mut reader = std::io::BufReader::new(req.body.as_slice());
            match adamel::load_model(&mut reader) {
                Ok(model) => match engine.swap_model(model) {
                    Ok(version) => (200, "OK", format!("{{\"model_version\": {version}}}\n")),
                    Err(msg) => (409, "Conflict", http::error_body(&msg)),
                },
                Err(e) => (400, "Bad Request", http::error_body(&format!("bad snapshot: {e}"))),
            }
        }
        ("GET" | "POST" | "DELETE", "/healthz" | "/metrics" | "/records" | "/link" | "/model") => {
            (405, "Method Not Allowed", http::error_body("method not allowed for this path"))
        }
        _ => (404, "Not Found", http::error_body("unknown path")),
    }
}
