//! Wire types for the JSONL request/response bodies.
//!
//! Every endpoint speaks newline-delimited JSON: one object per line, so
//! bodies stream naturally and a client can pipe `jq` over responses. The
//! types here are the documented contract — see OPERATIONS.md for the
//! per-endpoint reference with full request/response examples.
//!
//! Scores are emitted twice per match line: `score` uses the shortest
//! round-trip decimal representation (it parses back to the same `f32`),
//! and `score_bits` carries the raw IEEE-754 bit pattern in hex for
//! clients that verify bit-identity against an offline run.

use adamel_obs::json::{self, Json};
use adamel_schema::{Record, SourceId};
use std::collections::BTreeMap;

/// One record to upsert, as one line of a `POST /records` body.
///
/// # Examples
///
/// ```
/// use adamel_serve::RecordLine;
///
/// let line = RecordLine::from_json(
///     r#"{"source": 7, "entity_id": 42, "values": {"name": "acme corp", "city": "berlin"}}"#,
/// ).expect("valid record line");
/// assert_eq!(line.source, 7);
/// assert_eq!(line.entity_id, 42);
/// assert_eq!(line.values["name"], "acme corp");
///
/// // Serialization round-trips.
/// let again = RecordLine::from_json(&line.to_json()).expect("round-trip");
/// assert_eq!(again.values, line.values);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordLine {
    /// Data-source identifier (the paper's `r*`).
    pub source: u32,
    /// Caller-assigned record identifier, unique within the source.
    pub entity_id: u64,
    /// Attribute name → raw textual value.
    pub values: BTreeMap<String, String>,
}

impl RecordLine {
    /// Parses one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = Json::parse(line)?;
        let source = field_u64(&v, "source")? as u32;
        let entity_id = field_u64(&v, "entity_id")?;
        let mut values = BTreeMap::new();
        if let Some(obj) = v.get("values") {
            let map = obj.as_object().ok_or_else(|| "`values` must be an object".to_string())?;
            for (k, val) in map {
                let s = val
                    .as_str()
                    .ok_or_else(|| format!("attribute `{k}` must be a string value"))?;
                values.insert(k.clone(), s.to_string());
            }
        }
        Ok(Self { source, entity_id, values })
    }

    /// Serializes back to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"source\": {}, \"entity_id\": {}, \"values\": {{",
            self.source, self.entity_id
        );
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json::escape(k), json::escape(v)));
        }
        out.push_str("}}");
        out
    }

    /// Converts into a schema [`Record`]. Empty values are dropped by
    /// [`Record::set`], matching the offline loaders' treatment of C1
    /// missing attributes.
    pub fn into_record(self) -> Record {
        let mut rec = Record::new(SourceId(self.source), self.entity_id);
        for (k, v) in self.values {
            rec.set(k, v);
        }
        rec
    }
}

/// One record to remove, as one line of a `DELETE /records` body.
///
/// # Examples
///
/// ```
/// use adamel_serve::DeleteLine;
///
/// let line = DeleteLine::from_json(r#"{"source": 7, "entity_id": 42}"#).expect("valid");
/// assert_eq!((line.source, line.entity_id), (7, 42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteLine {
    /// Data-source identifier of the record to delete.
    pub source: u32,
    /// Record identifier within the source.
    pub entity_id: u64,
}

impl DeleteLine {
    /// Parses one JSONL line.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = Json::parse(line)?;
        Ok(Self { source: field_u64(&v, "source")? as u32, entity_id: field_u64(&v, "entity_id")? })
    }
}

/// One match, as one line of a `POST /link` response.
///
/// # Examples
///
/// ```
/// use adamel_serve::LinkMatch;
///
/// let m = LinkMatch { query: 0, source: 3, entity_id: 17, score: 0.8125 };
/// let line = m.to_json();
/// assert!(line.contains("\"score\": 0.8125"));
/// // The bit pattern lets clients assert exact equality with offline runs.
/// assert!(line.contains(&format!("\"score_bits\": \"{:08x}\"", 0.8125f32.to_bits())));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMatch {
    /// Zero-based index of the query record within the request body.
    pub query: usize,
    /// Source of the matched corpus record.
    pub source: u32,
    /// Entity id of the matched corpus record.
    pub entity_id: u64,
    /// Match probability from the model (above the configured threshold).
    pub score: f32,
}

impl LinkMatch {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\": {}, \"source\": {}, \"entity_id\": {}, \"score\": {}, \"score_bits\": \"{:08x}\"}}",
            self.query,
            self.source,
            self.entity_id,
            json::fmt_f64(f64::from(self.score)),
            self.score.to_bits()
        )
    }
}

/// The `GET /healthz` response body.
///
/// # Examples
///
/// ```
/// use adamel_serve::HealthResponse;
///
/// let h = HealthResponse {
///     status: "ok".to_string(),
///     model_version: 2,
///     records: 1280,
///     readapt_recommended: false,
/// };
/// assert!(h.to_json().contains("\"model_version\": 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthResponse {
    /// Always `"ok"` while the daemon is serving.
    pub status: String,
    /// Monotone counter bumped by every successful `POST /model` swap.
    pub model_version: u64,
    /// Records currently in the incremental blocking index.
    pub records: usize,
    /// True once unseen-source traffic dominates the recent link window —
    /// the AdaMEL-zero re-adaptation signal (DESIGN.md §16).
    pub readapt_recommended: bool,
}

impl HealthResponse {
    /// Serializes to one JSON line (with trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"status\": \"{}\", \"model_version\": {}, \"records\": {}, \"readapt_recommended\": {}}}\n",
            json::escape(&self.status),
            self.model_version,
            self.records,
            self.readapt_recommended
        )
    }
}

/// Parses a JSONL body into one parsed value per non-empty line, reporting
/// the 1-based line number on failure.
pub fn parse_body<T>(
    body: &[u8],
    parse_line: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_round_trips_and_builds_record() {
        let line = RecordLine::from_json(
            "{\"source\": 1, \"entity_id\": 9, \"values\": {\"name\": \"caf\\u00e9 \\\"x\\\"\"}}",
        )
        .expect("parse");
        assert_eq!(line.values["name"], "café \"x\"");
        let round = RecordLine::from_json(&line.to_json()).expect("round-trip");
        assert_eq!(round, line);
        let rec = line.into_record();
        assert_eq!(rec.source, SourceId(1));
        assert_eq!(rec.get("name"), Some("café \"x\""));
    }

    #[test]
    fn record_line_rejects_bad_shapes() {
        assert!(RecordLine::from_json("{\"entity_id\": 1}").is_err());
        assert!(RecordLine::from_json("{\"source\": 1, \"entity_id\": 1, \"values\": 3}").is_err());
        assert!(RecordLine::from_json("{\"source\": 1, \"entity_id\": 1, \"values\": {\"k\": 5}}")
            .is_err());
        assert!(RecordLine::from_json("not json").is_err());
    }

    #[test]
    fn link_match_score_survives_json_round_trip() {
        // A score with no short decimal representation still round-trips
        // because fmt_f64 prints the shortest string that parses back.
        let score = f32::from_bits(0x3f2a_bcde);
        let m = LinkMatch { query: 3, source: 2, entity_id: 5, score };
        let v = Json::parse(&m.to_json()).expect("valid json");
        let parsed = v.get("score").and_then(Json::as_f64).expect("score field") as f32;
        assert_eq!(parsed.to_bits(), score.to_bits());
        assert_eq!(
            v.get("score_bits").and_then(Json::as_str),
            Some(format!("{:08x}", score.to_bits()).as_str())
        );
    }

    #[test]
    fn parse_body_reports_line_numbers_and_skips_blanks() {
        let body = b"{\"source\": 1, \"entity_id\": 1}\n\n{\"source\": 2, \"entity_id\": 2}\n";
        let lines = parse_body(body, DeleteLine::from_json).expect("all valid");
        assert_eq!(lines.len(), 2);
        let err = parse_body(b"{\"source\": 1, \"entity_id\": 1}\nbogus\n", DeleteLine::from_json)
            .expect_err("second line invalid");
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
