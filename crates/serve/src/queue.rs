//! A bounded MPMC queue with explicit rejection — the backpressure
//! primitive between the accept thread and the worker pool.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails fast with
//! [`PushError::Full`] so the caller can answer `429` instead of letting
//! an unbounded backlog absorb load invisibly. Consumers block in
//! [`BoundedQueue::pop`] until an item or shutdown arrives.

use adamel_obs::mem::MemScope;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused; the rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// [`BoundedQueue::close`] was called; no more items are accepted.
    Closed(T),
}

struct State<T> {
    /// Each queued item carries its `serve.queue.bytes` ledger credit;
    /// dropping the scope (on pop or queue teardown) releases it.
    items: VecDeque<(T, MemScope)>,
    closed: bool,
}

/// A fixed-capacity multi-producer/multi-consumer queue.
///
/// # Examples
///
/// ```
/// use adamel_serve::queue::{BoundedQueue, PushError};
///
/// let q = BoundedQueue::new(1);
/// assert!(q.try_push(1u32).is_ok());
/// // At capacity: the producer gets the item back instead of blocking.
/// assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
/// assert_eq!(q.pop(), Some(1));
/// q.close();
/// assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
/// assert_eq!(q.pop(), None); // closed and drained
/// ```
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no items are queued (racy by nature; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or returns it inside a [`PushError`] when the
    /// queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        let scope = MemScope::new("serve.queue.bytes", std::mem::size_of::<T>() as u64);
        st.items.push_back((item, scope));
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some((item, _scope)) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = match self.ready.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain the remaining items and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_tensor::parallel;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(3);
        for i in 0..3 {
            q.try_push(i).map_err(|_| "push").expect("capacity not reached");
        }
        assert!(matches!(q.try_push(9), Err(PushError::Full(9))));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.try_push(9).map_err(|_| "push").expect("slot freed");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(9));
    }

    #[test]
    fn zero_capacity_is_floored_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let q2 = Arc::clone(&q);
        let h = parallel::spawn_service("queue-test-consumer", move || {
            // Blocks until close, then observes the drained-and-closed state.
            while q2.pop().is_some() {}
        })
        .expect("spawn");
        q.try_push(7).map_err(|_| "push").expect("open queue accepts");
        q.close();
        h.join().expect("consumer exits after close");
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
    }
}
