//! The `adamel-serve` daemon entry point.
//!
//! ```text
//! adamel-serve --model <path> [--seen-sources 1,2,3]   # serve a snapshot
//! adamel-serve --selftest [--metrics-out <path>]       # self-contained smoke test
//! ```
//!
//! Daemon mode loads an `adamel-model v1` snapshot (see `adamel::io`),
//! binds `ADAMEL_SERVE_ADDR` (default `127.0.0.1:0`), and serves until
//! killed. `--seen-sources` lists the training sources so the
//! unseen-source-dominance hook can recommend AdaMEL-zero re-adaptation;
//! without it the hook stays quiet. See OPERATIONS.md for the full runbook.
//!
//! Selftest mode trains a tiny model in-process, boots on an ephemeral
//! port, exercises every endpoint over real sockets, optionally writes the
//! final `/metrics` document to `--metrics-out`, and exits non-zero on any
//! failure — CI runs it and uploads the metrics artifact.

use adamel::config::{AdamelConfig, Variant};
use adamel::train::fit;
use adamel::{AdamelModel, Linker, LinkerConfig};
use adamel_schema::{Domain, EntityPair, Record, Schema, SourceId};
use adamel_serve::{DriftConfig, Engine, EngineConfig, Server, ServerConfig};
use std::collections::BTreeSet;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("adamel-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut model_path = None;
    let mut seen_sources = BTreeSet::new();
    let mut selftest = false;
    let mut metrics_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                model_path = Some(take_value(args, &mut i, "--model")?);
            }
            "--seen-sources" => {
                let list = take_value(args, &mut i, "--seen-sources")?;
                for part in list.split(',').filter(|p| !p.trim().is_empty()) {
                    let id: u32 = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("--seen-sources: bad source id {part:?}"))?;
                    seen_sources.insert(id);
                }
            }
            "--selftest" => selftest = true,
            "--metrics-out" => {
                metrics_out = Some(take_value(args, &mut i, "--metrics-out")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: adamel-serve --model <path> [--seen-sources 1,2,3]\n       adamel-serve --selftest [--metrics-out <path>]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
        i += 1;
    }

    if selftest {
        return run_selftest(metrics_out.as_deref());
    }
    let path = model_path.ok_or("either --model <path> or --selftest is required")?;
    run_daemon(&path, seen_sources)
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag} requires a value"))
}

fn run_daemon(model_path: &str, seen_sources: BTreeSet<u32>) -> Result<(), String> {
    let file = std::fs::File::open(model_path)
        .map_err(|e| format!("cannot open model snapshot {model_path:?}: {e}"))?;
    let model = adamel::load_model(&mut BufReader::new(file))
        .map_err(|e| format!("cannot load model snapshot {model_path:?}: {e}"))?;

    // Without a seen-source list every query counts as unseen and the
    // re-adaptation flag would latch on the first full window; a threshold
    // above 1.0 keeps the hook quiet instead.
    let dominance_threshold = if seen_sources.is_empty() { 1.5 } else { 0.5 };
    let drift = DriftConfig { seen_sources, dominance_threshold, ..Default::default() };
    let engine = Arc::new(Engine::new(
        Linker::new(model, LinkerConfig::default()),
        EngineConfig { drift: Some(drift), compute_threads: 0 },
    ));
    let server =
        Server::start(engine, ServerConfig::from_env()).map_err(|e| format!("cannot bind: {e}"))?;
    println!("adamel-serve listening on http://{}", server.addr());
    println!("endpoints: POST /records, DELETE /records, POST /link, POST /model, GET /healthz, GET /metrics");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// Selftest: the CI smoke path.

fn rec(source: u32, id: u64, name: &str) -> Record {
    let mut r = Record::new(SourceId(source), id);
    r.set("name", name);
    r
}

fn trained_model() -> AdamelModel {
    let schema = Schema::new(vec!["name".into()]);
    let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
    let names = ["alpha beta", "gamma delta", "epsilon zeta", "eta theta"];
    let mut train = Vec::new();
    for (i, n) in names.iter().enumerate() {
        let id = i as u64;
        train.push(EntityPair::labeled(rec(0, id, n), rec(1, id, n), true));
        let other = names[(i + 1) % names.len()];
        train.push(EntityPair::labeled(rec(0, id, n), rec(1, id + 50, other), false));
    }
    fit(&mut model, Variant::Base, &Domain::new(train), None, None);
    model
}

/// One HTTP exchange over a fresh connection; returns `(status, body)`.
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| format!("timeout: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: selftest\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("recv: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let payload = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, payload))
}

fn expect_200(step: &str, got: Result<(u16, String), String>) -> Result<String, String> {
    match got {
        Ok((200, body)) => Ok(body),
        Ok((status, body)) => Err(format!("{step}: HTTP {status}: {}", body.trim())),
        Err(e) => Err(format!("{step}: {e}")),
    }
}

/// Schema/shape check on the final `/metrics` document. A malformed or
/// structurally empty document fails the selftest (and with it serve CI)
/// even though the HTTP exchange itself succeeded.
fn validate_metrics(doc: &str) -> Result<(), String> {
    let v =
        adamel_obs::json::Json::parse(doc).map_err(|e| format!("metrics: not valid JSON: {e}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("adamel-serve-metrics/v1") {
        return Err(format!("metrics: wrong or missing schema in {doc:?}"));
    }
    let counters =
        v.get("counters").and_then(|c| c.as_object()).ok_or("metrics: missing counters object")?;
    if counters.is_empty() {
        return Err("metrics: counters object is empty".to_string());
    }
    for key in ["requests_total", "link_batches", "upserts"] {
        let n = counters
            .get(key)
            .and_then(|n| n.as_u64())
            .ok_or_else(|| format!("metrics: counter {key:?} missing or not a number"))?;
        if n == 0 {
            return Err(format!("metrics: counter {key:?} is zero after selftest traffic"));
        }
    }
    let queue = v.get("queue").ok_or("metrics: missing queue object")?;
    if queue.get("capacity").and_then(|n| n.as_u64()).is_none_or(|c| c == 0) {
        return Err("metrics: queue capacity missing or zero".to_string());
    }
    if v.get("endpoints").and_then(|e| e.as_object()).is_none() {
        return Err("metrics: missing endpoints object".to_string());
    }
    let obs = v.get("obs").ok_or("metrics: missing embedded obs report")?;
    let mem = obs.get("mem").ok_or("metrics: obs report has no mem section")?;
    if mem.get("schema").and_then(|s| s.as_str()) != Some("adamel-mem/v1") {
        return Err("metrics: mem section has wrong or missing schema".to_string());
    }
    if mem.get("gauges").and_then(|g| g.as_object()).is_none() {
        return Err("metrics: mem section has no gauges object".to_string());
    }
    Ok(())
}

fn run_selftest(metrics_out: Option<&str>) -> Result<(), String> {
    let drift = DriftConfig {
        seen_sources: [0u32, 1].into_iter().collect(),
        dominance_window: 4,
        ..Default::default()
    };
    let engine = Arc::new(Engine::new(
        Linker::new(trained_model(), LinkerConfig::default()),
        EngineConfig { drift: Some(drift), compute_threads: 0 },
    ));
    let server = Server::start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    println!("selftest: serving on {addr}");

    let corpus = "\
{\"source\": 1, \"entity_id\": 10, \"values\": {\"name\": \"alpha beta\"}}\n\
{\"source\": 1, \"entity_id\": 11, \"values\": {\"name\": \"gamma delta\"}}\n\
{\"source\": 1, \"entity_id\": 12, \"values\": {\"name\": \"epsilon zeta\"}}\n";
    let body = expect_200("upsert", request(addr, "POST", "/records", corpus))?;
    if !body.contains("\"inserted\": 3") {
        return Err(format!("upsert: unexpected body {body:?}"));
    }

    let queries = "{\"source\": 9, \"entity_id\": 1, \"values\": {\"name\": \"alpha beta\"}}\n";
    let body = expect_200("link", request(addr, "POST", "/link", queries))?;
    if !body.lines().any(|l| l.contains("\"score_bits\"")) {
        return Err(format!("link: no matches in {body:?}"));
    }
    let summary = body
        .lines()
        .find(|l| l.contains("\"summary\""))
        .ok_or_else(|| format!("link: no summary line in {body:?}"))?;
    let summary = adamel_obs::json::Json::parse(summary)
        .map_err(|e| format!("link: summary is not valid JSON: {e}"))?;
    if summary.get("summary").and_then(|s| s.get("trace_id")).and_then(|t| t.as_u64()).is_none() {
        return Err("link: summary carries no trace_id".to_string());
    }

    let health = expect_200("healthz", request(addr, "GET", "/healthz", ""))?;
    if !health.contains("\"status\": \"ok\"") {
        return Err(format!("healthz: unexpected body {health:?}"));
    }

    let mut snapshot = Vec::new();
    adamel::save_model(&trained_model(), &mut snapshot).map_err(|e| format!("snapshot: {e}"))?;
    let snapshot = String::from_utf8(snapshot).map_err(|e| format!("snapshot utf8: {e}"))?;
    let body = expect_200("hot-swap", request(addr, "POST", "/model", &snapshot))?;
    if !body.contains("\"model_version\": 2") {
        return Err(format!("hot-swap: unexpected body {body:?}"));
    }

    let metrics = expect_200("metrics", request(addr, "GET", "/metrics", ""))?;
    validate_metrics(&metrics)?;
    if let Some(path) = metrics_out {
        std::fs::write(path, &metrics).map_err(|e| format!("write {path:?}: {e}"))?;
        println!("selftest: metrics written to {path}");
    }

    server.shutdown()?;
    println!("selftest: ok");
    Ok(())
}
