//! # adamel-serve
//!
//! A long-running entity-linkage daemon over the AdaMEL pipeline: a
//! std-only HTTP/JSONL server hand-rolled on `std::net` (no framework, no
//! dependencies beyond the workspace crates), serving the deployment shape
//! the paper motivates — continuously arriving records from previously
//! unseen sources, scored against a trained model without retraining.
//!
//! ## What it serves
//!
//! | endpoint | method | effect |
//! |---|---|---|
//! | `/records` | POST | upsert JSONL records into the incremental [`LiveIndex`](adamel_schema::LiveIndex) |
//! | `/records` | DELETE | delete records by `(source, entity_id)` |
//! | `/link` | POST | block + score a JSONL batch of query records against the corpus |
//! | `/model` | POST | load an `adamel-model v1` snapshot and atomically hot-swap it |
//! | `/healthz` | GET | liveness + model version + corpus size + re-adaptation flag |
//! | `/metrics` | GET | the `adamel-obs` span report, run-ledger event counts, and serve counters |
//!
//! ## Architecture (DESIGN.md §16)
//!
//! One **accept thread** owns the listener and pushes accepted connections
//! onto a bounded [`queue`]; when the queue is full the connection is
//! answered `429` immediately — explicit backpressure instead of an
//! unbounded backlog. A fixed pool of **worker threads** pops connections
//! and handles one request each. All threads come from
//! [`adamel_tensor::parallel::spawn_service`] — the workspace's
//! `no-thread-spawn` lint confines `std::thread` to the parallel runtime,
//! so every thread in the process remains accounted for at one choke
//! point.
//!
//! Scoring routes through [`Linker::score_candidates`]
//! (`adamel::pipeline`), the exact batch path `Linker::link` uses offline
//! (candidates from the incremental index are defined to rank identically
//! to the batch `BlockingIndex`), so a served batch is **bit-identical** to
//! the offline pipeline on the same pairs — through the compiled inference
//! plan, at any thread count.
//!
//! The model is swapped atomically: requests clone an
//! `Arc<Linker>` out of an `RwLock` and score against that clone, so a
//! swap never changes the model under a request already in flight.
//!
//! Live drift monitoring ([`adamel::drift`]) runs per scored batch:
//! per-source C1/C2/C3 + attention-shift + calibration assessment emitted
//! as `drift`/`warn` run-ledger events, plus an unseen-source-dominance
//! hook that raises `readapt_recommended` when traffic from sources never
//! seen in training starts dominating — the signal that an AdaMEL-zero
//! re-adaptation pass is warranted.
//!
//! [`Linker::score_candidates`]: adamel::Linker::score_candidates

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod engine;
pub mod http;
pub mod queue;
pub mod server;

pub use api::{DeleteLine, HealthResponse, LinkMatch, RecordLine};
pub use engine::{DriftConfig, Engine, EngineConfig, LinkOutcome};
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServerConfig};
