//! Property-based tests of the text layer's invariants.

use adamel_text::similarity::{jaccard, levenshtein, levenshtein_similarity, prefix_similarity};
use adamel_text::{normalize, shared_and_unique, tokenize, HashedFastText};
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalize_is_idempotent(s in ".{0,60}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    #[test]
    fn normalized_text_is_lowercase_alphanumeric_and_spaces(s in ".{0,60}") {
        let n = normalize(&s);
        // Lowercasing is a fixpoint (some uppercase letters, e.g. the
        // mathematical alphanumerics, have no lowercase mapping and pass
        // through unchanged).
        prop_assert!(n.chars().all(|c| c == ' '
            || (c.is_alphanumeric() && c.to_lowercase().next() == Some(c))));
        prop_assert!(!n.starts_with(' ') && !n.ends_with(' '));
        prop_assert!(!n.contains("  "));
    }

    #[test]
    fn tokenize_produces_no_empty_tokens(s in ".{0,80}") {
        prop_assert!(tokenize(&s).iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn shared_unique_partition_token_count(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let (shared, unique) = shared_and_unique(&ta, &tb);
        // Multiset partition: every token accounted for exactly once.
        prop_assert_eq!(2 * shared.len() + unique.len(), ta.len() + tb.len());
    }

    #[test]
    fn shared_tokens_appear_in_both_inputs(a in "[a-z ]{0,40}", b in "[a-z ]{0,40}") {
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let (shared, _) = shared_and_unique(&ta, &tb);
        for t in &shared {
            prop_assert!(ta.contains(t) && tb.contains(t));
        }
    }

    #[test]
    fn levenshtein_symmetry_and_identity(a in ".{0,25}", b in ".{0,25}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
    }

    #[test]
    fn levenshtein_triangle_inequality(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn similarity_scores_bounded(a in ".{0,30}", b in ".{0,30}") {
        let lv = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&lv));
        let pf = prefix_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&pf));
        let ja = jaccard(&tokenize(&a), &tokenize(&b));
        prop_assert!((0.0..=1.0).contains(&ja));
    }

    #[test]
    fn token_embeddings_are_unit_norm(token in "[a-z0-9]{1,20}") {
        let ft = HashedFastText::new(32, 11);
        let e = ft.embed_token(&token);
        let norm: f32 = e.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-4, "norm {}", norm);
    }

    #[test]
    fn embedding_is_a_pure_function(token in "[a-z]{1,12}") {
        let ft = HashedFastText::new(24, 3);
        prop_assert_eq!(ft.embed_token(&token), ft.embed_token(&token));
    }

    #[test]
    fn bag_embedding_permutation_invariant(mut words in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let ft = HashedFastText::new(24, 3);
        let fwd = ft.embed_tokens(&words);
        words.reverse();
        let rev = ft.embed_tokens(&words);
        for (a, b) in fwd.as_slice().iter().zip(rev.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
