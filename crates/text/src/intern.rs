//! String-interning token vocabulary with an embedding table.
//!
//! The feature layer (Eq. 2–3) re-encounters the same token strings across
//! thousands of candidate pairs: every record participates in many pairs and
//! real-world attribute vocabularies are small relative to pair counts.
//! [`TokenVocab`] assigns each distinct (already normalized) token string a
//! dense [`TokenId`] and computes its [`HashedFastText`] embedding exactly
//! once, so the pair-encoding hot path works on `u32` ids and cached
//! embedding rows instead of re-hashing `&str` n-grams per pair.
//!
//! Bit-exactness contract: [`TokenVocab::embedding`] returns the *identical
//! bits* `HashedFastText::embed_token` would produce for that token —
//! interning is pure memoization, never approximation. Ids are assigned in
//! first-seen order, which may depend on input order; nothing downstream may
//! let id *values* influence numeric results (the encoding cache only uses
//! ids for equality tests and table lookups).

use crate::embedding::HashedFastText;
use adamel_tensor::parallel;
use std::collections::HashMap;

/// Dense identifier of an interned token string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(pub u32);

/// Interning vocabulary: token string → [`TokenId`] → cached embedding row.
#[derive(Debug, Clone)]
pub struct TokenVocab {
    embedder: HashedFastText,
    /// Token string → id. Lookup only — never iterated (iteration order of
    /// `HashMap` is nondeterministic; ids come from insertion order instead).
    map: HashMap<String, u32>,
    /// Id → token string, for deferred embedding computation.
    tokens: Vec<String>,
    /// Row-major `len() x dim()` embedding table; rows at `pending_from..`
    /// are not yet computed.
    table: Vec<f32>,
    /// First table row whose embedding has not been computed yet.
    pending_from: usize,
    /// The embedder's fixed missing-value vector (empty token list).
    missing: Vec<f32>,
}

impl TokenVocab {
    /// Creates an empty vocabulary over `embedder`.
    pub fn new(embedder: HashedFastText) -> Self {
        let missing = embedder.missing_vector().into_vec();
        Self {
            embedder,
            map: HashMap::new(),
            tokens: Vec::new(),
            table: Vec::new(),
            pending_from: 0,
            missing,
        }
    }

    /// Embedding dimensionality of each table row.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The id of an already-interned token, if any.
    pub fn lookup(&self, token: &str) -> Option<TokenId> {
        self.map.get(token).copied().map(TokenId)
    }

    /// Interns `token`, assigning the next dense id on first sight. The
    /// embedding row is *reserved but not computed*; call
    /// [`compute_pending`](Self::compute_pending) before reading it back.
    /// Deferring lets a batch of new tokens embed in one parallel pass.
    pub fn intern_deferred(&mut self, token: &str) -> TokenId {
        if let Some(&id) = self.map.get(token) {
            return TokenId(id);
        }
        assert!(self.tokens.len() < u32::MAX as usize, "TokenVocab: token id space exhausted");
        let id = self.tokens.len() as u32;
        self.map.insert(token.to_owned(), id);
        self.tokens.push(token.to_owned());
        self.table.resize(self.tokens.len() * self.embedder.dim(), 0.0);
        TokenId(id)
    }

    /// Computes every reserved-but-pending embedding row, in parallel across
    /// rows. Each row is an independent `embed_token` evaluation, so the
    /// result is bit-identical at any worker count.
    pub fn compute_pending(&mut self) {
        let dim = self.embedder.dim();
        if self.pending_from >= self.tokens.len() {
            return;
        }
        let start = self.pending_from;
        let tokens = &self.tokens;
        let embedder = &self.embedder;
        // ~(token n-grams × dim) splitmix draws per row; weight well above a
        // plain dim-length stream so a few thousand new tokens parallelize.
        parallel::parallel_for_rows(&mut self.table[start * dim..], dim, dim * 64, |i, row| {
            embedder.embed_token_into(&tokens[start + i], row);
        });
        self.pending_from = self.tokens.len();
    }

    /// The cached embedding row of `id` — bit-identical to
    /// `embed_token(token)`. Reading a row before
    /// [`compute_pending`](Self::compute_pending) has run is a caller bug
    /// (caught by a `debug_assert`; release builds would read zeros).
    pub fn embedding(&self, id: TokenId) -> &[f32] {
        let dim = self.embedder.dim();
        debug_assert!(
            (id.0 as usize) < self.pending_from,
            "TokenVocab::embedding: row {} read before compute_pending",
            id.0
        );
        &self.table[id.0 as usize * dim..(id.0 as usize + 1) * dim]
    }

    /// The embedder's fixed normalized non-zero missing-value vector — the
    /// bits `embed_tokens(&[])` produces.
    pub fn missing(&self) -> &[f32] {
        &self.missing
    }

    /// The embedder this vocabulary caches for.
    pub fn embedder(&self) -> &HashedFastText {
        &self.embedder
    }

    /// Approximate logical footprint in bytes: the embedding table and
    /// missing vector plus every interned token string (counted twice —
    /// once as a map key, once in the id → token list). Feeds the
    /// `text.vocab.bytes` memory gauge.
    pub fn approx_bytes(&self) -> u64 {
        let floats = (self.table.capacity() + self.missing.len()) * 4;
        let strings: usize = self.tokens.iter().map(|t| 2 * t.len()).sum();
        (floats + strings) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> TokenVocab {
        TokenVocab::new(HashedFastText::new(16, 7))
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut v = vocab();
        let a = v.intern_deferred("hey");
        let b = v.intern_deferred("jude");
        let a2 = v.intern_deferred("hey");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(v.len(), 2);
        assert_eq!(v.lookup("hey"), Some(a));
        assert_eq!(v.lookup("nope"), None);
    }

    #[test]
    fn embedding_bits_match_embedder() {
        let mut v = vocab();
        let ids: Vec<TokenId> =
            ["hey", "jude", "beatles"].iter().map(|t| v.intern_deferred(t)).collect();
        v.compute_pending();
        let reference = HashedFastText::new(16, 7);
        for (tok, id) in ["hey", "jude", "beatles"].iter().zip(ids) {
            assert_eq!(v.embedding(id), reference.embed_token(tok).as_slice(), "token {tok}");
        }
    }

    #[test]
    fn pending_batches_compose() {
        let mut v = vocab();
        let a = v.intern_deferred("alpha");
        v.compute_pending();
        let b = v.intern_deferred("bravo");
        let a2 = v.intern_deferred("alpha");
        v.compute_pending();
        assert_eq!(a, a2);
        let reference = HashedFastText::new(16, 7);
        assert_eq!(v.embedding(a), reference.embed_token("alpha").as_slice());
        assert_eq!(v.embedding(b), reference.embed_token("bravo").as_slice());
    }

    #[test]
    fn compute_pending_is_thread_count_invariant() {
        let words: Vec<String> = (0..37).map(|i| format!("tok{i}")).collect();
        let serial = {
            let mut v = vocab();
            let ids: Vec<TokenId> = words.iter().map(|w| v.intern_deferred(w)).collect();
            parallel::with_threads(1, || v.compute_pending());
            ids.iter().map(|&id| v.embedding(id).to_vec()).collect::<Vec<_>>()
        };
        for threads in [2, 4, 8] {
            let mut v = vocab();
            let ids: Vec<TokenId> = words.iter().map(|w| v.intern_deferred(w)).collect();
            parallel::with_threads(threads, || v.compute_pending());
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(v.embedding(id), serial[i].as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn missing_matches_embedder() {
        let v = vocab();
        assert_eq!(v.missing(), HashedFastText::new(16, 7).missing_vector().as_slice());
    }
}
