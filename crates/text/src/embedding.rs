//! Hashed subword embeddings simulating pretrained FastText.
//!
//! The paper embeds attribute word tokens with pretrained 300-d FastText and
//! *sums* them per feature (Eq. 3) — it deliberately avoids sophisticated
//! sequence modeling. FastText itself represents a token as the sum of its
//! character n-gram vectors; we reproduce that construction with
//! deterministically *hashed* n-gram vectors instead of learned ones:
//!
//! * identical tokens map to identical vectors (what drives `sim(A)`);
//! * near-duplicate strings ("beatles" / "beatle") share most n-grams and so
//!   land nearby;
//! * unrelated tokens are near-orthogonal in expectation.
//!
//! Those are the only properties AdaMEL's summed-bag representation relies
//! on, which is why this substitution preserves the experiments' behaviour
//! (see DESIGN.md §2).

use adamel_tensor::Matrix;

/// FNV-1a 64-bit hash; stable across platforms and runs.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64: expands one 64-bit state into a stream of well-distributed
/// values, used to derive the pseudo-random n-gram vectors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hashed n-gram embedder with a FastText-like bag-of-subwords
/// token representation.
#[derive(Debug, Clone)]
pub struct HashedFastText {
    dim: usize,
    min_ngram: usize,
    max_ngram: usize,
    seed: u64,
}

impl HashedFastText {
    /// Creates an embedder producing `dim`-dimensional vectors from character
    /// n-grams in `[min_ngram, max_ngram]` (FastText defaults are 3..=6; we
    /// default to 3..=5 for speed) plus the whole token.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "HashedFastText: dim must be positive");
        Self { dim, min_ngram: 3, max_ngram: 5, seed }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pseudo-random unit-scaled vector of one hashed key.
    fn hashed_vector(&self, key: &str, out: &mut [f32]) {
        let mut state = fnv1a(key.as_bytes(), self.seed);
        let scale = 1.0 / (self.dim as f32).sqrt();
        for v in out.iter_mut() {
            let r = splitmix64(&mut state);
            // Map to approximately uniform in [-1, 1].
            let u = (r >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
            *v += (2.0 * u - 1.0) * scale;
        }
    }

    /// Embeds one (already normalized) token as the L2-normalized sum of its
    /// boundary-marked character n-gram vectors plus the whole-word vector.
    pub fn embed_token(&self, token: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        self.embed_token_into(token, &mut acc);
        acc
    }

    /// [`embed_token`](Self::embed_token) writing into a caller-provided
    /// `dim`-length buffer (overwritten, not accumulated).
    pub fn embed_token_into(&self, token: &str, out: &mut [f32]) {
        // The cold-encode hot spot (ROADMAP item 1 follow-on): every n-gram
        // of every first-seen token is hashed here. The op span (Full level)
        // and counter quantify exactly how much of a cold build this is.
        adamel_obs::trace_op!("encode.embed_hash");
        adamel_obs::trace_count!("encode.embed_hash", 1);
        assert_eq!(out.len(), self.dim, "embed_token_into: buffer length mismatch");
        out.fill(0.0);
        if token.is_empty() {
            self.missing_into(out);
            return;
        }
        // Whole word with boundary markers, like FastText's `<word>` entry.
        let marked: Vec<char> =
            std::iter::once('<').chain(token.chars()).chain(std::iter::once('>')).collect();
        let whole: String = marked.iter().collect();
        self.hashed_vector(&whole, out);
        let mut buf = String::new();
        for n in self.min_ngram..=self.max_ngram {
            if marked.len() < n {
                break;
            }
            for start in 0..=(marked.len() - n) {
                buf.clear();
                buf.extend(&marked[start..start + n]);
                self.hashed_vector(&buf, out);
            }
        }
        l2_normalize(out);
    }

    /// Sums token embeddings into one `1 x dim` row (the paper's per-feature
    /// summarization). Empty input produces the fixed missing-value vector.
    pub fn embed_tokens(&self, tokens: &[String]) -> Matrix {
        let mut out = Matrix::zeros(1, self.dim);
        self.embed_tokens_into(tokens, out.as_mut_slice());
        out
    }

    /// [`embed_tokens`](Self::embed_tokens) writing into a caller-provided
    /// `dim`-length buffer. Batch encoding uses this to fill feature blocks
    /// of a preallocated row without a `Matrix` allocation per feature; one
    /// scratch buffer is reused across the token loop.
    pub fn embed_tokens_into(&self, tokens: &[String], out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "embed_tokens_into: buffer length mismatch");
        if tokens.is_empty() {
            out.fill(0.0);
            self.missing_into(out);
            return;
        }
        out.fill(0.0);
        let mut scratch = vec![0.0f32; self.dim];
        for t in tokens {
            self.embed_token_into(t, &mut scratch);
            for (a, &b) in out.iter_mut().zip(&scratch) {
                *a += b;
            }
        }
    }

    /// The fixed normalized non-zero vector used to initialize missing
    /// attribute values (paper §4.3: "initializes the missing attribute
    /// values ... with a fixed normalized non-zero vector").
    pub fn missing_vector(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.dim);
        self.missing_into(out.as_mut_slice());
        out
    }

    /// Adds the missing-value vector into a zeroed buffer.
    fn missing_into(&self, out: &mut [f32]) {
        self.hashed_vector("\u{0}__MISSING__\u{0}", out);
        l2_normalize(out);
    }

    /// Cosine similarity between the bag embeddings of two token lists;
    /// convenience for baselines.
    pub fn cosine(&self, a: &[String], b: &[String]) -> f32 {
        let va = self.embed_tokens(a);
        let vb = self.embed_tokens(b);
        cosine_slices(va.as_slice(), vb.as_slice())
    }
}

fn l2_normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
}

/// Cosine similarity between two equal-length slices (0.0 when either is a
/// zero vector).
pub fn cosine_slices(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_slices length mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> HashedFastText {
        HashedFastText::new(64, 42)
    }

    fn v(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = HashedFastText::new(32, 7).embed_token("beatles");
        let b = HashedFastText::new(32, 7).embed_token("beatles");
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_embedding() {
        let a = HashedFastText::new(32, 7).embed_token("beatles");
        let b = HashedFastText::new(32, 8).embed_token("beatles");
        assert_ne!(a, b);
    }

    #[test]
    fn token_embedding_is_unit_norm() {
        let e = ft().embed_token("hello");
        let norm: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn near_duplicates_are_closer_than_unrelated() {
        let f = ft();
        let sim_close = cosine_slices(&f.embed_token("beatles"), &f.embed_token("beatle"));
        let sim_far = cosine_slices(&f.embed_token("beatles"), &f.embed_token("xylophone"));
        assert!(sim_close > sim_far + 0.2, "close {sim_close} should exceed far {sim_far}");
        assert!(sim_close > 0.5);
    }

    #[test]
    fn unrelated_tokens_near_orthogonal() {
        let f = ft();
        let s = cosine_slices(&f.embed_token("monitor"), &f.embed_token("jazz"));
        assert!(s.abs() < 0.4, "unexpectedly correlated: {s}");
    }

    #[test]
    fn missing_vector_is_fixed_nonzero_unit() {
        let f = ft();
        let m1 = f.missing_vector();
        let m2 = f.missing_vector();
        assert_eq!(m1, m2);
        assert!((m1.norm() - 1.0).abs() < 1e-5);
        assert_eq!(f.embed_tokens(&[]), m1);
    }

    #[test]
    fn bag_embedding_is_order_invariant() {
        let f = ft();
        let ab = f.embed_tokens(&v(&["hey", "jude"]));
        let ba = f.embed_tokens(&v(&["jude", "hey"]));
        for (x, y) in ab.as_slice().iter().zip(ba.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cosine_of_identical_bags_is_one() {
        let f = ft();
        let c = f.cosine(&v(&["abbey", "road"]), &v(&["abbey", "road"]));
        assert!((c - 1.0).abs() < 1e-5);
    }

    #[test]
    fn short_token_handled() {
        let f = ft();
        let e = f.embed_token("a");
        let norm: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_token_maps_to_missing() {
        let f = ft();
        assert_eq!(f.embed_token(""), f.missing_vector().into_vec());
    }
}
