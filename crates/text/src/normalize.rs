//! Text normalization: lowercasing, diacritic folding, punctuation and
//! whitespace cleanup.
//!
//! The music corpora in the paper contain non-English characters and
//! diacritics ("many entities are recorded with non-English characters &
//! phrases"); folding them makes hashed subword embeddings of variant
//! spellings collide the way FastText's learned subwords would cluster them.

/// Folds a single character to its unaccented lowercase ASCII equivalent
/// where a standard Latin mapping exists; other characters pass through
/// lowercased.
pub fn fold_char(c: char) -> char {
    let c = c.to_lowercase().next().unwrap_or(c);
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' => 'a',
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => 'e',
        'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'į' => 'i',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ő' => 'o',
        'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ů' | 'ű' => 'u',
        'ç' | 'ć' | 'č' => 'c',
        'ñ' | 'ń' | 'ň' => 'n',
        'ß' => 's',
        'š' | 'ś' => 's',
        'ž' | 'ź' | 'ż' => 'z',
        'ý' | 'ÿ' => 'y',
        'ł' => 'l',
        'đ' | 'ď' => 'd',
        'ť' => 't',
        'ř' => 'r',
        _ => c,
    }
}

/// Normalizes a string: lowercase, fold diacritics, map punctuation to
/// spaces, collapse runs of whitespace, and trim.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        let c = fold_char(c);
        let mapped = if c.is_alphanumeric() { Some(c) } else { None };
        match mapped {
            Some(c) => {
                out.push(c);
                last_space = false;
            }
            None => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// True when a value is missing for linkage purposes: empty or whitespace /
/// punctuation only after normalization.
pub fn is_missing(text: &str) -> bool {
    normalize(text).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_folds() {
        assert_eq!(normalize("Héllo WÖRLD"), "hello world");
        assert_eq!(normalize("Björk"), "bjork");
        assert_eq!(normalize("Dvořák"), "dvorak");
    }

    #[test]
    fn punctuation_becomes_single_space() {
        assert_eq!(normalize("hey,  jude!!"), "hey jude");
        assert_eq!(normalize("p.m."), "p m");
        assert_eq!(normalize("rock&roll"), "rock roll");
    }

    #[test]
    fn trims_and_collapses() {
        assert_eq!(normalize("  a   b  "), "a b");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn missing_detection() {
        assert!(is_missing(""));
        assert!(is_missing("   "));
        assert!(is_missing("?!"));
        assert!(!is_missing("x"));
    }

    #[test]
    fn digits_survive() {
        assert_eq!(normalize("24\" LED 1080p"), "24 led 1080p");
    }
}
