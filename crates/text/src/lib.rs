//! # adamel-text
//!
//! Text processing for the AdaMEL reproduction: normalization, word
//! tokenization, FastText-style hashed subword embeddings, classical string
//! similarity measures (for the TLER baseline), and TF-IDF statistics (for
//! the Ditto baseline's input summarization and the paper's data analysis).
//!
//! The paper embeds tokens with pretrained 300-d FastText; since no
//! pretrained weights can be shipped here, [`HashedFastText`] reproduces the
//! bag-of-character-n-grams construction with deterministic hashed vectors.
//! See the module docs of [`embedding`] and DESIGN.md §2 for why this
//! preserves the experiments' behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedding;
pub mod intern;
pub mod normalize;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;

pub use embedding::{cosine_slices, HashedFastText};
pub use intern::{TokenId, TokenVocab};
pub use normalize::{is_missing, normalize};
pub use tfidf::{TfIdf, TokenFrequency};
pub use tokenize::{shared_and_unique, tokenize, tokenize_cropped};
