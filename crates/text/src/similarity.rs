//! Classical string-similarity measures used by the TLER baseline's
//! engineered feature space and by blocking.

use std::collections::HashSet;

/// Levenshtein edit distance between two strings (by chars).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein similarity normalized to `[0, 1]` (1 = identical).
pub fn levenshtein_similarity(a: &str, b: &str) -> f32 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f32 / max_len as f32
}

/// Jaccard similarity of two token sets.
pub fn jaccard(a: &[String], b: &[String]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f32 / union as f32
    }
}

/// Overlap (containment) coefficient: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_coefficient(a: &[String], b: &[String]) -> f32 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    inter as f32 / sa.len().min(sb.len()) as f32
}

/// Common-prefix ratio of two raw strings: `|lcp| / max(|a|, |b|)`.
/// A classical char-level measure — brittle to reordering by design.
pub fn prefix_similarity(a: &str, b: &str) -> f32 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let max_len = ac.len().max(bc.len());
    if max_len == 0 {
        return 1.0;
    }
    let lcp = ac.iter().zip(&bc).take_while(|(x, y)| x == y).count();
    lcp as f32 / max_len as f32
}

/// Monge-Elkan style similarity: for each token in `a`, the best
/// Levenshtein similarity against tokens of `b`, averaged. Asymmetric inputs
/// are handled by symmetrizing.
pub fn monge_elkan(a: &[String], b: &[String]) -> f32 {
    fn one_way(a: &[String], b: &[String]) -> f32 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let total: f32 = a
            .iter()
            .map(|ta| b.iter().map(|tb| levenshtein_similarity(ta, tb)).fold(0.0f32, f32::max))
            .sum();
        total / a.len() as f32
    }
    0.5 * (one_way(a, b) + one_way(b, a))
}

/// Exact-match indicator on joined tokens.
pub fn exact_match(a: &[String], b: &[String]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0; // both missing carries no evidence
    }
    f32::from(a == b)
}

/// Absolute difference of numeric prefixes, normalized; 0 when either value
/// has no parseable number. Useful for prices/sizes in the monitor corpus.
pub fn numeric_similarity(a: &[String], b: &[String]) -> f32 {
    let na = first_number(a);
    let nb = first_number(b);
    match (na, nb) {
        (Some(x), Some(y)) => {
            let denom = x.abs().max(y.abs()).max(1.0);
            1.0 - ((x - y).abs() / denom).min(1.0) as f32
        }
        _ => 0.0,
    }
}

fn first_number(tokens: &[String]) -> Option<f64> {
    tokens.iter().find_map(|t| t.parse::<f64>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&v(&["a", "b"]), &v(&["b", "c"])), 1.0 / 3.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&v(&["a"]), &[]), 0.0);
    }

    #[test]
    fn overlap_favors_subsets() {
        assert_eq!(overlap_coefficient(&v(&["a", "b"]), &v(&["a", "b", "c", "d"])), 1.0);
        assert_eq!(overlap_coefficient(&v(&["a"]), &[]), 0.0);
    }

    #[test]
    fn monge_elkan_tolerates_typos() {
        let s = monge_elkan(&v(&["beatles"]), &v(&["beatle"]));
        assert!(s > 0.8);
        let far = monge_elkan(&v(&["beatles"]), &v(&["zzzzz"]));
        assert!(far < 0.35);
    }

    #[test]
    fn numeric_similarity_parses() {
        assert!(numeric_similarity(&v(&["24"]), &v(&["24"])) > 0.99);
        assert!(numeric_similarity(&v(&["24"]), &v(&["27"])) < 0.95);
        assert_eq!(numeric_similarity(&v(&["lcd"]), &v(&["24"])), 0.0);
    }

    #[test]
    fn exact_match_indicator() {
        assert_eq!(exact_match(&v(&["a"]), &v(&["a"])), 1.0);
        assert_eq!(exact_match(&v(&["a"]), &v(&["b"])), 0.0);
        assert_eq!(exact_match(&[], &[]), 0.0);
    }
}
