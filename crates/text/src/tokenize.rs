//! Word tokenization over normalized text.

use crate::normalize::normalize;

/// Splits a raw attribute value into normalized word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    normalize(text).split(' ').filter(|t| !t.is_empty()).map(str::to_owned).collect()
}

/// Tokenizes and keeps at most the first `crop` tokens — the paper's
/// "cropping size = 20" applied to long attribute values.
pub fn tokenize_cropped(text: &str, crop: usize) -> Vec<String> {
    let mut tokens = tokenize(text);
    tokens.truncate(crop);
    tokens
}

/// Token multiset intersection and symmetric difference, the basis of the
/// paper's contrastive relational features (Eq. 2).
///
/// Returns `(shared, unique)` where `shared` contains tokens present in both
/// inputs (with multiplicity `min`) and `unique` the rest of the union.
pub fn shared_and_unique(a: &[String], b: &[String]) -> (Vec<String>, Vec<String>) {
    use std::collections::HashMap;
    let mut counts_b: HashMap<&str, usize> = HashMap::new();
    for t in b {
        *counts_b.entry(t).or_insert(0) += 1;
    }
    let mut shared = Vec::new();
    let mut unique = Vec::new();
    for t in a {
        match counts_b.get_mut(t.as_str()) {
            Some(c) if *c > 0 => {
                *c -= 1;
                shared.push(t.clone());
            }
            _ => unique.push(t.clone()),
        }
    }
    // Remaining tokens of b (those not matched) are unique to b.
    for t in b {
        if let Some(c) = counts_b.get_mut(t.as_str()) {
            if *c > 0 {
                *c -= 1;
                unique.push(t.clone());
            }
        }
    }
    (shared, unique)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn basic_tokenization() {
        assert_eq!(toks("Hey Jude"), vec!["hey", "jude"]);
        assert_eq!(toks(""), Vec::<String>::new());
    }

    #[test]
    fn cropping_limits_length() {
        let long = (0..50).map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        assert_eq!(tokenize_cropped(&long, 20).len(), 20);
        assert_eq!(tokenize_cropped("a b", 20).len(), 2);
    }

    #[test]
    fn shared_unique_partition_union() {
        let a = toks("hey jude beatles");
        let b = toks("hey jude paul");
        let (shared, unique) = shared_and_unique(&a, &b);
        assert_eq!(shared, vec!["hey", "jude"]);
        let mut u = unique.clone();
        u.sort();
        assert_eq!(u, vec!["beatles", "paul"]);
        // Partition property: |shared|*2 + |unique| == |a| + |b|
        assert_eq!(shared.len() * 2 + unique.len(), a.len() + b.len());
    }

    #[test]
    fn multiset_semantics() {
        let a = toks("la la land");
        let b = toks("la land");
        let (shared, unique) = shared_and_unique(&a, &b);
        assert_eq!(shared, vec!["la", "land"]);
        assert_eq!(unique, vec!["la"]);
    }

    #[test]
    fn disjoint_inputs_are_all_unique() {
        let a = toks("abc def");
        let b = toks("xyz");
        let (shared, unique) = shared_and_unique(&a, &b);
        assert!(shared.is_empty());
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn empty_inputs() {
        let (s, u) = shared_and_unique(&[], &[]);
        assert!(s.is_empty() && u.is_empty());
        let (s, u) = shared_and_unique(&toks("a"), &[]);
        assert!(s.is_empty());
        assert_eq!(u, vec!["a"]);
    }
}
