//! TF-IDF corpus statistics.
//!
//! Used by the Ditto baseline's "retain high TF-IDF tokens" input
//! summarization and by the data-analysis experiments (Fig. 12's token
//! frequency distributions).

use std::collections::{BTreeMap, HashMap};

/// Document-frequency statistics accumulated over a corpus of token lists.
///
/// Stored in a `BTreeMap` so any future iteration (serialization, debugging
/// dumps) is deterministic by construction.
#[derive(Debug, Default, Clone)]
pub struct TfIdf {
    doc_freq: BTreeMap<String, usize>,
    num_docs: usize,
}

impl TfIdf {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document (deduplicating tokens for document frequency).
    pub fn add_document(&mut self, tokens: &[String]) {
        self.num_docs += 1;
        let mut seen = std::collections::HashSet::new();
        for t in tokens {
            if seen.insert(t.as_str()) {
                *self.doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents seen.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Smoothed inverse document frequency of a token.
    pub fn idf(&self, token: &str) -> f32 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        ((1.0 + self.num_docs as f32) / (1.0 + df as f32)).ln() + 1.0
    }

    /// TF-IDF scores for a document's tokens.
    pub fn scores(&self, tokens: &[String]) -> Vec<(String, f32)> {
        let mut tf: HashMap<&str, usize> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        tokens
            .iter()
            .map(|t| {
                let tfv = tf[t.as_str()] as f32 / tokens.len().max(1) as f32;
                (t.clone(), tfv * self.idf(t))
            })
            .collect()
    }

    /// Keeps the `k` highest-TF-IDF tokens of a document, preserving their
    /// original order (Ditto's summarization step).
    pub fn summarize(&self, tokens: &[String], k: usize) -> Vec<String> {
        if tokens.len() <= k {
            return tokens.to_vec();
        }
        let scored = self.scores(tokens);
        // Rank indices by score descending; keep top-k positions.
        let mut idx: Vec<usize> = (0..tokens.len()).collect();
        idx.sort_by(|&a, &b| {
            scored[b].1.partial_cmp(&scored[a].1).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut keep = vec![false; tokens.len()];
        for &i in idx.iter().take(k) {
            keep[i] = true;
        }
        tokens.iter().zip(keep).filter(|(_, k)| *k).map(|(t, _)| t.clone()).collect()
    }
}

/// Raw token frequency counter (Fig. 12's "top-10 word tokens" analysis).
///
/// `counts` is a `BTreeMap`: [`TokenFrequency::top_k`] iterates it, and a
/// hash map there would make the pre-sort order (hence equal-count ties
/// before the explicit tie-break) depend on hasher state.
#[derive(Debug, Default, Clone)]
pub struct TokenFrequency {
    counts: BTreeMap<String, usize>,
    total: usize,
}

impl TokenFrequency {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts every token in the list.
    pub fn add_tokens(&mut self, tokens: &[String]) {
        for t in tokens {
            *self.counts.entry(t.clone()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Total tokens counted.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The `k` most frequent tokens with counts, ties broken
    /// lexicographically for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(String, usize)> {
        let mut entries: Vec<(String, usize)> =
            self.counts.iter().map(|(t, &c)| (t.clone(), c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn idf_favors_rare_tokens() {
        let mut t = TfIdf::new();
        t.add_document(&doc(&["the", "cat"]));
        t.add_document(&doc(&["the", "dog"]));
        t.add_document(&doc(&["the", "fox"]));
        assert!(t.idf("cat") > t.idf("the"));
        assert!(t.idf("unseen") > t.idf("cat"));
    }

    #[test]
    fn summarize_keeps_rare_tokens_in_order() {
        let mut t = TfIdf::new();
        for _ in 0..10 {
            t.add_document(&doc(&["common", "filler"]));
        }
        t.add_document(&doc(&["rare", "gem"]));
        let summarized = t.summarize(&doc(&["common", "rare", "filler", "gem"]), 2);
        assert_eq!(summarized, doc(&["rare", "gem"]));
    }

    #[test]
    fn summarize_noop_when_short() {
        let t = TfIdf::new();
        let d = doc(&["a", "b"]);
        assert_eq!(t.summarize(&d, 5), d);
    }

    #[test]
    fn token_frequency_top_k() {
        let mut f = TokenFrequency::new();
        f.add_tokens(&doc(&["lcd", "lcd", "led", "hdmi"]));
        let top = f.top_k(2);
        assert_eq!(top[0], ("lcd".to_string(), 2));
        assert_eq!(top[1].1, 1);
        assert_eq!(f.total(), 4);
    }

    #[test]
    fn top_k_tie_break_deterministic() {
        let mut f = TokenFrequency::new();
        f.add_tokens(&doc(&["b", "a"]));
        assert_eq!(f.top_k(2), vec![("a".to_string(), 1), ("b".to_string(), 1)]);
    }
}
