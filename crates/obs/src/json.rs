//! Minimal JSON support: a value tree, a recursive-descent parser, and the
//! escaping/formatting helpers shared by every hand-written JSON emitter in
//! the workspace (the obs report, the run ledger, the bench binaries).
//!
//! The workspace is offline (no `serde_json`), but the run-ledger tooling
//! must *read back* what it writes — `adamel-report` summarizes and diffs
//! ledgers, and CI asserts every emitted line round-trips. This module is
//! deliberately small: it parses standard JSON into a [`Json`] tree
//! (objects keep [`BTreeMap`] order per the `hashmap-order` rule) and makes
//! no attempt at zero-copy or streaming — ledger lines are short.

use std::collections::BTreeMap;

/// A parsed JSON value.
///
/// Numbers are stored as `f64` (the JSON data model); [`Json::as_u64`]
/// recovers exact integers up to 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in sorted key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document, requiring that nothing but whitespace
    /// follows it.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    ///
    /// # Examples
    ///
    /// ```
    /// use adamel_obs::json::Json;
    /// let v = Json::parse("{\"a\": [1, true, null]}").expect("valid");
    /// assert_eq!(v.get("a").and_then(|a| a.as_array()).map(Vec::len), Some(3));
    /// ```
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() <= 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at offset {}", self.pos)
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // [
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // {
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pair: a second \uXXXX must follow.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.unwrap_or('\u{fffd}'));
                            // hex4 advanced past the digits; compensate for
                            // the shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (source is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated \\u"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u digits"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding in a JSON string literal. Metric names
/// and span paths are ASCII identifiers in practice, but emitters must
/// never produce invalid JSON regardless of input.
///
/// # Examples
///
/// ```
/// assert_eq!(adamel_obs::json::escape("a\"b\n"), "a\\\"b\\n");
/// ```
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for JSON: finite values print with Rust's shortest
/// round-trip repr, non-finite values become `null` (JSON has no NaN).
///
/// # Examples
///
/// ```
/// assert_eq!(adamel_obs::json::fmt_f64(0.25), "0.25");
/// assert_eq!(adamel_obs::json::fmt_f64(f64::NAN), "null");
/// ```
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse("true"), Ok(Json::Bool(true)));
        assert_eq!(Json::parse(" false "), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Ok(Json::Num(42.0)));
        assert_eq!(Json::parse("-1.5e2"), Ok(Json::Num(-150.0)));
        assert_eq!(Json::parse("\"hi\""), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse("{\"a\": [1, {\"b\": null}], \"c\": \"x\"}").expect("valid");
        let a = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(Json::parse("[]"), Ok(Json::Arr(Vec::new())));
        assert_eq!(Json::parse("{}"), Ok(Json::Obj(BTreeMap::new())));
        assert_eq!(Json::parse("[ ]"), Ok(Json::Arr(Vec::new())));
    }

    #[test]
    fn string_escapes_round_trip() {
        for raw in ["plain", "a\"b", "back\\slash", "tab\tnl\n", "unicode \u{1}"] {
            let doc = format!("\"{}\"", escape(raw));
            assert_eq!(Json::parse(&doc), Ok(Json::Str(raw.to_string())), "{raw:?}");
        }
    }

    #[test]
    fn unicode_escapes_including_surrogates() {
        assert_eq!(Json::parse("\"\\u0041\""), Ok(Json::Str("A".into())));
        // U+1F600 as a surrogate pair.
        assert_eq!(Json::parse("\"\\ud83d\\ude00\""), Ok(Json::Str("\u{1F600}".into())));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"ü\""), Ok(Json::Str("ü".into())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "\"unterminated", "tru", "1.2.3", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn parses_own_report_style_output() {
        let doc = "{\n  \"schema\": \"adamel-obs/v1\",\n  \"spans\": {\n    \"a/b\": {\"count\": 2, \"buckets\": [[1, 2, 2]]}\n  }\n}";
        let v = Json::parse(doc).expect("valid");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("adamel-obs/v1"));
        let span = v.get("spans").and_then(|s| s.get("a/b")).expect("span");
        assert_eq!(span.get("count").and_then(Json::as_u64), Some(2));
    }
}
