//! Fixed-layout log2 latency histograms.
//!
//! A [`Histogram`] has 64 buckets with power-of-two boundaries: bucket 0
//! holds the value `0`, bucket `i > 0` holds values in `[2^(i-1), 2^i)`,
//! and bucket 63 is unbounded above. The layout is fixed so histograms
//! recorded by different threads (or different processes, via the JSON
//! report) merge by summing bucket counts — no rebinning, no allocation.

/// Number of buckets in every histogram. Fixed so merges are index-wise.
pub const BUCKETS: usize = 64;

/// A log2-bucket histogram of `u64` samples (nanoseconds, rows, bytes —
/// any non-negative magnitude) with exact count/sum/min/max on the side.
///
/// Quantiles are approximate: a quantile resolves to the upper bound of
/// the bucket it lands in (clamped to the exact observed max), which for
/// power-of-two buckets means at most 2x relative error — plenty for
/// latency triage, and immune to outliers blowing up storage.
///
/// # Examples
///
/// ```
/// let mut h = adamel_obs::Histogram::new();
/// for v in [1u64, 2, 3, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 1006);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(1000));
/// // p50 falls in the [2, 4) bucket; its upper bound is 4.
/// assert_eq!(h.quantile(0.5), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    ///
    /// # Examples
    ///
    /// ```
    /// let h = adamel_obs::Histogram::new();
    /// assert_eq!(h.count(), 0);
    /// assert_eq!(h.min(), None);
    /// ```
    pub fn new() -> Self {
        Histogram { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a value lands in: 0 for the value `0`, otherwise
    /// `floor(log2(v)) + 1` capped at the last bucket.
    ///
    /// # Examples
    ///
    /// ```
    /// use adamel_obs::Histogram;
    /// assert_eq!(Histogram::bucket_index(0), 0);
    /// assert_eq!(Histogram::bucket_index(1), 1);
    /// assert_eq!(Histogram::bucket_index(2), 2);
    /// assert_eq!(Histogram::bucket_index(3), 2);
    /// assert_eq!(Histogram::bucket_index(4), 3);
    /// assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    /// ```
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// The half-open range `[lo, hi)` of values bucket `i` covers. Bucket 0
    /// is `[0, 1)`; the final bucket's `hi` is `u64::MAX` (unbounded).
    ///
    /// # Examples
    ///
    /// ```
    /// use adamel_obs::Histogram;
    /// assert_eq!(Histogram::bucket_range(0), (0, 1));
    /// assert_eq!(Histogram::bucket_range(1), (1, 2));
    /// assert_eq!(Histogram::bucket_range(5), (16, 32));
    /// assert_eq!(Histogram::bucket_range(63).1, u64::MAX);
    /// ```
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else if i >= BUCKETS - 1 {
            (1u64 << (BUCKETS - 2), u64::MAX)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Records one sample. Counts saturate rather than overflow, like
    /// [`sum`](Self::sum) — a histogram held for the process lifetime
    /// must degrade, not panic, at the `u64` ceiling.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = Self::bucket_index(v);
        self.counts[i] = self.counts[i].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Folds another histogram into this one (bucket-wise sum, min/max
    /// union). Used when per-thread histograms drain into the registry.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut a = adamel_obs::Histogram::new();
    /// let mut b = adamel_obs::Histogram::new();
    /// a.record(1);
    /// b.record(100);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.min(), Some(1));
    /// assert_eq!(a.max(), Some(100));
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Mean of all samples, or `None` if empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut h = adamel_obs::Histogram::new();
    /// h.record(10);
    /// h.record(30);
    /// assert_eq!(h.mean(), Some(20.0));
    /// ```
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th sample, clamped to the observed
    /// max. Returns `None` if the histogram is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut h = adamel_obs::Histogram::new();
    /// for _ in 0..99 {
    ///     h.record(1);
    /// }
    /// h.record(1_000_000);
    /// assert_eq!(h.quantile(0.5), Some(2)); // bucket [1,2) upper bound
    /// assert_eq!(h.quantile(1.0), Some(1_000_000)); // clamped to max
    /// ```
    #[must_use = "quantile is a pure query over recorded counts"]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median ([`quantile`](Self::quantile) at 0.5), or `None` if empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut h = adamel_obs::Histogram::new();
    /// for _ in 0..10 {
    ///     h.record(8); // bucket [8, 16)
    /// }
    /// assert_eq!(h.p50(), Some(8)); // hi 16 clamps to observed max 8
    /// ```
    #[must_use = "p50 is a pure query over recorded counts"]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 90th percentile ([`quantile`](Self::quantile) at 0.9), or `None`
    /// if empty.
    #[must_use = "p90 is a pure query over recorded counts"]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.9)
    }

    /// 99th percentile ([`quantile`](Self::quantile) at 0.99), or `None`
    /// if empty.
    #[must_use = "p99 is a pure query over recorded counts"]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Reconstructs a histogram from serialized `(lo, hi, count)` triples
    /// as produced by [`nonzero_buckets`](Self::nonzero_buckets) (and the
    /// JSON report's `buckets` arrays). This is how `adamel-report` reuses
    /// the quantile accessors on a parsed report.
    ///
    /// The exact per-sample stats are gone after serialization, so they
    /// are approximated from bucket bounds: `min` is the first non-empty
    /// bucket's `lo`, `max` the last one's `hi - 1`, and `sum` uses bucket
    /// midpoints. Counts and therefore quantile *buckets* are exact;
    /// quantile values keep the usual at-most-2x bucket resolution.
    /// Triples whose `lo` does not match a bucket boundary are ignored.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut h = adamel_obs::Histogram::new();
    /// for v in [1u64, 1, 1, 900] {
    ///     h.record(v);
    /// }
    /// let rebuilt = adamel_obs::Histogram::from_buckets(&h.nonzero_buckets());
    /// assert_eq!(rebuilt.count(), 4);
    /// assert_eq!(rebuilt.p50(), Some(2)); // same bucket resolution
    /// assert_eq!(rebuilt.nonzero_buckets(), h.nonzero_buckets());
    /// ```
    pub fn from_buckets(buckets: &[(u64, u64, u64)]) -> Self {
        let mut h = Histogram::new();
        for &(lo, _, count) in buckets {
            if count == 0 {
                continue;
            }
            let i = Self::bucket_index(lo);
            let (blo, bhi) = Self::bucket_range(i);
            if blo != lo {
                continue; // not a bucket boundary: skip rather than misfile
            }
            h.counts[i] = h.counts[i].saturating_add(count);
            h.count = h.count.saturating_add(count);
            // Midpoint approximation for the lost per-sample sum.
            let mid = blo + (bhi.saturating_sub(blo)) / 2;
            h.sum = h.sum.saturating_add(mid.saturating_mul(count));
            if blo < h.min {
                h.min = blo;
            }
            let hi_inclusive = bhi.saturating_sub(1);
            if hi_inclusive > h.max {
                h.max = hi_inclusive;
            }
        }
        h
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, in value order.
    /// This is what the JSON report serializes — empty buckets cost zero
    /// bytes on the wire.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut h = adamel_obs::Histogram::new();
    /// h.record(0);
    /// h.record(5);
    /// assert_eq!(h.nonzero_buckets(), vec![(0, 1, 1), (4, 8, 1)]);
    /// ```
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        // Zero gets its own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Powers of two open a new bucket; one-less stays in the previous.
        for shift in 0..63u32 {
            let p = 1u64 << shift;
            assert_eq!(Histogram::bucket_index(p), (shift as usize + 1).min(63));
            if p > 1 {
                assert_eq!(Histogram::bucket_index(p - 1), shift as usize);
            }
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        // Consecutive buckets share boundaries: hi of i == lo of i+1.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = Histogram::bucket_range(i);
            let (lo_next, _) = Histogram::bucket_range(i + 1);
            assert_eq!(hi, lo_next, "gap between buckets {i} and {}", i + 1);
        }
        // Every value's bucket actually contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(v >= lo, "{v} below bucket {i} lo {lo}");
            assert!(v < hi || i == BUCKETS - 1, "{v} at-or-above bucket {i} hi {hi}");
        }
    }

    #[test]
    fn record_tracks_exact_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [5u64, 0, 17, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 25);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(17));
        assert_eq!(h.mean(), Some(6.25));
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantile_walks_buckets_and_clamps_to_max() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1); // bucket [1, 2)
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1024)
        }
        assert_eq!(h.quantile(0.0), Some(2));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(0.9), Some(2));
        // p99 lands in the 1000s bucket whose hi (1024) clamps to max 1000.
        assert_eq!(h.quantile(0.99), Some(1000));
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0u64, 1, 2, 900, 12345] {
            all.record(v);
            a.record(v);
        }
        for v in [7u64, 7, 8, u64::MAX] {
            all.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.nonzero_buckets(), all.nonzero_buckets());
    }

    #[test]
    fn quantile_accessors_on_exact_bucket_edges() {
        // All mass exactly on a power-of-two edge: [8, 16) bucket.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(8);
        }
        // hi is 16 but every accessor clamps to the observed max.
        assert_eq!(h.p50(), Some(8));
        assert_eq!(h.p90(), Some(8));
        assert_eq!(h.p99(), Some(8));

        // Mass split across edges 1 (bucket [1,2)) and 64 (bucket [64,128)).
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(64);
        }
        h.record(16384);
        // rank(p50)=50 and rank(p90)=90 both land in [1,2): upper bound 2.
        assert_eq!(h.p50(), Some(2));
        assert_eq!(h.p90(), Some(2));
        // rank(p99)=99 lands in [64,128): upper bound 128.
        assert_eq!(h.p99(), Some(128));

        // One-below-the-edge stays in the previous bucket.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7); // bucket [4, 8), hi 8 clamps to max 7
        }
        assert_eq!(h.p50(), Some(7));
        assert_eq!(h.p99(), Some(7));
    }

    #[test]
    fn accessors_empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn from_buckets_round_trips_counts_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 100, 100, 5000, u64::MAX] {
            h.record(v);
        }
        let rebuilt = Histogram::from_buckets(&h.nonzero_buckets());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.nonzero_buckets(), h.nonzero_buckets());
        // Quantiles agree up to the max-clamp (exact max is lost on the
        // wire, so the rebuilt value may sit at the bucket bound instead).
        for q in [0.5, 0.9, 0.99] {
            let orig = h.quantile(q).expect("non-empty");
            let re = rebuilt.quantile(q).expect("non-empty");
            let i = Histogram::bucket_index(orig);
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(re >= lo && (re <= hi || i == BUCKETS - 1), "q={q}: {re} vs {orig}");
        }
    }

    #[test]
    fn from_buckets_skips_malformed_and_empty_triples() {
        // lo=3 is not a bucket boundary; count=0 contributes nothing.
        let h = Histogram::from_buckets(&[(3, 4, 5), (4, 8, 0), (8, 16, 2)]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets(), vec![(8, 16, 2)]);
        assert_eq!(h.min(), Some(8));
        assert_eq!(h.max(), Some(15));
    }

    #[test]
    fn empty_histogram_quantiles_are_none_at_every_q() {
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_bucket_histogram_quantiles_collapse_to_that_bucket() {
        // Every sample in one bucket: all quantiles answer the same value
        // (the bucket's hi, clamped to the observed max), including the
        // out-of-range q values which clamp to [0, 1].
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(300); // bucket [256, 512)
        }
        for q in [-0.5, 0.0, 0.001, 0.5, 0.999, 1.0, 7.0] {
            assert_eq!(h.quantile(q), Some(300), "q={q}");
        }
        assert_eq!(h.nonzero_buckets(), vec![(256, 512, 1000)]);

        // Single *sample* is the degenerate single-bucket case.
        let mut one = Histogram::new();
        one.record(0);
        assert_eq!(one.p50(), Some(0));
        assert_eq!(one.p99(), Some(0));
    }

    #[test]
    fn counts_saturate_instead_of_overflowing() {
        // Record into a histogram already at the count ceiling: both the
        // total and the per-bucket counter must pin at u64::MAX.
        let mut a = Histogram::from_buckets(&[(4, 8, u64::MAX)]);
        assert_eq!(a.count(), u64::MAX);
        a.record(5);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.nonzero_buckets(), vec![(4, 8, u64::MAX)]);
        // Merging two saturated histograms saturates too.
        let b = Histogram::from_buckets(&[(4, 8, u64::MAX), (16, 32, 3)]);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.nonzero_buckets(), vec![(4, 8, u64::MAX), (16, 32, 3)]);
        // from_buckets with triples summing past the ceiling saturates.
        let c = Histogram::from_buckets(&[(1, 2, u64::MAX), (2, 4, u64::MAX)]);
        assert_eq!(c.count(), u64::MAX);
        // Quantiles on a saturated histogram still terminate and answer.
        assert!(c.quantile(0.5).is_some());
    }

    /// Seeded splitmix64 — the same deterministic generator style the
    /// tensor tests use for property inputs.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn from_buckets_round_trip_property() {
        // For 64 seeded random histograms: serialize → rebuild must
        // preserve counts, buckets, and quantile *buckets* exactly.
        let mut state = 0xADA_3E1u64;
        for trial in 0..64u64 {
            let mut h = Histogram::new();
            let samples = (splitmix(&mut state) % 200) as usize;
            for _ in 0..samples {
                // Spread magnitudes across the full bucket range.
                let shift = splitmix(&mut state) % 64;
                h.record(splitmix(&mut state) >> shift);
            }
            let buckets = h.nonzero_buckets();
            let rebuilt = Histogram::from_buckets(&buckets);
            assert_eq!(rebuilt.count(), h.count(), "trial {trial}");
            assert_eq!(rebuilt.nonzero_buckets(), buckets, "trial {trial}");
            // A second round-trip is a fixed point: bucket data is all
            // that survives the wire, so nothing more can be lost.
            let again = Histogram::from_buckets(&rebuilt.nonzero_buckets());
            assert_eq!(again.count(), rebuilt.count(), "trial {trial}");
            assert_eq!(again.sum(), rebuilt.sum(), "trial {trial}");
            assert_eq!(again.min(), rebuilt.min(), "trial {trial}");
            assert_eq!(again.max(), rebuilt.max(), "trial {trial}");
            assert_eq!(again.nonzero_buckets(), rebuilt.nonzero_buckets(), "trial {trial}");
            for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(again.quantile(q), rebuilt.quantile(q), "trial {trial} q={q}");
                // Original vs rebuilt agree on the quantile's bucket.
                match (h.quantile(q), rebuilt.quantile(q)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        let (lo, hi) = Histogram::bucket_range(Histogram::bucket_index(a));
                        assert!(
                            b >= lo && (b <= hi || Histogram::bucket_index(a) == BUCKETS - 1),
                            "trial {trial} q={q}: rebuilt {b} outside original bucket [{lo},{hi}]"
                        );
                    }
                    (a, b) => panic!("trial {trial} q={q}: emptiness diverged {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut src = Histogram::new();
        for v in [3u64, 99, 0] {
            src.record(v);
        }
        let mut dst = Histogram::new();
        dst.merge(&src);
        assert_eq!(dst.count(), src.count());
        assert_eq!(dst.min(), src.min());
        assert_eq!(dst.max(), src.max());
        assert_eq!(dst.nonzero_buckets(), src.nonzero_buckets());
    }
}
