//! # adamel-obs
//!
//! Std-only observability for the AdaMEL workspace: hierarchical span
//! timers, counters, value statistics, and log2-bucket latency histograms,
//! aggregated process-wide and exportable as one schema-versioned JSON
//! report (see [`report`]) — plus a schema-versioned JSONL *run ledger*
//! ([`runlog`], gated by `ADAMEL_RUNLOG=<path>`) recording what the model
//! did (manifest, per-epoch losses, drift warnings, metrics) rather than
//! where the time went, a logical memory ledger ([`mem`]: named byte
//! gauges with peak tracking, answering "where do the bytes go" without
//! an allocator hook), and a minimal JSON parser ([`json`]) so the
//! `adamel-report` tooling can read everything back.
//!
//! The paper's ablations (PVLDB 14(1), §5) hinge on *per-component*
//! measurements — encoding (Eq. 3–4), attention (Eq. 5–6), classifier
//! (Eq. 7), and the adaptation losses (Eq. 9–14) — so the instrumented hot
//! paths mirror exactly those components, and every future performance PR
//! gets a measured baseline instead of a guess.
//!
//! ## Design rules
//!
//! * **Clocks live here, and only here.** Instrumented crates never call
//!   `Instant::now` themselves (the `no-clock-in-compute` lint forbids it in
//!   deterministic compute paths); they create a span guard whose clock
//!   reads happen at the span boundary inside this crate.
//! * **Off means off.** Capture is gated by the `ADAMEL_TRACE` environment
//!   variable (`off` | `spans` | `full`, read once per process). When off,
//!   every probe is one relaxed atomic load and a predicted branch — no
//!   allocation, no lock, no clock read. Compiling with
//!   `--no-default-features` (dropping the `capture` feature) removes the
//!   probes entirely.
//! * **Observation never changes results.** The layer only ever *reads*
//!   timing and writes side tables; no compute path branches on it.
//!
//! ## Levels
//!
//! | `ADAMEL_TRACE` | effect |
//! |---|---|
//! | unset, `off`, `0` | nothing is recorded |
//! | `spans`, `1` | coarse spans (predict, forward phases, train epoch, …), counters, value stats |
//! | `full`, `2` | adds a span per autograd tape op and per-op telemetry |
//!
//! ## Example
//!
//! ```
//! use adamel_obs as obs;
//!
//! obs::set_forced(Some(obs::TraceLevel::Spans)); // tests/benches; normally ADAMEL_TRACE
//! {
//!     let _outer = obs::span("load");
//!     let _inner = obs::span("parse"); // recorded as "load/parse"
//! }
//! obs::counter_add("records", 42);
//! obs::record_value("batch_loss", 0.25);
//!
//! let json = obs::report::render_json();
//! assert!(json.contains("\"adamel-obs/v1\""));
//! assert!(json.contains("load/parse"));
//! obs::set_forced(None);
//! obs::report::reset();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod level;
mod registry;
mod span;

pub mod json;
pub mod mem;
pub mod report;
pub mod runlog;

pub use hist::Histogram;
pub use level::{enabled, level, set_forced, TraceLevel};
pub use registry::{counter_add, counter_value, record_value, value_stat, ValueStat};
pub use span::{op_span, span, spans_entered, SpanGuard};

/// Opens a coarse span (active at [`TraceLevel::Spans`] and above) that
/// lasts until the end of the enclosing block.
///
/// Expands to a guard binding; when tracing is off the guard is inert and
/// the whole expansion costs one relaxed atomic load. Without the `capture`
/// feature it compiles to nothing at all.
///
/// # Examples
///
/// ```
/// fn hot_path() {
///     adamel_obs::trace_span!("hot_path");
///     // ... timed work ...
/// }
/// hot_path();
/// ```
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        let _adamel_obs_span = $crate::span($name);
    };
}

/// Opens a per-operation span (active only at [`TraceLevel::Full`]) that
/// lasts until the end of the enclosing block.
///
/// Used by the autograd tape: one guard per tape op, so `full` traces show
/// where a forward/backward pass spends its time. Same cost model as
/// [`trace_span!`].
///
/// # Examples
///
/// ```
/// fn matmul_like_op() {
///     adamel_obs::trace_op!("matmul");
///     // ... kernel ...
/// }
/// matmul_like_op();
/// ```
#[macro_export]
macro_rules! trace_op {
    ($name:expr) => {
        let _adamel_obs_op = $crate::op_span($name);
    };
}

/// Adds `delta` to the named monotonic counter when tracing is enabled.
///
/// # Examples
///
/// ```
/// adamel_obs::trace_count!("rows_scored", 128);
/// ```
#[macro_export]
macro_rules! trace_count {
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

/// Records one observation of the named value statistic when tracing is
/// enabled.
///
/// # Examples
///
/// ```
/// adamel_obs::trace_value!("epoch_loss", 0.173);
/// ```
#[macro_export]
macro_rules! trace_value {
    ($name:expr, $value:expr) => {
        $crate::record_value($name, $value)
    };
}
