//! A logical memory ledger: named byte gauges with peak tracking.
//!
//! This is **not** an allocator hook — no `GlobalAlloc`, no unsafe, no
//! per-allocation interception. Instead, every subsystem that *owns* a
//! meaningful chunk of bytes (buffer pools, packing arenas, encode caches,
//! vocab tables, snapshots, bounded queues) reports its logical footprint
//! into a named gauge. The result answers "where do the bytes go" at the
//! granularity an operator can act on, while staying deterministic,
//! std-only, and free when tracing is off.
//!
//! Two reporting styles coexist:
//!
//! * **Flow** ([`add`] / [`sub`], or the RAII [`MemScope`]): for owners
//!   whose footprint changes incrementally, like a queue gaining and
//!   losing items. A [`MemScope`] remembers exactly how many bytes it
//!   added, so an `ADAMEL_TRACE` flip between its construction and drop
//!   can never unbalance a gauge.
//! * **Absolute** ([`observe`]): for owners that can cheaply compute
//!   their total footprint at a natural boundary (an arena after packing,
//!   a cache after a build). `observe` *sets* the current value and
//!   raises the peak, so a gauge that was blind while tracing was off
//!   self-heals on the first enabled observation.
//!
//! Like every other probe in this crate: when tracing is off each call is
//! one relaxed atomic load, and without the `capture` feature the whole
//! ledger compiles away. Gauges render into the JSON report as the
//! schema-versioned `"mem"` section (see [`crate::report`]).
//!
//! # Examples
//!
//! ```
//! use adamel_obs as obs;
//!
//! obs::set_forced(Some(obs::TraceLevel::Spans));
//! obs::report::reset();
//! obs::mem::add("doc.pool", 4096);
//! obs::mem::sub("doc.pool", 1024);
//! assert_eq!(obs::mem::current("doc.pool"), Some(3072));
//! assert_eq!(obs::mem::peak("doc.pool"), Some(4096));
//! obs::set_forced(None);
//! obs::report::reset();
//! ```

use crate::level::enabled;
use crate::registry;

/// One named gauge: the current logical byte count and its high-water
/// mark since the last [`crate::report::reset`] / [`reset_peaks`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemGauge {
    /// Bytes currently attributed to this gauge.
    pub current: u64,
    /// Largest value `current` has held.
    pub peak: u64,
}

impl MemGauge {
    fn add(&mut self, bytes: u64) {
        self.current = self.current.saturating_add(bytes);
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    fn sub(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    fn observe(&mut self, bytes: u64) {
        self.current = bytes;
        if bytes > self.peak {
            self.peak = bytes;
        }
    }
}

/// Adds `bytes` to the named gauge, raising its peak if needed. No-op
/// when tracing is off.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::mem::add("doc.add", 10);
/// obs::mem::add("doc.add", 5);
/// assert_eq!(obs::mem::current("doc.add"), Some(15));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn add(name: &str, bytes: u64) {
    if !enabled() || bytes == 0 {
        return;
    }
    let mut reg = registry::lock();
    reg.mem.entry(name.to_string()).or_default().add(bytes);
}

/// Subtracts `bytes` from the named gauge (saturating at zero — a gauge
/// that missed its `add` while tracing was off must not underflow). The
/// peak is untouched. No-op when tracing is off.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::mem::sub("doc.sub", 100); // never added: clamps at 0
/// assert_eq!(obs::mem::current("doc.sub"), Some(0));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn sub(name: &str, bytes: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry::lock();
    reg.mem.entry(name.to_string()).or_default().sub(bytes);
}

/// Sets the named gauge's current value to `bytes` (absolute footprint)
/// and raises the peak if needed. For owners that recompute their total
/// at a natural boundary; unlike [`add`]/[`sub`] an absolute observation
/// is correct even if every earlier change happened while tracing was
/// off. No-op when tracing is off.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::mem::observe("doc.arena", 4096);
/// obs::mem::observe("doc.arena", 1024); // shrank; peak remembers
/// assert_eq!(obs::mem::current("doc.arena"), Some(1024));
/// assert_eq!(obs::mem::peak("doc.arena"), Some(4096));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn observe(name: &str, bytes: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry::lock();
    reg.mem.entry(name.to_string()).or_default().observe(bytes);
}

/// The current value of a gauge, or `None` if it was never touched (or
/// tracing was off every time it would have been).
pub fn current(name: &str) -> Option<u64> {
    registry::lock().mem.get(name).map(|g| g.current)
}

/// The peak value of a gauge, or `None` if it was never touched.
pub fn peak(name: &str) -> Option<u64> {
    registry::lock().mem.get(name).map(|g| g.peak)
}

/// All gauges in name order, as owned `(name, gauge)` pairs — the same
/// order the JSON report serializes.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::mem::add("doc.snap.b", 2);
/// obs::mem::add("doc.snap.a", 1);
/// let names: Vec<String> = obs::mem::snapshot().into_iter().map(|(n, _)| n).collect();
/// assert_eq!(names, vec!["doc.snap.a".to_string(), "doc.snap.b".to_string()]);
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn snapshot() -> Vec<(String, MemGauge)> {
    registry::lock().mem.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Sum of every gauge's peak (saturating). This is the "logical
/// high-water mark" a bench row reports as `peak_bytes`; peaks of
/// different gauges may not be simultaneous, so the total is an upper
/// bound on the true combined footprint.
pub fn peak_total() -> u64 {
    registry::lock().mem.values().fold(0u64, |acc, g| acc.saturating_add(g.peak))
}

/// Resets every gauge's peak to its current value, starting a fresh
/// peak-measurement window without losing live balances. Bench harnesses
/// call this between rows so each row's `peak_bytes` reflects only that
/// row's work.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::mem::add("doc.window", 100);
/// obs::mem::sub("doc.window", 100);
/// assert_eq!(obs::mem::peak("doc.window"), Some(100));
/// obs::mem::reset_peaks();
/// assert_eq!(obs::mem::peak("doc.window"), Some(0));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn reset_peaks() {
    let mut reg = registry::lock();
    for g in reg.mem.values_mut() {
        g.peak = g.current;
    }
}

/// RAII gauge credit: adds `bytes` to a gauge on construction and
/// subtracts the *same amount it actually added* on drop. If tracing was
/// off at construction the scope is inert — it records zero and
/// subtracts zero — so flipping `ADAMEL_TRACE` mid-flight can never
/// drive a gauge negative or leak phantom bytes.
///
/// The scope is `Send`, so it can travel with the value it accounts for
/// (e.g. ride alongside a queued item across threads).
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// {
///     let _queued = obs::mem::MemScope::new("doc.queue", 256);
///     assert_eq!(obs::mem::current("doc.queue"), Some(256));
/// }
/// assert_eq!(obs::mem::current("doc.queue"), Some(0));
/// assert_eq!(obs::mem::peak("doc.queue"), Some(256));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
#[derive(Debug)]
#[must_use = "the gauge credit is released when this scope drops"]
pub struct MemScope {
    name: Option<String>,
    bytes: u64,
}

impl MemScope {
    /// Credits `bytes` to `name` now; the credit is released on drop.
    /// Inert (records nothing, releases nothing) when tracing is off at
    /// construction.
    pub fn new(name: &str, bytes: u64) -> Self {
        if !enabled() || bytes == 0 {
            return MemScope { name: None, bytes: 0 };
        }
        add(name, bytes);
        MemScope { name: Some(name.to_string()), bytes }
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            sub(&name, self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_forced, TraceLevel};
    use std::sync::Mutex;

    /// Registry and forced level are process-global; serialize tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn reset_registry() {
        let mut reg = registry::lock();
        reg.spans.clear();
        reg.counters.clear();
        reg.values.clear();
        reg.mem.clear();
    }

    #[test]
    fn add_sub_track_current_and_peak() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        add("t.gauge", 100);
        add("t.gauge", 50);
        sub("t.gauge", 120);
        assert_eq!(current("t.gauge"), Some(30));
        assert_eq!(peak("t.gauge"), Some(150));
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn sub_saturates_at_zero() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        sub("t.under", 10);
        assert_eq!(current("t.under"), Some(0));
        add("t.over", u64::MAX);
        add("t.over", u64::MAX);
        assert_eq!(current("t.over"), Some(u64::MAX));
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn observe_sets_current_and_raises_peak_only() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        observe("t.abs", 4096);
        observe("t.abs", 512);
        assert_eq!(current("t.abs"), Some(512));
        assert_eq!(peak("t.abs"), Some(4096));
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Off));
        reset_registry();
        add("t.off", 1);
        observe("t.off", 1);
        let scope = MemScope::new("t.off", 1);
        drop(scope);
        assert_eq!(current("t.off"), None);
        assert!(snapshot().is_empty());
        assert_eq!(peak_total(), 0);
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn scope_constructed_while_off_stays_inert_after_enable() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Off));
        reset_registry();
        let scope = MemScope::new("t.flip", 777);
        // Tracing turns on while the scope is live: its drop must not
        // subtract bytes it never added.
        set_forced(Some(TraceLevel::Spans));
        add("t.flip", 100);
        drop(scope);
        assert_eq!(current("t.flip"), Some(100));
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn peak_total_and_reset_peaks_window_the_high_water_mark() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        add("t.a", 100);
        sub("t.a", 100);
        add("t.b", 40);
        assert_eq!(peak_total(), 140);
        reset_peaks();
        assert_eq!(peak_total(), 40, "live balance survives, transient peak does not");
        assert_eq!(current("t.b"), Some(40));
        set_forced(None);
        reset_registry();
    }
}
