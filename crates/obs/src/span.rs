//! Hierarchical span timers.
//!
//! Each thread keeps a path string (`"predict/forward/attention_head"`)
//! in thread-local storage. Opening a span appends `/name`, closing it
//! (the guard's `Drop`) records the elapsed nanoseconds into the registry
//! under the full path and truncates the path back. Clock reads —
//! `Instant::now` at open and close — happen only inside this module,
//! which is what keeps the `no-clock-in-compute` lint clean in the
//! instrumented tensor/model crates.
//!
//! Spans opened on worker threads (e.g. inside the scoped-thread runtime)
//! root at their own name rather than under the caller's path: the path
//! stack is thread-local and workers start with it empty. That is by
//! design — per-worker spans aggregate under a stable top-level path
//! instead of an arbitrary parent.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::level::{level, TraceLevel};
use crate::registry::record_span;

thread_local! {
    /// This thread's current span path, `/`-separated, no leading slash.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Total spans entered process-wide since start (all threads, all levels
/// that were active at entry). Cheap liveness probe for tests asserting
/// that `ADAMEL_TRACE=off` really records nothing.
static SPANS_ENTERED: AtomicU64 = AtomicU64::new(0);

/// Number of spans entered process-wide since the process started. Not
/// reset by [`crate::report::reset`] — it is a lifetime odometer, useful
/// for "did anything record between these two points" assertions.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Off));
/// let before = obs::spans_entered();
/// {
///     let _s = obs::span("invisible"); // off: not counted, not recorded
/// }
/// assert_eq!(obs::spans_entered(), before);
/// obs::set_forced(None);
/// ```
pub fn spans_entered() -> u64 {
    SPANS_ENTERED.load(Ordering::Relaxed)
}

struct ActiveSpan {
    start: Instant,
    /// Length of the thread's path string before this span appended to
    /// it; `Drop` truncates back to this.
    prev_len: usize,
}

/// Guard for an open span; the span closes (and its duration is recorded)
/// when the guard drops. Inert — a no-op `Drop` — when tracing was below
/// the span's level at entry.
///
/// Create via [`span`] / [`op_span`] or the [`crate::trace_span!`] /
/// [`crate::trace_op!`] macros.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// {
///     let _outer = obs::span("encode");
///     let _inner = obs::span("tokenize"); // records as "encode/tokenize"
/// }
/// assert!(obs::report::render_json().contains("encode/tokenize"));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
#[must_use = "the span closes when this guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            // Clamp to u64 (585 years of nanoseconds) rather than panic.
            let nanos = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            PATH.with(|p| {
                let mut path = p.borrow_mut();
                record_span(&path, nanos);
                path.truncate(active.prev_len);
            });
        }
    }
}

fn enter(name: &str) -> SpanGuard {
    SPANS_ENTERED.fetch_add(1, Ordering::Relaxed);
    let prev_len = PATH.with(|p| {
        let mut path = p.borrow_mut();
        let prev_len = path.len();
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(name);
        prev_len
    });
    SpanGuard(Some(ActiveSpan { start: Instant::now(), prev_len }))
}

/// Opens a coarse span, active at [`TraceLevel::Spans`] and above. When
/// tracing is off the returned guard is inert and the call costs one
/// relaxed atomic load.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// {
///     let _s = obs::span("predict");
/// }
/// assert!(obs::report::render_json().contains("\"predict\""));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if level() >= TraceLevel::Spans {
        enter(name)
    } else {
        SpanGuard(None)
    }
}

/// Opens a per-tape-op span, active only at [`TraceLevel::Full`]. The
/// autograd tape calls this for every op it records, so `full` traces
/// show where a forward/backward pass spends its time — and `spans`
/// traces skip the per-op overhead entirely.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// {
///     let _s = obs::op_span("matmul"); // below Full: inert
/// }
/// assert!(!obs::report::render_json().contains("matmul"));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
#[inline]
pub fn op_span(name: &str) -> SpanGuard {
    if level() >= TraceLevel::Full {
        enter(name)
    } else {
        SpanGuard(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::set_forced;
    use crate::registry;
    use std::sync::Mutex;

    /// Registry, path TLS, and forced level are shared; serialize tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn reset_registry() {
        let mut reg = registry::lock();
        reg.spans.clear();
        reg.counters.clear();
        reg.values.clear();
        reg.mem.clear();
    }

    fn span_count(path: &str) -> u64 {
        registry::lock().spans.get(path).map(|h| h.count()).unwrap_or(0)
    }

    #[test]
    fn nested_spans_build_paths_and_unwind() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        {
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
            }
            // Siblings after unwind land back under "a".
            let _d = span("d");
        }
        assert_eq!(span_count("a"), 1);
        assert_eq!(span_count("a/b"), 1);
        assert_eq!(span_count("a/b/c"), 1);
        assert_eq!(span_count("a/d"), 1);
        // Path fully unwound: a fresh root span has no prefix.
        {
            let _e = span("e");
        }
        assert_eq!(span_count("e"), 1);
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn op_spans_gate_on_full() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        {
            let _op = op_span("op_at_spans");
        }
        assert_eq!(span_count("op_at_spans"), 0);
        set_forced(Some(TraceLevel::Full));
        {
            let _op = op_span("op_at_full");
        }
        assert_eq!(span_count("op_at_full"), 1);
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn off_spans_do_not_touch_path_or_odometer() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Off));
        reset_registry();
        let before = spans_entered();
        {
            let _s = span("ghost");
            let _o = op_span("ghost_op");
        }
        assert_eq!(spans_entered(), before);
        assert_eq!(span_count("ghost"), 0);
        // An inert guard must leave the path untouched for later spans.
        set_forced(Some(TraceLevel::Spans));
        {
            let _s = span("after_off");
        }
        assert_eq!(span_count("after_off"), 1);
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn repeated_spans_aggregate_into_one_histogram() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        for _ in 0..10 {
            let _s = span("hot");
        }
        assert_eq!(span_count("hot"), 10);
        set_forced(None);
        reset_registry();
    }
}
