//! Trace-level policy: `ADAMEL_TRACE` parsing and runtime overrides.
//!
//! Mirrors the `ADAMEL_SANITIZE` machinery in `adamel_tensor::sanitize`:
//! the environment is read once per process, a forced override (for tests
//! and benches) lives in one atomic, and the fast path — [`level`] when
//! tracing is off — is a single relaxed load plus a cached read.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much the observability layer records. Levels are ordered:
/// `Off < Spans < Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing; every probe is an early return.
    Off,
    /// Coarse spans (predict, forward phases, train epochs, linking),
    /// counters, and value statistics.
    Spans,
    /// Everything in `Spans`, plus one span per autograd tape op.
    Full,
}

impl TraceLevel {
    /// The level's canonical lowercase name (`"off"` / `"spans"` /
    /// `"full"`), as accepted by `ADAMEL_TRACE` and emitted in reports.
    ///
    /// # Examples
    ///
    /// ```
    /// assert_eq!(adamel_obs::TraceLevel::Full.name(), "full");
    /// ```
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Full => "full",
        }
    }
}

/// Runtime override state: 0 = follow the environment, 1 = forced off,
/// 2 = forced spans, 3 = forced full.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Forces the trace level (`Some`) or restores the `ADAMEL_TRACE`
/// environment default (`None`). Process-global: intended for benches (the
/// `perfjson --obs` exercise pass) and isolated test binaries, not for
/// toggling mid-run — spans opened under one level still close correctly
/// under another, but the report then mixes detail levels.
///
/// # Examples
///
/// ```
/// use adamel_obs::{level, set_forced, TraceLevel};
///
/// set_forced(Some(TraceLevel::Full));
/// assert_eq!(level(), TraceLevel::Full);
/// set_forced(None); // back to the ADAMEL_TRACE default
/// ```
pub fn set_forced(forced: Option<TraceLevel>) {
    let v = match forced {
        None => 0,
        Some(TraceLevel::Off) => 1,
        Some(TraceLevel::Spans) => 2,
        Some(TraceLevel::Full) => 3,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// `ADAMEL_TRACE` parsed once: `off`/`0` (and unset or unrecognized) map to
/// `Off`, `spans`/`1` to `Spans`, `full`/`2` to `Full`.
fn env_default() -> TraceLevel {
    static DEFAULT: OnceLock<TraceLevel> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("ADAMEL_TRACE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "spans" | "1" => TraceLevel::Spans,
            "full" | "2" => TraceLevel::Full,
            _ => TraceLevel::Off,
        },
        Err(_) => TraceLevel::Off,
    })
}

/// The current trace level. See the crate docs for the level table.
///
/// # Examples
///
/// ```
/// // With neither ADAMEL_TRACE nor a forced override, tracing is off.
/// adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Off));
/// assert_eq!(adamel_obs::level(), adamel_obs::TraceLevel::Off);
/// adamel_obs::set_forced(None);
/// ```
#[inline]
pub fn level() -> TraceLevel {
    if cfg!(not(feature = "capture")) {
        return TraceLevel::Off;
    }
    match FORCED.load(Ordering::Relaxed) {
        1 => TraceLevel::Off,
        2 => TraceLevel::Spans,
        3 => TraceLevel::Full,
        _ => env_default(),
    }
}

/// True when anything at all is being recorded (`level() != Off`).
///
/// Instrumented code uses this to skip *computing* telemetry inputs (e.g.
/// an extra gradient-norm pass) — recording calls are already self-gated.
///
/// # Examples
///
/// ```
/// adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Spans));
/// assert!(adamel_obs::enabled());
/// adamel_obs::set_forced(None);
/// ```
#[inline]
pub fn enabled() -> bool {
    level() != TraceLevel::Off
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Forced state is process-global; tests that touch it serialize here.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Full);
    }

    #[test]
    fn forced_levels_round_trip() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        for l in [TraceLevel::Off, TraceLevel::Spans, TraceLevel::Full] {
            set_forced(Some(l));
            assert_eq!(level(), l);
            assert_eq!(enabled(), l != TraceLevel::Off);
        }
        set_forced(None);
    }

    #[test]
    fn names_match_env_grammar() {
        assert_eq!(TraceLevel::Off.name(), "off");
        assert_eq!(TraceLevel::Spans.name(), "spans");
        assert_eq!(TraceLevel::Full.name(), "full");
    }
}
