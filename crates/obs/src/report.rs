//! JSON export of the process-wide registry.
//!
//! The report is schema-versioned (`"schema": "adamel-obs/v1"`) and built
//! with the same hand-written JSON style as the `perfjson` bench binary,
//! so an obs report embeds directly into `BENCH_*.json` files (see
//! `perfjson --obs`). All maps serialize in `BTreeMap` order, so two runs
//! that record the same metrics produce byte-identical key ordering.
//!
//! ## Schema (`adamel-obs/v1`)
//!
//! ```json
//! {
//!   "schema": "adamel-obs/v1",
//!   "level": "full",
//!   "spans_entered": 123,
//!   "spans": {
//!     "predict/forward": {
//!       "count": 4, "total_ms": 1.5, "mean_ns": 375000,
//!       "min_ns": 10, "max_ns": 900000,
//!       "p50_ns": 131072, "p90_ns": 900000, "p99_ns": 900000,
//!       "buckets": [[65536, 131072, 3], [524288, 1048576, 1]]
//!     }
//!   },
//!   "counters": { "encode.pairs": 1024 },
//!   "values": {
//!     "train.loss_epoch": { "count": 3, "mean": 0.4, "min": 0.3,
//!                            "max": 0.5, "last": 0.3 }
//!   },
//!   "mem": {
//!     "schema": "adamel-mem/v1",
//!     "gauges": { "tensor.pool.bytes": { "current": 8192, "peak": 16384 } }
//!   }
//! }
//! ```
//!
//! Span durations are nanoseconds; `buckets` lists only non-empty
//! log2 buckets as `[lo, hi, count]`. The `mem` section carries the
//! logical memory ledger (see [`crate::mem`]); its gauges are plain
//! byte gauges, nested under their own schema tag so memory-gate
//! tooling can version them independently of the span report.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::hist::Histogram;
use crate::json::{escape, fmt_f64 as json_f64};
use crate::level::level;
use crate::registry;
use crate::span::spans_entered;

/// Report schema identifier embedded in every export.
pub const SCHEMA: &str = "adamel-obs/v1";

/// Schema identifier of the nested `"mem"` (memory ledger) section.
pub const MEM_SCHEMA: &str = "adamel-mem/v1";

fn span_json(h: &Histogram) -> String {
    let mut s = String::new();
    let total_ms = h.sum() as f64 / 1e6;
    let _ = write!(
        s,
        "{{\"count\": {}, \"total_ms\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
        h.count(),
        json_f64(total_ms),
        json_f64(h.mean().unwrap_or(0.0)),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.p50().unwrap_or(0),
        h.p90().unwrap_or(0),
        h.p99().unwrap_or(0),
    );
    for (i, (lo, hi, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "[{lo}, {hi}, {count}]");
    }
    s.push_str("]}");
    s
}

/// Renders the current registry contents as a schema-versioned JSON
/// object (see the module docs for the schema). Does not reset anything;
/// call [`reset`] separately to start a fresh window.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::counter_add("doc.report", 1);
/// let json = obs::report::render_json();
/// assert!(json.contains("\"schema\": \"adamel-obs/v1\""));
/// assert!(json.contains("\"doc.report\": 1"));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn render_json() -> String {
    let reg = registry::lock();
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\n  \"schema\": \"{}\",\n  \"level\": \"{}\",\n  \"spans_entered\": {},",
        SCHEMA,
        level().name(),
        spans_entered()
    );

    out.push_str("\n  \"spans\": {");
    for (i, (path, hist)) in reg.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(path), span_json(hist));
    }
    if !reg.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},");

    out.push_str("\n  \"counters\": {");
    for (i, (name, total)) in reg.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(name), total);
    }
    if !reg.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},");

    out.push_str("\n  \"values\": {");
    for (i, (name, stat)) in reg.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"last\": {}}}",
            escape(name),
            stat.count,
            json_f64(stat.mean().unwrap_or(0.0)),
            json_f64(stat.min),
            json_f64(stat.max),
            json_f64(stat.last),
        );
    }
    if !reg.values.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},");

    let _ = write!(out, "\n  \"mem\": {{\"schema\": \"{MEM_SCHEMA}\", \"gauges\": {{");
    for (i, (name, gauge)) in reg.mem.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"current\": {}, \"peak\": {}}}",
            escape(name),
            gauge.current,
            gauge.peak,
        );
    }
    if !reg.mem.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}}\n}");
    out
}

/// The recorded spans whose full path starts with `prefix`, each rendered
/// as the same JSON stats object the report's `"spans"` section uses
/// (`count`/`total_ms`/percentiles/`buckets`), in path order. Lets a
/// service surface a focused slice of the registry — e.g. per-endpoint
/// request-latency histograms — without re-parsing the full report.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// {
///     let _s = obs::span("doc.prefix.get");
/// }
/// let spans = obs::report::spans_with_prefix("doc.prefix.");
/// assert_eq!(spans.len(), 1);
/// assert_eq!(spans[0].0, "doc.prefix.get");
/// assert!(spans[0].1.contains("\"count\": 1"));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn spans_with_prefix(prefix: &str) -> Vec<(String, String)> {
    let reg = registry::lock();
    reg.spans
        .iter()
        .filter(|(path, _)| path.starts_with(prefix))
        .map(|(path, hist)| (path.clone(), span_json(hist)))
        .collect()
}

/// Writes [`render_json`] output to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error (unwritable path, full
/// disk, …).
pub fn write_json(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_json())
}

/// Clears all spans, counters, and values, starting a fresh measurement
/// window. The [`spans_entered`] odometer is *not* reset — it counts for
/// the process lifetime.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::counter_add("doc.reset", 1);
/// obs::report::reset();
/// assert_eq!(obs::counter_value("doc.reset"), None);
/// obs::set_forced(None);
/// ```
pub fn reset() {
    let mut reg = registry::lock();
    reg.spans.clear();
    reg.counters.clear();
    reg.values.clear();
    reg.mem.clear();
}

/// Drop guard that writes the JSON report when it goes out of scope —
/// bind one at the top of `main` to get a report even on early return.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// // In main():  let _report = obs::report::ExitReport::from_env();
/// // With ADAMEL_TRACE_REPORT=/tmp/obs.json set, the report lands there
/// // when main returns. Without it, the guard is inert:
/// let guard = obs::report::ExitReport::from_env();
/// drop(guard);
/// ```
pub struct ExitReport {
    path: Option<String>,
}

impl ExitReport {
    /// A guard that writes the report to `path` on drop.
    pub fn new(path: &str) -> Self {
        ExitReport { path: Some(path.to_string()) }
    }

    /// A guard wired to the `ADAMEL_TRACE_REPORT` environment variable:
    /// if set (and non-empty), the report is written to that path on
    /// drop; otherwise the guard does nothing.
    pub fn from_env() -> Self {
        ExitReport { path: std::env::var("ADAMEL_TRACE_REPORT").ok().filter(|p| !p.is_empty()) }
    }
}

impl Drop for ExitReport {
    fn drop(&mut self) {
        static WROTE: AtomicBool = AtomicBool::new(false);
        if let Some(path) = self.path.take() {
            // First guard to drop wins; duplicates (e.g. one per bin in a
            // test harness) silently skip rather than clobber.
            if WROTE.swap(true, Ordering::Relaxed) {
                return;
            }
            if let Err(e) = write_json(&path) {
                eprintln!("adamel-obs: failed to write report to {path}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_forced, TraceLevel};
    use crate::{counter_add, record_value, span};
    use std::sync::Mutex;

    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn report_contains_schema_and_all_sections() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset();
        {
            let _outer = span("r_outer");
            let _inner = span("r_inner");
        }
        counter_add("r.counter", 9);
        record_value("r.value", 1.5);
        crate::mem::add("r.mem", 2048);
        crate::mem::sub("r.mem", 1024);
        let json = render_json();
        assert!(json.contains("\"schema\": \"adamel-obs/v1\""));
        assert!(json.contains("\"r_outer\""));
        assert!(json.contains("\"r_outer/r_inner\""));
        assert!(json.contains("\"r.counter\": 9"));
        assert!(json.contains("\"r.value\""));
        assert!(json.contains("\"last\": 1.5"));
        assert!(json.contains("\"mem\": {\"schema\": \"adamel-mem/v1\""));
        assert!(json.contains("\"r.mem\": {\"current\": 1024, \"peak\": 2048}"));
        set_forced(None);
        reset();
    }

    #[test]
    fn empty_report_is_well_formed() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Off));
        reset();
        let json = render_json();
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"values\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.ends_with('}'));
        crate::json::Json::parse(&json).expect("empty report parses as JSON");
        set_forced(None);
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn json_f64_maps_nonfinite_to_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
