//! Process-wide metric registry: spans, counters, and value statistics.
//!
//! One `static Mutex<Registry>` guards three `BTreeMap`s (deterministic
//! iteration order, per the `hashmap-order` lint). The lock is taken only
//! when a span *closes* or a counter/value is recorded while tracing is
//! enabled — never on the `ADAMEL_TRACE=off` fast path — and is held for
//! a handful of map operations, so contention is bounded by how often
//! spans close, not by how long the work inside them runs.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::hist::Histogram;
use crate::level::enabled;
use crate::mem::MemGauge;

/// Running statistics over every observation of a named value: count,
/// sum, min, max, and the most recent sample.
///
/// Unlike counters (monotonic `u64` totals), value stats carry `f64`
/// observations — losses, gradient norms, support-weight means — where
/// the distribution matters more than the total.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::record_value("doc.loss", 0.5);
/// obs::record_value("doc.loss", 0.25);
/// let s = obs::value_stat("doc.loss").expect("recorded above");
/// assert_eq!(s.count, 2);
/// assert_eq!(s.sum, 0.75);
/// assert_eq!(s.last, 0.25);
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ValueStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Most recent observation.
    pub last: f64,
}

impl ValueStat {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.last = v;
    }

    /// Mean of all observations, or `None` if nothing was recorded.
    ///
    /// # Examples
    ///
    /// ```
    /// use adamel_obs as obs;
    ///
    /// obs::set_forced(Some(obs::TraceLevel::Spans));
    /// obs::report::reset();
    /// obs::record_value("doc.mean", 1.0);
    /// obs::record_value("doc.mean", 3.0);
    /// let s = obs::value_stat("doc.mean").expect("recorded above");
    /// assert_eq!(s.mean(), Some(2.0));
    /// obs::set_forced(None);
    /// obs::report::reset();
    /// ```
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// The aggregated state behind the process-wide registry lock.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    /// Span-path → latency histogram (nanoseconds).
    pub(crate) spans: BTreeMap<String, Histogram>,
    /// Counter name → monotonic total.
    pub(crate) counters: BTreeMap<String, u64>,
    /// Value name → running statistics.
    pub(crate) values: BTreeMap<String, ValueStat>,
    /// Memory gauge name → current/peak logical bytes.
    pub(crate) mem: BTreeMap<String, MemGauge>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    spans: BTreeMap::new(),
    counters: BTreeMap::new(),
    values: BTreeMap::new(),
    mem: BTreeMap::new(),
});

/// Locks the registry, recovering from poison: the registry holds plain
/// aggregates (no invariants spanning multiple operations), so data
/// written before a panicking thread died is still valid to read and
/// extend.
pub(crate) fn lock() -> MutexGuard<'static, Registry> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Records a closed span's duration under its full path. Called from the
/// span guard's `Drop` — instrumented crates never call this directly.
pub(crate) fn record_span(path: &str, nanos: u64) {
    let mut reg = lock();
    reg.spans.entry(path.to_string()).or_default().record(nanos);
}

/// Adds `delta` to the named monotonic counter. No-op when tracing is off.
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::counter_add("doc.rows", 10);
/// obs::counter_add("doc.rows", 5);
/// assert_eq!(obs::counter_value("doc.rows"), Some(15));
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = lock();
    let total = reg.counters.entry(name.to_string()).or_insert(0);
    *total = total.saturating_add(delta);
}

/// The current total of a counter, or `None` if it was never incremented
/// (or tracing was off every time it would have been).
pub fn counter_value(name: &str) -> Option<u64> {
    lock().counters.get(name).copied()
}

/// Records one observation of the named value statistic. No-op when
/// tracing is off, and non-finite observations are dropped so a NaN loss
/// can't poison the aggregate (the numerics sanitizer is the layer that
/// *reports* non-finite values; this layer just refuses to absorb them).
///
/// # Examples
///
/// ```
/// use adamel_obs as obs;
///
/// obs::set_forced(Some(obs::TraceLevel::Spans));
/// obs::report::reset();
/// obs::record_value("doc.grad_norm", 2.5);
/// obs::record_value("doc.grad_norm", f64::NAN); // dropped
/// let s = obs::value_stat("doc.grad_norm").expect("recorded above");
/// assert_eq!(s.count, 1);
/// obs::set_forced(None);
/// obs::report::reset();
/// ```
pub fn record_value(name: &str, v: f64) {
    if !enabled() || !v.is_finite() {
        return;
    }
    let mut reg = lock();
    reg.values
        .entry(name.to_string())
        .or_insert(ValueStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        })
        .record(v);
}

/// The running statistics of a named value, or `None` if never recorded.
pub fn value_stat(name: &str) -> Option<ValueStat> {
    lock().values.get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_forced, TraceLevel};
    use std::sync::Mutex as StdMutex;

    /// Registry and forced level are process-global; serialize tests.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn reset_registry() {
        let mut reg = lock();
        reg.spans.clear();
        reg.counters.clear();
        reg.values.clear();
        reg.mem.clear();
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        counter_add("t.count", 3);
        counter_add("t.count", 4);
        assert_eq!(counter_value("t.count"), Some(7));
        counter_add("t.count", u64::MAX);
        assert_eq!(counter_value("t.count"), Some(u64::MAX));
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn values_track_min_max_last_and_drop_nonfinite() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Spans));
        reset_registry();
        record_value("t.val", 2.0);
        record_value("t.val", -1.0);
        record_value("t.val", f64::INFINITY);
        record_value("t.val", f64::NAN);
        record_value("t.val", 0.5);
        let s = value_stat("t.val").expect("three finite samples recorded");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.last, 0.5);
        assert_eq!(s.mean(), Some(0.5));
        set_forced(None);
        reset_registry();
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced(Some(TraceLevel::Off));
        reset_registry();
        counter_add("t.off", 1);
        record_value("t.off", 1.0);
        assert_eq!(counter_value("t.off"), None);
        assert!(value_stat("t.off").is_none());
        set_forced(None);
        reset_registry();
    }
}
