//! The run ledger: a schema-versioned JSONL log of *model* observability.
//!
//! Span timers ([`crate::span`]) answer "where did the time go"; the run
//! ledger answers "what did the model do" — one JSON object per line
//! describing the run manifest (config, seed, threads, trace level),
//! per-epoch training signals (loss components, support-weight stats,
//! attention entropy), per-link-batch inference stats, evaluation metrics,
//! and drift monitor output (see `adamel::drift`). Ledgers from two runs
//! diff against each other with the `adamel-report` binary.
//!
//! ## Activation
//!
//! Writing is gated by `ADAMEL_RUNLOG=<path>` (read once per process,
//! like `ADAMEL_TRACE`) or by [`set_forced_path`] for tests and binaries
//! that cannot rely on process-level environment (the test harness runs
//! many tests in one process). When neither is set, [`enabled`] is false,
//! [`event`] returns an inert builder, and emitting costs one relaxed
//! atomic load — no allocation, no lock, no I/O.
//!
//! ## Determinism
//!
//! Events carry **no timestamps** and no other wall-clock data: two runs
//! with the same seed and config produce byte-identical ledgers, which is
//! what lets `adamel-report diff` gate CI on "zero metric delta" without
//! any tolerance plumbing. Wall-clock information enters a ledger only
//! through the optional embedded obs report (`obs_report` event), which
//! the diff treats as informational.
//!
//! ## Line format (`adamel-runlog/v1`)
//!
//! Every line is a flat-ish JSON object with three reserved keys:
//!
//! ```json
//! {"schema": "adamel-runlog/v1", "seq": 3, "event": "epoch", "epoch": 1, "loss": 0.61}
//! ```
//!
//! `schema` names the line grammar, `seq` increases strictly within a
//! ledger (readers use it to detect truncation/interleaving), and `event`
//! names the payload kind. Everything else is event-specific; see
//! DESIGN.md §12 for the event catalogue.
//!
//! # Examples
//!
//! ```
//! use adamel_obs::runlog;
//!
//! // Disabled (no ADAMEL_RUNLOG, no forced path): builders are inert.
//! runlog::set_forced_path(Some(""));
//! assert!(!runlog::enabled());
//! runlog::event("epoch").num("loss", 0.5).emit(); // no-op, no I/O
//! runlog::set_forced_path(None);
//! ```

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json;

/// Ledger schema identifier embedded in every line.
pub const SCHEMA: &str = "adamel-runlog/v1";

/// Forced-path override state: `None` = follow the environment, `Some`
/// = use this path (empty string = forced off). Guarded by its own mutex
/// because it is written rarely (test setup, binary startup).
static FORCED_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Cached enablement: 0 = unknown (recompute), 1 = disabled, 2 = enabled.
/// Lets [`enabled`] stay a single relaxed load on the hot path.
static ENABLED_CACHE: AtomicU8 = AtomicU8::new(0);

/// Strictly increasing per-process line counter.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-kind counts of emitted (non-inert) ledger events. Long-running
/// services surface these through their metrics endpoint so an operator can
/// see how many `link`/`drift`/`warn` lines the ledger accumulated without
/// tailing the file.
static COUNTS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// The open sink, if any. `Option` so a failed open (or a disable) can
/// park the writer without poisoning future runs.
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// The request trace id bound to this thread, if any; every event
    /// emitted while it is set carries a `"trace_id"` field.
    static TRACE_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII binding of a trace id to the current thread (see [`trace_scope`]).
/// Dropping it restores whatever id was bound before — scopes nest.
#[derive(Debug)]
#[must_use = "the trace id unbinds when this scope drops"]
pub struct TraceScope {
    prev: Option<u64>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        TRACE_ID.with(|c| c.set(self.prev));
    }
}

/// Binds `id` as the current thread's trace id until the returned scope
/// drops. While bound, every ledger line emitted from this thread gains a
/// `"trace_id": id` field, which is how a served request's `link` /
/// `drift` / `warn` events become joinable with its HTTP response and
/// `/metrics` span paths. Ids come from a deterministic request counter,
/// never a clock, so ledgers stay byte-identical across identical runs.
///
/// The binding is thread-local: work handed to other threads (e.g. a
/// parallel scoring pool) is not tagged — only events emitted from the
/// request's own thread are.
///
/// # Examples
///
/// ```
/// use adamel_obs::runlog;
///
/// runlog::set_forced_path(Some("")); // disabled: emit is inert either way
/// {
///     let _t = runlog::trace_scope(7);
///     assert_eq!(runlog::current_trace_id(), Some(7));
///     runlog::event("link").int("scored", 3).emit();
/// }
/// assert_eq!(runlog::current_trace_id(), None);
/// runlog::set_forced_path(None);
/// ```
pub fn trace_scope(id: u64) -> TraceScope {
    let prev = TRACE_ID.with(|c| c.replace(Some(id)));
    TraceScope { prev }
}

/// The trace id currently bound to this thread, if any.
pub fn current_trace_id() -> Option<u64> {
    TRACE_ID.with(Cell::get)
}

/// `ADAMEL_RUNLOG` read once per process; empty counts as unset.
fn env_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| std::env::var("ADAMEL_RUNLOG").ok().filter(|p| !p.is_empty())).as_deref()
}

/// The currently configured ledger path, if any.
fn current_path() -> Option<String> {
    let forced = lock(&FORCED_PATH);
    match forced.as_ref() {
        Some(p) if p.is_empty() => None,
        Some(p) => Some(p.clone()),
        None => env_path().map(str::to_string),
    }
}

/// Forces the ledger destination (`Some(path)`), forces it off
/// (`Some("")`), or restores the `ADAMEL_RUNLOG` environment default
/// (`None`). Process-global, like [`crate::set_forced`]; intended for
/// binaries taking a `--out` flag and for tests, where mutating the
/// environment would race the shared test process.
///
/// Switching paths flushes and closes any open sink; the next emitted
/// event opens the new one. The sequence counter keeps counting across
/// switches (it is per-process, not per-file).
///
/// # Examples
///
/// ```
/// use adamel_obs::runlog;
///
/// runlog::set_forced_path(Some("")); // forced off
/// assert!(!runlog::enabled());
/// runlog::set_forced_path(None); // back to ADAMEL_RUNLOG
/// ```
pub fn set_forced_path(path: Option<&str>) {
    {
        let mut forced = lock(&FORCED_PATH);
        *forced = path.map(str::to_string);
    }
    // Close the old sink (flushing it) and invalidate the cache.
    let old = lock(&SINK).take();
    if let Some(mut w) = old {
        let _ = w.flush();
    }
    ENABLED_CACHE.store(0, Ordering::Relaxed);
}

/// True when a ledger destination is configured. One relaxed atomic load
/// after the first call; instrumented code uses this to skip *computing*
/// ledger-only values (e.g. attention entropy) when no one is listening.
///
/// # Examples
///
/// ```
/// use adamel_obs::runlog;
///
/// runlog::set_forced_path(Some(""));
/// assert!(!runlog::enabled());
/// runlog::set_forced_path(None);
/// ```
#[inline]
pub fn enabled() -> bool {
    // Same contract as `level()`: without the `capture` feature the whole
    // layer (ledger included) compiles down to constant falsehood.
    if cfg!(not(feature = "capture")) {
        return false;
    }
    match ENABLED_CACHE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = current_path().is_some();
            ENABLED_CACHE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Writes one finished line to the sink, opening it on first use. On any
/// I/O error the ledger disables itself for the rest of the process (one
/// stderr note, no panic) — observability must never take the run down.
fn write_line(line: &str) {
    let mut sink = lock(&SINK);
    if sink.is_none() {
        let Some(path) = current_path() else {
            return;
        };
        match File::create(&path) {
            Ok(f) => *sink = Some(BufWriter::new(f)),
            Err(e) => {
                eprintln!("adamel-obs: cannot open run ledger {path}: {e}; disabling");
                ENABLED_CACHE.store(1, Ordering::Relaxed);
                return;
            }
        }
    }
    if let Some(w) = sink.as_mut() {
        // Events are low-frequency (per epoch / per link batch), so flush
        // each line: the ledger stays complete even when the process exits
        // without calling [`flush`] (statics are never dropped).
        if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
            eprintln!("adamel-obs: run ledger write failed; disabling");
            *sink = None;
            ENABLED_CACHE.store(1, Ordering::Relaxed);
        }
    }
}

/// Flushes the sink to disk. Every emitted line is already flushed
/// eagerly (events are low-frequency), so this mainly exists for tests
/// and readers that want an explicit synchronization point.
///
/// # Examples
///
/// ```
/// adamel_obs::runlog::flush(); // harmless when no ledger is open
/// ```
pub fn flush() {
    let mut sink = lock(&SINK);
    if let Some(w) = sink.as_mut() {
        if w.flush().is_err() {
            eprintln!("adamel-obs: run ledger flush failed; disabling");
            *sink = None;
            ENABLED_CACHE.store(1, Ordering::Relaxed);
        }
    }
}

/// Starts a ledger line of the given event kind. When the ledger is
/// disabled the returned builder is inert: every field call is a no-op
/// and [`EventBuilder::emit`] does nothing.
///
/// # Examples
///
/// ```
/// use adamel_obs::runlog;
///
/// runlog::set_forced_path(Some("")); // disabled: builder is inert
/// runlog::event("metric")
///     .str("name", "pr_auc")
///     .num("value", 0.93)
///     .flag("higher_is_better", true)
///     .emit();
/// runlog::set_forced_path(None);
/// ```
pub fn event(kind: &str) -> EventBuilder {
    if !enabled() {
        return EventBuilder { buf: None, kind: String::new() };
    }
    let kind_owned = kind.to_string();
    let mut buf = String::with_capacity(160);
    buf.push_str("{\"schema\": \"");
    buf.push_str(SCHEMA);
    buf.push_str("\", \"event\": \"");
    buf.push_str(&json::escape(kind));
    buf.push('"');
    EventBuilder { buf: Some(buf), kind: kind_owned }
}

/// Per-kind counts of ledger events emitted so far in this process, in
/// kind order. Inert emits (ledger disabled) are not counted. Counts keep
/// accumulating across [`set_forced_path`] switches, like the private
/// per-process sequence counter.
///
/// # Examples
///
/// ```
/// use adamel_obs::runlog;
///
/// runlog::set_forced_path(Some("")); // disabled: inert emits are not counted
/// runlog::event("doctest_only_kind").num("loss", 0.5).emit();
/// assert!(runlog::event_counts().iter().all(|(k, _)| k != "doctest_only_kind"));
/// runlog::set_forced_path(None);
/// ```
pub fn event_counts() -> Vec<(String, u64)> {
    lock(&COUNTS).iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Builder for one ledger line. Field methods append `"key": value`
/// members; [`emit`](Self::emit) stamps the sequence number and writes
/// the line. All methods are no-ops on an inert builder (ledger
/// disabled). Keys are emitted in call order; callers keep key sets
/// stable per event kind so identical runs produce identical bytes.
#[must_use = "an un-emitted event is silently dropped"]
pub struct EventBuilder {
    buf: Option<String>,
    kind: String,
}

impl EventBuilder {
    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(", \"");
            buf.push_str(&json::escape(key));
            buf.push_str("\": \"");
            buf.push_str(&json::escape(value));
            buf.push('"');
        }
        self
    }

    /// Appends a numeric field (non-finite values serialize as `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(", \"");
            buf.push_str(&json::escape(key));
            buf.push_str("\": ");
            buf.push_str(&json::fmt_f64(value));
        }
        self
    }

    /// Appends an unsigned integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(", \"");
            buf.push_str(&json::escape(key));
            buf.push_str("\": ");
            buf.push_str(&value.to_string());
        }
        self
    }

    /// Appends a boolean field.
    pub fn flag(mut self, key: &str, value: bool) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(", \"");
            buf.push_str(&json::escape(key));
            buf.push_str("\": ");
            buf.push_str(if value { "true" } else { "false" });
        }
        self
    }

    /// Appends a field whose value is `raw`, already-valid JSON (an
    /// array or object built by the caller). The caller must ensure
    /// `raw` is a single-line JSON value; newlines would break the
    /// one-event-per-line framing.
    pub fn raw(mut self, key: &str, raw: &str) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(", \"");
            buf.push_str(&json::escape(key));
            buf.push_str("\": ");
            buf.push_str(raw);
        }
        self
    }

    /// Appends an array-of-strings field.
    pub fn str_list(mut self, key: &str, values: &[String]) -> Self {
        if let Some(buf) = self.buf.as_mut() {
            buf.push_str(", \"");
            buf.push_str(&json::escape(key));
            buf.push_str("\": [");
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    buf.push_str(", ");
                }
                buf.push('"');
                buf.push_str(&json::escape(v));
                buf.push('"');
            }
            buf.push(']');
        }
        self
    }

    /// Stamps the thread's trace id (when one is bound — see
    /// [`trace_scope`]) and the sequence number, then writes the line to
    /// the ledger. No-op when the ledger is disabled.
    pub fn emit(self) {
        if let Some(mut buf) = self.buf {
            if let Some(id) = current_trace_id() {
                buf.push_str(", \"trace_id\": ");
                buf.push_str(&id.to_string());
            }
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            buf.push_str(", \"seq\": ");
            buf.push_str(&seq.to_string());
            buf.push('}');
            write_line(&buf);
            *lock(&COUNTS).entry(self.kind).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    /// Forced path + sink are process-global; serialize the tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn tmp_path(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("adamel_runlog_unit_{name}_{}.jsonl", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn disabled_builder_is_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced_path(Some(""));
        assert!(!enabled());
        let seq_before = SEQ.load(Ordering::Relaxed);
        event("epoch").num("loss", 0.5).int("epoch", 1).emit();
        assert_eq!(SEQ.load(Ordering::Relaxed), seq_before, "inert emit must not bump seq");
        set_forced_path(None);
    }

    #[test]
    fn events_are_parseable_jsonl_with_increasing_seq() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = tmp_path("basic");
        set_forced_path(Some(&path));
        assert!(enabled());
        event("manifest").str("variant", "hyb").int("seed", 7).emit();
        event("epoch")
            .int("epoch", 0)
            .num("loss", 0.75)
            .num("bad", f64::NAN)
            .flag("ok", true)
            .str_list("attrs", &["a".into(), "b\"c".into()])
            .emit();
        flush();
        set_forced_path(Some(""));

        let text = std::fs::read_to_string(&path).expect("ledger readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let mut prev_seq = None;
        for line in &lines {
            let v = Json::parse(line).expect("line parses");
            assert_eq!(v.get("schema").and_then(Json::as_str), Some(SCHEMA));
            let seq = v.get("seq").and_then(Json::as_u64).expect("seq present");
            if let Some(p) = prev_seq {
                assert!(seq > p, "seq must increase");
            }
            prev_seq = Some(seq);
        }
        let epoch = Json::parse(lines[1]).expect("parses");
        assert_eq!(epoch.get("event").and_then(Json::as_str), Some("epoch"));
        assert_eq!(epoch.get("loss").and_then(Json::as_f64), Some(0.75));
        assert_eq!(epoch.get("bad"), Some(&Json::Null));
        assert_eq!(epoch.get("ok").and_then(Json::as_bool), Some(true));
        let attrs = epoch.get("attrs").and_then(Json::as_array).expect("attrs");
        assert_eq!(attrs[1].as_str(), Some("b\"c"));

        let _ = std::fs::remove_file(&path);
        set_forced_path(None);
    }

    #[test]
    fn switching_paths_flushes_and_reopens() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = tmp_path("switch_a");
        let b = tmp_path("switch_b");
        set_forced_path(Some(&a));
        event("metric").str("name", "f1").num("value", 0.5).emit();
        set_forced_path(Some(&b)); // closes + flushes a
        event("metric").str("name", "f1").num("value", 0.6).emit();
        flush();
        set_forced_path(Some(""));

        let ta = std::fs::read_to_string(&a).expect("a readable");
        let tb = std::fs::read_to_string(&b).expect("b readable");
        assert!(ta.contains("0.5") && !ta.contains("0.6"));
        assert!(tb.contains("0.6") && !tb.contains("0.5"));
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
        set_forced_path(None);
    }

    #[test]
    fn event_counts_track_emitted_kinds_only() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = tmp_path("counts");
        set_forced_path(Some(&path));
        let before = event_counts()
            .into_iter()
            .find(|(k, _)| k == "counts_probe")
            .map(|(_, n)| n)
            .unwrap_or(0);
        event("counts_probe").int("x", 1).emit();
        event("counts_probe").int("x", 2).emit();
        set_forced_path(Some(""));
        event("counts_probe").int("x", 3).emit(); // inert: must not count
        let after = event_counts()
            .into_iter()
            .find(|(k, _)| k == "counts_probe")
            .map(|(_, n)| n)
            .unwrap_or(0);
        assert_eq!(after - before, 2);
        let _ = std::fs::remove_file(&path);
        set_forced_path(None);
    }

    #[test]
    fn trace_scope_tags_events_and_nests() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = tmp_path("trace");
        set_forced_path(Some(&path));
        event("link").int("scored", 1).emit(); // no scope: no trace_id
        {
            let _outer = trace_scope(41);
            {
                let _inner = trace_scope(42);
                event("link").int("scored", 2).emit();
            }
            event("drift").str("source", "s").emit(); // back to outer id
        }
        assert_eq!(current_trace_id(), None);
        flush();
        set_forced_path(Some(""));

        let text = std::fs::read_to_string(&path).expect("ledger readable");
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).expect("line parses")).collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("trace_id"), None);
        assert_eq!(lines[1].get("trace_id").and_then(Json::as_u64), Some(42));
        assert_eq!(lines[2].get("trace_id").and_then(Json::as_u64), Some(41));
        let _ = std::fs::remove_file(&path);
        set_forced_path(None);
    }

    #[test]
    fn unopenable_path_disables_without_panicking() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_forced_path(Some("/nonexistent-dir-adamel/ledger.jsonl"));
        assert!(enabled(), "path configured, not yet probed");
        event("metric").str("name", "x").emit(); // open fails, disables
        assert!(!enabled(), "failed open must disable the ledger");
        set_forced_path(None);
    }
}
