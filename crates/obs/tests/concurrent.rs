//! Concurrent span aggregation, driven through the workspace's scoped-thread
//! runtime (`adamel_tensor::parallel`) — the `no-thread-spawn` lint forbids
//! spawning threads directly, and the runtime is what production code uses
//! anyway. Aggregated counts must be deterministic at any thread count.

use adamel_obs as obs;
use adamel_tensor::parallel;
use std::sync::Mutex;

/// Trace level and registry are process-global; tests serialize here.
static LOCK: Mutex<()> = Mutex::new(());

fn count_of(json: &str, path: &str) -> Option<u64> {
    // Span entries render as `"<path>": {"count": N, ...`.
    let key = format!("\"{path}\": {{\"count\": ");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[test]
fn concurrent_spans_aggregate_exactly_once_per_item() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_forced(Some(obs::TraceLevel::Spans));
    obs::report::reset();

    let n = 64usize;
    for threads in [1, 2, 4, 7] {
        let results = parallel::with_threads(threads, || {
            parallel::parallel_map_collect(n, 1, |i| {
                let _s = obs::span("worker_item");
                i * 2
            })
        });
        let expect: Vec<usize> = (0..n).map(|i| i * 2).collect();
        assert_eq!(results, expect, "threads={threads}");
    }

    // 4 sweeps x 64 items, every span recorded exactly once regardless of
    // which worker ran it or how the items were partitioned.
    let json = obs::report::render_json();
    assert_eq!(
        count_of(&json, "worker_item"),
        Some(4 * n as u64),
        "lost or duplicated spans: {json}"
    );

    obs::set_forced(None);
    obs::report::reset();
}

#[test]
fn worker_spans_root_at_their_own_name() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_forced(Some(obs::TraceLevel::Spans));
    obs::report::reset();

    {
        let _outer = obs::span("dispatch");
        let _ = parallel::with_threads(2, || {
            parallel::parallel_map_collect(8, 1, |i| {
                // Worker threads start with an empty path: their spans root
                // at their own name, not under the caller's "dispatch".
                let _s = obs::span("inner");
                i
            })
        });
    }

    let json = obs::report::render_json();
    assert_eq!(count_of(&json, "inner"), Some(8), "report: {json}");
    assert_eq!(count_of(&json, "dispatch"), Some(1), "report: {json}");
    assert_eq!(count_of(&json, "dispatch/inner"), None, "report: {json}");

    obs::set_forced(None);
    obs::report::reset();
}

#[test]
fn concurrent_counters_sum_deterministically() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_forced(Some(obs::TraceLevel::Spans));
    obs::report::reset();

    let _ = parallel::with_threads(4, || {
        parallel::parallel_map_collect(100, 1, |i| {
            obs::counter_add("items", 1);
            obs::record_value("item_value", i as f64);
            i
        })
    });
    assert_eq!(obs::counter_value("items"), Some(100));
    let stat = obs::value_stat("item_value").expect("values recorded");
    assert_eq!(stat.count, 100);
    assert_eq!(stat.min, 0.0);
    assert_eq!(stat.max, 99.0);
    assert_eq!(stat.sum, (0..100).sum::<i64>() as f64);

    obs::set_forced(None);
    obs::report::reset();
}
