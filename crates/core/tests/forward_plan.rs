//! The compiled inference plan must be invisible: replaying the tape-free
//! [`CompiledPlan`] program must produce **bit-identical** scores and
//! attention distributions to recording a fresh autograd graph per chunk,
//! at every chunk-boundary batch size, in every feature mode, at every
//! thread count, and after parameters change. Graphs that cannot be
//! shape-specialized (the uniform-attention ablation) must fall back to the
//! tape path silently.

use adamel::config::AdamelConfig;
use adamel::model::AdamelModel;
use adamel::{fit, Variant};
use adamel_schema::{Domain, EntityPair, FeatureMode, Record, Schema, SourceId};
use adamel_tensor::parallel;

fn rec(source: u32, id: u64, name: &str, city: &str) -> Record {
    let mut r = Record::new(SourceId(source), id);
    r.set("name", name);
    r.set("city", city);
    r
}

/// `n` synthetic pairs mixing matches, non-matches, and missing values.
fn pairs_n(n: u64) -> Vec<EntityPair> {
    let names = ["acme corp", "globex", "initech", "umbrella", "hooli", "stark"];
    let cities = ["berlin", "tokyo", "lima", ""];
    (0..n)
        .map(|i| {
            let nm = names[(i % 6) as usize];
            let c = cities[(i % 4) as usize];
            let other = names[((i + 1) % 6) as usize];
            let left = rec(0, i, nm, c);
            let right = if i % 3 == 0 { rec(1, i, nm, c) } else { rec(1, i, other, c) };
            EntityPair::unlabeled(left, right)
        })
        .collect()
}

fn schema() -> Schema {
    Schema::new(vec!["name".into(), "city".into()])
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|v| v.to_bits()).collect()
}

/// Asserts plan and tape agree bit-for-bit on both inference surfaces.
fn assert_plan_matches_tape(m: &AdamelModel, n: u64, label: &str) {
    let encoded = m.encode(&pairs_n(n));

    let plan_scores = m.predict_encoded(&encoded);
    let tape_scores = m.predict_encoded_tape(&encoded);
    assert_eq!(
        bits(&plan_scores),
        bits(&tape_scores),
        "{label}: plan scores drifted from tape at n = {n}"
    );

    let plan_att = m.attention_encoded(&encoded);
    let tape_att = m.attention_encoded_tape(&encoded);
    assert_eq!(plan_att.shape(), tape_att.shape(), "{label}: attention shape at n = {n}");
    assert_eq!(
        bits(plan_att.as_slice()),
        bits(tape_att.as_slice()),
        "{label}: plan attention drifted from tape at n = {n}"
    );
}

#[test]
fn plan_matches_tape_at_chunk_boundaries() {
    // One below, exactly at, one above, and a multiple of the 512-row chunk
    // size: the plan path chunks at the same boundaries as the tape path,
    // so every split point is exercised.
    let m = AdamelModel::new(AdamelConfig::tiny(), schema());
    for n in [511u64, 512, 513, 1024] {
        assert_plan_matches_tape(&m, n, "boundaries");
    }
}

#[test]
fn plan_matches_tape_across_feature_modes() {
    for mode in [FeatureMode::SharedOnly, FeatureMode::UniqueOnly, FeatureMode::Both] {
        let cfg = AdamelConfig::tiny().with_feature_mode(mode);
        let m = AdamelModel::new(cfg, schema());
        assert_plan_matches_tape(&m, 600, &format!("{mode:?}"));
    }
}

#[test]
fn plan_is_thread_count_invariant() {
    let m = AdamelModel::new(AdamelConfig::tiny(), schema());
    let encoded = m.encode(&pairs_n(1024));
    let base = parallel::with_threads(1, || m.predict_encoded(&encoded));
    let base_att = parallel::with_threads(1, || m.attention_encoded(&encoded));
    for t in [2, 4, 8] {
        let scores = parallel::with_threads(t, || m.predict_encoded(&encoded));
        assert_eq!(bits(&base), bits(&scores), "plan scores vary at {t} threads");
        let att = parallel::with_threads(t, || m.attention_encoded(&encoded));
        assert_eq!(
            bits(base_att.as_slice()),
            bits(att.as_slice()),
            "plan attention varies at {t} threads"
        );
    }
}

#[test]
fn uniform_attention_falls_back_to_tape() {
    // The ablation records an `n x F` constant, which the plan compiler must
    // reject (it cannot be shape-specialized); inference silently stays on
    // the tape path and still crosses chunk boundaries correctly.
    let cfg = AdamelConfig::tiny().with_uniform_attention(true);
    let m = AdamelModel::new(cfg, schema());
    let encoded = m.encode(&pairs_n(600));
    let scores = m.predict_encoded(&encoded);
    assert_eq!(bits(&scores), bits(&m.predict_encoded_tape(&encoded)));
    let att = m.attention_encoded(&encoded);
    let f = m.extractor().num_features();
    for i in 0..att.rows() {
        for &v in att.row(i) {
            assert_eq!(v, 1.0 / f as f32, "uniform attention row {i}");
        }
    }
}

#[test]
fn plan_stays_valid_after_training() {
    // Compile the plan against the freshly initialized parameters, then
    // mutate every parameter by training; the plan reads parameters live,
    // so replay must track the trained weights bit-for-bit.
    let mut m = AdamelModel::new(AdamelConfig::tiny(), schema());
    let before = m.predict(&pairs_n(16)); // forces plan compilation
    assert_eq!(before.len(), 16);

    let train: Vec<EntityPair> = pairs_n(24)
        .into_iter()
        .enumerate()
        .map(|(i, p)| EntityPair::labeled(p.left, p.right, i % 3 == 0))
        .collect();
    fit(&mut m, Variant::Base, &Domain::new(train), None, None);

    assert_plan_matches_tape(&m, 513, "post-training");

    // And after restoring a snapshot (best-model tracking path).
    let snapshot = m.snapshot_params();
    m.restore_params(&snapshot).expect("round-trip restore");
    assert_plan_matches_tape(&m, 40, "post-restore");
}
