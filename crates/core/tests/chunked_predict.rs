//! Chunked batch inference must be invisible: predictions and attention
//! weights over a large batch (which is split into bounded per-chunk graphs)
//! must be bit-identical to predicting the same pairs in smaller monolithic
//! batches, and independent of the worker thread count.

use adamel::config::AdamelConfig;
use adamel::model::AdamelModel;
use adamel_schema::{EntityPair, Record, Schema, SourceId};
use adamel_tensor::parallel;

fn rec(source: u32, id: u64, name: &str, city: &str) -> Record {
    let mut r = Record::new(SourceId(source), id);
    r.set("name", name);
    r.set("city", city);
    r
}

/// `n` synthetic pairs; callers pick counts that straddle the 512-row chunk
/// boundary.
fn pairs_n(n: u64) -> Vec<EntityPair> {
    let names = ["acme corp", "globex", "initech", "umbrella", "hooli", "stark"];
    let cities = ["berlin", "tokyo", "lima", ""];
    (0..n)
        .map(|i| {
            let n = names[(i % 6) as usize];
            let c = cities[(i % 4) as usize];
            let other = names[((i + 1) % 6) as usize];
            let left = rec(0, i, n, c);
            let right = if i % 3 == 0 { rec(1, i, n, c) } else { rec(1, i, other, c) };
            EntityPair::unlabeled(left, right)
        })
        .collect()
}

/// 600 synthetic pairs — enough to cross the 512-row chunk boundary.
fn pairs() -> Vec<EntityPair> {
    pairs_n(600)
}

fn model() -> AdamelModel {
    let schema = Schema::new(vec!["name".into(), "city".into()]);
    AdamelModel::new(AdamelConfig::tiny(), schema)
}

#[test]
fn chunked_predict_matches_small_batches() {
    let m = model();
    let all = pairs();
    let full = m.predict(&all);
    assert_eq!(full.len(), all.len());

    // Split points chosen to straddle the 512-row chunk boundary.
    let mut stitched = Vec::new();
    for part in [&all[..200], &all[200..512], &all[512..]] {
        stitched.extend(m.predict(part));
    }
    assert_eq!(full, stitched, "chunked batch disagrees with monolithic sub-batches");
}

#[test]
fn chunked_attention_matches_small_batches() {
    let m = model();
    let all = pairs();
    let full = m.attention(&all);
    assert_eq!(full.rows(), all.len());

    let head = m.attention(&all[..500]);
    let tail = m.attention(&all[500..]);
    for i in 0..all.len() {
        let expected = if i < 500 { head.row(i) } else { tail.row(i - 500) };
        assert_eq!(full.row(i), expected, "attention row {i} differs");
    }
}

#[test]
fn chunk_boundary_sizes_match_single_shot_graph() {
    // Exactly-at, one-below, one-above, and a multiple of the 512-row chunk
    // size: chunked inference must be bit-identical to one monolithic
    // forward graph followed by the same sigmoid.
    let m = model();
    for n in [511u64, 512, 513, 1024] {
        let batch = pairs_n(n);
        let encoded = m.encode(&batch);
        let chunked = m.predict_encoded(&encoded);

        let mut g = adamel_tensor::Graph::new();
        let (_, logits) = m.forward_graph(&mut g, encoded);
        let single: Vec<f32> =
            g.value(logits).as_slice().iter().map(|&z| 1.0 / (1.0 + (-z).exp())).collect();

        assert_eq!(chunked.len(), single.len(), "n = {n}");
        assert_eq!(
            chunked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "chunked prediction drifted from the single-shot graph at n = {n}"
        );
    }
}

#[test]
fn predict_is_thread_count_invariant() {
    let m = model();
    let all = pairs();
    let one = parallel::with_threads(1, || m.predict(&all));
    let four = parallel::with_threads(4, || m.predict(&all));
    let eight = parallel::with_threads(8, || m.predict(&all));
    assert_eq!(one, four);
    assert_eq!(one, eight);
}
