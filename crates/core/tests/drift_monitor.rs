//! The Monitor world's documented C1/C2/C3 fingerprint must trip exactly
//! the corresponding drift monitors on a seeded run.
//!
//! * Control (seen-vs-seen training pairs): no C-signal fires.
//! * Unseen target sources: C2 (the target-only attributes) and C3 (shifted
//!   `prod_type` vocabulary + unseen filler phrases) fire, C1 does not —
//!   unseen sources actually *render more* attributes than seen ones, which
//!   never render the five target-only attributes.
//! * Seen pairs degraded with extra missingness: C1 fires alone — dropping
//!   values cannot introduce new attributes or new tokens.

use adamel::drift::{DriftBaseline, DriftMonitor, DriftSignal};
use adamel::{fit, AdamelConfig, AdamelModel, Variant};
use adamel_data::{
    degrade_pairs, make_mel_split, MonitorConfig, MonitorWorld, Scenario, SplitCounts,
};
use adamel_schema::Domain;
use std::collections::BTreeSet;
use std::sync::OnceLock;

const SEED: u64 = 7;

struct Fixture {
    model: AdamelModel,
    monitor: DriftMonitor,
    train: Domain,
    test: Domain,
}

/// One shared fixture: training is the expensive step, and sharing it also
/// guarantees `fit` (which emits ledger events when a sink is forced) has
/// finished before the round-trip test turns the ledger on.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(build_fixture)
}

fn build_fixture() -> Fixture {
    let world = MonitorWorld::generate(&MonitorConfig::tiny(), SEED);
    let seen = world.seen_sources();
    let unseen = world.unseen_sources();
    let records = world.records_for(None);
    let split = make_mel_split(
        &records,
        "page_title",
        &seen,
        &unseen,
        Scenario::Disjoint,
        &SplitCounts::tiny(),
        SEED,
    );
    let mut model = AdamelModel::new(AdamelConfig::tiny(), world.schema().clone());
    fit(&mut model, Variant::Base, &split.train, None, None);
    // Vocabulary and missing-rate baseline over *all* seen-source records,
    // so the control's OOV rate is exactly zero.
    let pool = world.records_for(Some(&seen));
    let baseline = DriftBaseline::build_with_pool(&model, &split.train, &pool);
    let monitor = DriftMonitor::new(baseline);
    Fixture { model, monitor, train: split.train, test: split.test }
}

const C_SIGNALS: [DriftSignal; 3] =
    [DriftSignal::MissingRate, DriftSignal::NewAttributes, DriftSignal::OovRate];

#[test]
fn control_seen_pairs_trip_no_c_signal() {
    let fx = fixture();
    let drifts = fx.monitor.assess(&fx.model, &fx.train);
    assert!(!drifts.is_empty());
    for d in &drifts {
        for sig in C_SIGNALS {
            assert!(
                !d.warned(sig),
                "control source {:?} tripped {} (value {:?})",
                d.source,
                sig.name(),
                d.warnings,
            );
        }
        assert!((d.oov_rate).abs() < 1e-12, "control OOV should be exactly 0, got {}", d.oov_rate);
    }
}

#[test]
fn unseen_sources_trip_c2_and_c3_but_not_c1() {
    let fx = fixture();
    let drifts = fx.monitor.assess(&fx.model, &fx.test);
    assert!(!drifts.is_empty());
    let mut union_new: BTreeSet<String> = BTreeSet::new();
    for d in &drifts {
        assert!(
            d.warned(DriftSignal::NewAttributes),
            "unseen source {:?} did not trip C2: new_attributes={:?}",
            d.source,
            d.new_attributes,
        );
        assert!(
            d.warned(DriftSignal::OovRate),
            "unseen source {:?} did not trip C3: oov_rate={}",
            d.source,
            d.oov_rate,
        );
        assert!(
            !d.warned(DriftSignal::MissingRate),
            "unseen source {:?} tripped C1: missing {} vs baseline {}",
            d.source,
            d.missing_rate,
            d.baseline_missing_rate,
        );
        for a in &d.new_attributes {
            assert!(
                adamel_data::monitor::TARGET_ONLY_ATTRIBUTES.contains(&a.as_str()),
                "unexpected new attribute {a}",
            );
            union_new.insert(a.clone());
        }
    }
    // Across all unseen sources, the new attributes are exactly the world's
    // five target-only attributes.
    let expected: BTreeSet<String> =
        adamel_data::monitor::TARGET_ONLY_ATTRIBUTES.iter().map(|s| s.to_string()).collect();
    assert_eq!(union_new, expected);
}

#[test]
fn degraded_seen_pairs_trip_c1_alone() {
    let fx = fixture();
    let degraded = Domain::new(degrade_pairs(&fx.train.pairs, 0.5, SEED));
    let drifts = fx.monitor.assess(&fx.model, &degraded);
    assert!(!drifts.is_empty());
    for d in &drifts {
        assert!(
            d.warned(DriftSignal::MissingRate),
            "degraded source {:?} did not trip C1: missing {} vs baseline {}",
            d.source,
            d.missing_rate,
            d.baseline_missing_rate,
        );
        assert!(!d.warned(DriftSignal::NewAttributes), "degradation introduced attributes?");
        assert!(
            !d.warned(DriftSignal::OovRate),
            "degradation introduced tokens? oov={}",
            d.oov_rate,
        );
    }
}

#[test]
fn drift_warnings_round_trip_through_the_ledger() {
    let fx = fixture();
    let drifts = fx.monitor.assess(&fx.model, &fx.test);

    let path =
        std::env::temp_dir().join(format!("adamel-drift-ledger-{}.jsonl", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    adamel_obs::runlog::set_forced_path(Some(&path_str));
    for d in &drifts {
        d.emit_runlog();
    }
    adamel_obs::runlog::flush();
    adamel_obs::runlog::set_forced_path(Some("")); // forced off for the rest of the process

    let text = std::fs::read_to_string(&path).expect("ledger file");
    let _ = std::fs::remove_file(&path);
    let mut drift_events = 0usize;
    let mut warn_signals: BTreeSet<String> = BTreeSet::new();
    for line in text.lines() {
        let v = adamel_obs::json::Json::parse(line).expect("ledger line parses");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(adamel_obs::runlog::SCHEMA),);
        match v.get("event").and_then(|e| e.as_str()) {
            Some("drift") => drift_events += 1,
            Some("warn") => {
                let sig = v.get("signal").and_then(|s| s.as_str()).expect("warn has signal");
                warn_signals.insert(sig.to_string());
            }
            other => panic!("unexpected ledger event {other:?}"),
        }
    }
    assert_eq!(drift_events, drifts.len());
    // The unseen fingerprint: C2 and C3 warnings present, C1 absent.
    assert!(warn_signals.contains("c2_new_attributes"), "signals: {warn_signals:?}");
    assert!(warn_signals.contains("c3_oov_rate"), "signals: {warn_signals:?}");
    assert!(!warn_signals.contains("c1_missing_rate"), "signals: {warn_signals:?}");
}
