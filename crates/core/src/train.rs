//! Training loops for the four AdaMEL variants (Algorithms 1–3).
//!
//! All variants share the mini-batch supervised pass over `D_S`; the
//! adaptation variants add:
//!
//! * **zero/hyb** — at the start of every epoch the mean target-domain
//!   attention vector `f̄(x')` is recomputed with the current parameters
//!   (Algorithm 1 line 5) and each batch minimizes
//!   `(1−λ)·L_base + λ·KL(f̄(x') || f(x_i))` (Eq. 9–10);
//! * **few/hyb** — after the `D_S` pass of each epoch the positive/negative
//!   attention centroids `c±` and mean distances `d̄±` are recomputed
//!   (Eq. 11) and the support set's distance-ratio-weighted cross-entropy,
//!   scaled by φ, joins one batch's gradient accumulation per epoch
//!   (Eq. 12–13) — matching Algorithms 2–3, which accumulate `J` across the
//!   base and support terms before updating.

use crate::config::Variant;
use crate::drift::mean_row_entropy;
use crate::model::AdamelModel;
use adamel_obs::runlog;
use adamel_schema::Domain;
use adamel_tensor::{parallel, Adam, Graph, Matrix, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per epoch (base + adaptation terms as trained).
    pub epoch_losses: Vec<f32>,
    /// Number of epochs run.
    pub epochs: usize,
}

impl TrainReport {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Trains `model` as `variant`.
///
/// * `train` — labeled `D_S` pairs (required, non-empty);
/// * `target` — unlabeled `D_T` pairs, required for zero/hyb;
/// * `support` — labeled `S_U` pairs, required for few/hyb.
///
/// Panics if a required input is missing, mirroring the algorithm
/// signatures.
pub fn fit(
    model: &mut AdamelModel,
    variant: Variant,
    train: &Domain,
    target: Option<&Domain>,
    support: Option<&Domain>,
) -> TrainReport {
    assert!(!train.is_empty(), "fit: empty training domain");
    let target = if variant.uses_target() {
        let t = target.expect("fit: this variant requires the unlabeled target domain");
        assert!(!t.is_empty(), "fit: empty target domain");
        Some(t)
    } else {
        None
    };
    let support = if variant.uses_support() {
        let s = support.expect("fit: this variant requires the labeled support set");
        assert!(!s.is_empty(), "fit: empty support set");
        Some(s)
    } else {
        None
    };

    let cfg = model.config().clone();
    let train_enc = model.encode(&train.pairs);
    let train_labels = train.labels();
    let target_enc = target.map(|t| model.encode(&t.pairs));
    let support_enc = support.map(|s| model.encode(&s.pairs));
    let support_labels = support.map(Domain::labels);

    let mut opt = Adam::with_lr(cfg.learning_rate);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ea1);
    let mut report = TrainReport { epoch_losses: Vec::with_capacity(cfg.epochs), epochs: 0 };

    // Run-ledger manifest: everything needed to reproduce or compare the
    // run. Events are pure reads of config/state — when the ledger is
    // disabled the builder is inert and training bytes are unaffected.
    runlog::event("manifest")
        .str("variant", variant.name())
        .int("seed", cfg.seed)
        .int("epochs", cfg.epochs as u64)
        .int("batch_size", cfg.batch_size as u64)
        .num("learning_rate", cfg.learning_rate.into())
        .num("lambda", cfg.lambda.into())
        .num("phi", cfg.phi.into())
        .int("embed_dim", cfg.embed_dim as u64)
        .int("feature_dim", cfg.feature_dim as u64)
        .int("attention_dim", cfg.attention_dim as u64)
        .int("hidden_dim", cfg.hidden_dim as u64)
        .int("features", model.extractor().num_features() as u64)
        .int("threads", parallel::current_threads() as u64)
        .str("trace", adamel_obs::level().name())
        .int("train_pairs", train.len() as u64)
        .int("target_pairs", target.map_or(0, |t| t.len()) as u64)
        .int("support_pairs", support.map_or(0, |s| s.len()) as u64)
        .emit();

    let n = train.len();
    let mut order: Vec<usize> = (0..n).collect();

    for epoch in 0..cfg.epochs {
        adamel_obs::trace_span!("train_epoch");
        // Algorithm 1 line 5: f̄(x') with current parameters.
        let target_mean = target_enc.as_ref().map(|enc| model.attention_encoded(enc).mean_rows());

        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }

        // Support weights are recomputed per epoch with the current f
        // (Algorithms 2–3 line 10).
        let telemetry = adamel_obs::enabled() || runlog::enabled();
        let mut support_stats: Option<(f64, f64, f64)> = None;
        let support_batch = match (&support_enc, &support_labels) {
            (Some(enc), Some(labels)) => {
                let weights = support_weights(model, &train_enc, &train_labels, enc, labels);
                if telemetry && !weights.is_empty() {
                    let sum: f64 = weights.iter().map(|&w| f64::from(w)).sum();
                    let min = weights.iter().copied().fold(f32::INFINITY, f32::min);
                    let max = weights.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mean = sum / weights.len() as f64;
                    support_stats = Some((mean, f64::from(min), f64::from(max)));
                    adamel_obs::record_value("train.support_weight_mean", mean);
                    adamel_obs::record_value("train.support_weight_min", f64::from(min));
                    adamel_obs::record_value("train.support_weight_max", f64::from(max));
                }
                let y = Matrix::from_vec(labels.len(), 1, labels.clone());
                let w = Matrix::from_vec(labels.len(), 1, weights);
                Some((enc, y, w))
            }
            _ => None,
        };

        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        // Loss-component accumulators (Eq. 9–14 telemetry); reading node
        // values records no tape ops, so the graph is byte-identical with
        // tracing on or off.
        let (mut epoch_base, mut epoch_kl, mut epoch_support) = (0.0f64, 0.0f64, 0.0f64);
        let (mut entropy_sum, mut entropy_rows) = (0.0f64, 0usize);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let batch_enc = train_enc.select_rows(chunk);
            let batch_y =
                Matrix::from_vec(chunk.len(), 1, chunk.iter().map(|&i| train_labels[i]).collect());

            let mut g = Graph::new();
            let nodes = model.forward(&mut g, batch_enc);
            if telemetry {
                // Entropy of g(x) per batch — a value read, no tape ops.
                let att = g.value(nodes.attention);
                entropy_sum += mean_row_entropy(att) * att.rows() as f64;
                entropy_rows += att.rows();
            }
            let base = g.bce_with_logits(nodes.logits, batch_y);
            epoch_base += f64::from(g.value(base).item());
            let mut loss = match &target_mean {
                Some(mean) => {
                    // L_un = (1-λ) L_base + λ KL(f̄(x') || f(x_i)) (Eq. 9).
                    let kl = g.kl_const_rows(nodes.attention, mean.clone(), 1e-7);
                    epoch_kl += f64::from(g.value(kl).item());
                    let base_term = g.scale(base, 1.0 - cfg.lambda);
                    let kl_term = g.scale(kl, cfg.lambda);
                    g.add(base_term, kl_term)
                }
                None => base,
            };
            // L_ssl / L_hybrid (Eq. 13–14): once per epoch the support term
            // joins the same gradient accumulation as a batch loss rather
            // than taking a standalone optimizer step — Adam's normalized
            // step sizes would otherwise overweight S_U regardless of φ.
            if batches == 0 {
                if let Some((enc, y, w)) = &support_batch {
                    // The support encoding is reused every epoch, so the graph
                    // gets its own copy.
                    let support_nodes = model.forward(&mut g, (**enc).clone());
                    let s = g.weighted_bce_with_logits(support_nodes.logits, y.clone(), w.clone());
                    epoch_support += f64::from(g.value(s).item());
                    let s = g.scale(s, cfg.phi);
                    loss = g.add(loss, s);
                }
            }
            epoch_loss += g.value(loss).item();
            batches += 1;

            model.params.zero_grads();
            g.backward(loss, &mut model.params);
            // The extra norm pass is work, not just a read, so it is gated
            // behind the `full` level rather than `enabled()`.
            if adamel_obs::level() == adamel_obs::TraceLevel::Full {
                adamel_obs::record_value("train.grad_norm", f64::from(model.params.grad_norm()));
            }
            if let Some(clip) = cfg.grad_clip {
                model.params.clip_grad_norm(clip);
            }
            opt.step(&mut model.params);
        }

        let denom = batches.max(1) as f64;
        adamel_obs::trace_value!("train.loss_base", epoch_base / denom);
        if target_mean.is_some() {
            adamel_obs::trace_value!("train.loss_kl", epoch_kl / denom);
        }
        if support_batch.is_some() {
            adamel_obs::trace_value!("train.loss_support", epoch_support);
        }
        adamel_obs::trace_value!("train.loss_epoch", epoch_loss as f64 / denom);
        let mean_entropy = if entropy_rows == 0 { 0.0 } else { entropy_sum / entropy_rows as f64 };
        adamel_obs::trace_value!("train.attention_entropy", mean_entropy);
        if runlog::enabled() {
            let mut ev = runlog::event("epoch")
                .int("epoch", epoch as u64)
                .num("loss", f64::from(epoch_loss) / denom)
                .num("l_base", epoch_base / denom)
                .num("attention_entropy", mean_entropy);
            if target_mean.is_some() {
                ev = ev.num("l_kl", epoch_kl / denom);
            }
            if support_batch.is_some() {
                ev = ev.num("l_support", epoch_support);
            }
            if let Some((mean, min, max)) = support_stats {
                ev = ev
                    .num("support_weight_mean", mean)
                    .num("support_weight_min", min)
                    .num("support_weight_max", max);
            }
            ev.emit();
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f32);
        report.epochs += 1;
    }
    report
}

/// Distance-ratio weights of Eq. 12: support pairs whose attention vectors
/// deviate from the source-domain centroid of their class get larger
/// weights, highlighting pairs from genuinely new sources.
///
/// Public so the differential oracle (`adamel-oracle`) can diff the weight
/// computation against its `f64` re-derivation of Eq. 11–12.
pub fn support_weights(
    model: &AdamelModel,
    train_enc: &Matrix,
    train_labels: &[f32],
    support_enc: &Matrix,
    support_labels: &[f32],
) -> Vec<f32> {
    let att_s = model.attention_encoded(train_enc);
    let att_u = model.attention_encoded(support_enc);
    let f = att_s.cols();

    // Class centroids over D_S (Eq. 11).
    let mut centroid = [vec![0.0f32; f], vec![0.0f32; f]];
    let mut counts = [0usize; 2];
    for (i, &y) in train_labels.iter().enumerate() {
        let c = usize::from(y > 0.5);
        counts[c] += 1;
        for (acc, &v) in centroid[c].iter_mut().zip(att_s.row(i)) {
            *acc += v;
        }
    }
    for c in 0..2 {
        let inv = 1.0 / counts[c].max(1) as f32;
        centroid[c].iter_mut().for_each(|v| *v *= inv);
    }

    // Mean distance of each class to its centroid.
    let dist = |row: &[f32], c: &[f32]| -> f32 {
        row.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt()
    };
    let mut mean_dist = [0.0f32; 2];
    for (i, &y) in train_labels.iter().enumerate() {
        let c = usize::from(y > 0.5);
        mean_dist[c] += dist(att_s.row(i), &centroid[c]);
    }
    for c in 0..2 {
        mean_dist[c] /= counts[c].max(1) as f32;
        if mean_dist[c] <= f32::EPSILON {
            mean_dist[c] = 1.0; // degenerate: all source attentions equal
        }
    }

    let mut weights: Vec<f32> = support_labels
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            let c = usize::from(y > 0.5);
            let w = dist(att_u.row(i), &centroid[c]) / mean_dist[c];
            // Clamp so a single outlier cannot dominate the pass.
            w.clamp(0.2, 5.0)
        })
        .collect();
    // Normalize to mean 1: Eq. 12 weights are *relative* emphases; keeping
    // the total loss scale comparable to a plain batch stabilizes Adam.
    let mean = weights.iter().sum::<f32>() / weights.len().max(1) as f32;
    if mean > 0.0 {
        weights.iter_mut().for_each(|w| *w /= mean);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdamelConfig;
    use adamel_schema::{EntityPair, Record, Schema, SourceId};

    fn rec(source: u32, id: u64, title: &str) -> Record {
        let mut r = Record::new(SourceId(source), id);
        r.set("title", title);
        r
    }

    /// A tiny separable task: matching pairs share the title.
    fn toy_domains() -> (Schema, Domain, Domain, Domain) {
        let titles = ["alpha beta", "gamma delta", "epsilon zeta", "eta theta", "iota kappa"];
        let mut train = Vec::new();
        let mut id = 0u64;
        for t in titles {
            train.push(EntityPair::labeled(rec(0, id, t), rec(1, id, t), true));
            id += 1;
        }
        for (i, t) in titles.iter().enumerate() {
            let other = titles[(i + 1) % titles.len()];
            train.push(EntityPair::labeled(rec(0, id, t), rec(1, id + 1, other), false));
            id += 2;
        }
        let target = Domain::new(
            train.iter().map(|p| EntityPair::unlabeled(p.left.clone(), p.right.clone())).collect(),
        );
        let support = Domain::new(train[..4].to_vec());
        (Schema::new(vec!["title".into()]), Domain::new(train), target, support)
    }

    fn trained(variant: Variant) -> (AdamelModel, Domain) {
        let (schema, train, target, support) = toy_domains();
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        fit(&mut model, variant, &train, Some(&target), Some(&support));
        (model, train)
    }

    #[test]
    fn base_learns_separable_task() {
        let (model, train) = trained(Variant::Base);
        let scores = model.predict(&train.pairs);
        let labels = train.labels();
        // Positives should outscore negatives on average.
        let pos: f32 = scores.iter().zip(&labels).filter(|(_, &l)| l > 0.5).map(|(s, _)| s).sum();
        let neg: f32 = scores.iter().zip(&labels).filter(|(_, &l)| l < 0.5).map(|(s, _)| s).sum();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count() as f32;
        let n_neg = labels.len() as f32 - n_pos;
        assert!(pos / n_pos > neg / n_neg + 0.15, "pos {} neg {}", pos / n_pos, neg / n_neg);
    }

    #[test]
    fn all_variants_train_without_nan() {
        for variant in Variant::ALL {
            let (model, train) = trained(variant);
            for s in model.predict(&train.pairs) {
                assert!(s.is_finite(), "{variant:?} produced non-finite score");
            }
        }
    }

    #[test]
    fn loss_decreases_for_base() {
        let (schema, train, _, _) = toy_domains();
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        let report = fit(&mut model, Variant::Base, &train, None, None);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss went {first} -> {last}");
    }

    #[test]
    fn zero_aligns_attention_with_target_mean() {
        let (schema, train, target, _) = toy_domains();
        // λ close to 1: adaptation dominates; attention of source pairs
        // should be pulled toward the target mean.
        let cfg = AdamelConfig::tiny().with_lambda(0.98);
        let mut model = AdamelModel::new(cfg, schema.clone());
        fit(&mut model, Variant::Zero, &train, Some(&target), None);
        let att_s = model.attention(&train.pairs).mean_rows();
        let att_t = model.attention(&target.pairs).mean_rows();
        let gap = att_s.distance(&att_t);
        assert!(gap < 0.05, "attention means still {gap} apart");
    }

    #[test]
    fn training_is_deterministic() {
        let (schema, train, _, _) = toy_domains();
        let mut m1 = AdamelModel::new(AdamelConfig::tiny(), schema.clone());
        let mut m2 = AdamelModel::new(AdamelConfig::tiny(), schema);
        fit(&mut m1, Variant::Base, &train, None, None);
        fit(&mut m2, Variant::Base, &train, None, None);
        assert_eq!(m1.predict(&train.pairs), m2.predict(&train.pairs));
    }

    #[test]
    #[should_panic(expected = "requires the unlabeled target domain")]
    fn zero_requires_target() {
        let (schema, train, _, _) = toy_domains();
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        fit(&mut model, Variant::Zero, &train, None, None);
    }

    #[test]
    #[should_panic(expected = "requires the labeled support set")]
    fn few_requires_support() {
        let (schema, train, _, _) = toy_domains();
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        fit(&mut model, Variant::Few, &train, None, None);
    }

    #[test]
    fn support_weights_highlight_deviating_pairs() {
        let (schema, train, _, support) = toy_domains();
        let model = AdamelModel::new(AdamelConfig::tiny(), schema);
        let train_enc = model.encode(&train.pairs);
        let support_enc = model.encode(&support.pairs);
        let w =
            support_weights(&model, &train_enc, &train.labels(), &support_enc, &support.labels());
        assert_eq!(w.len(), support.len());
        for v in w {
            assert!(v.is_finite() && v > 0.0);
        }
    }
}

#[cfg(test)]
mod equivalence_tests {
    use super::*;
    use crate::config::AdamelConfig;
    use crate::model::AdamelModel;
    use adamel_schema::{EntityPair, Record, Schema, SourceId};

    fn rec(source: u32, id: u64, title: &str) -> Record {
        let mut r = Record::new(SourceId(source), id);
        r.set("title", title);
        r
    }

    fn small_task() -> (Schema, Domain, Domain) {
        let mut train = Vec::new();
        for i in 0..6u64 {
            train.push(EntityPair::labeled(
                rec(0, i, &format!("t {i} x")),
                rec(1, i, &format!("t {i} x")),
                true,
            ));
            train.push(EntityPair::labeled(
                rec(0, i, &format!("t {i} x")),
                rec(1, i + 30, &format!("u {} y", i + 9)),
                false,
            ));
        }
        let target = Domain::new(
            train.iter().map(|p| EntityPair::unlabeled(p.left.clone(), p.right.clone())).collect(),
        );
        (Schema::new(vec!["title".into()]), Domain::new(train), target)
    }

    /// With λ = 0 the KL term is weightless, so AdaMEL-zero must produce
    /// bit-identical parameters to AdaMEL-base (same RNG consumption, same
    /// gradients).
    #[test]
    fn zero_with_lambda_zero_equals_base() {
        let (schema, train, target) = small_task();
        let cfg = AdamelConfig::tiny().with_lambda(0.0);
        let mut base = AdamelModel::new(cfg.clone(), schema.clone());
        fit(&mut base, Variant::Base, &train, None, None);
        let mut zero = AdamelModel::new(cfg, schema);
        fit(&mut zero, Variant::Zero, &train, Some(&target), None);
        assert_eq!(base.predict(&train.pairs), zero.predict(&train.pairs));
    }

    /// Epoch losses are finite and the report length matches the config.
    #[test]
    fn report_accounts_every_epoch() {
        let (schema, train, target) = small_task();
        let cfg = AdamelConfig::tiny();
        let epochs = cfg.epochs;
        let mut model = AdamelModel::new(cfg, schema);
        let report = fit(&mut model, Variant::Zero, &train, Some(&target), None);
        assert_eq!(report.epochs, epochs);
        assert_eq!(report.epoch_losses.len(), epochs);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    /// Training must tolerate a single-pair support set (the |S_U| = 1 point
    /// of Fig. 10).
    #[test]
    fn single_pair_support_set_works() {
        let (schema, train, target) = small_task();
        let support = Domain::new(vec![train.pairs[0].clone()]);
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        fit(&mut model, Variant::Hyb, &train, Some(&target), Some(&support));
        assert!(model.predict(&train.pairs).iter().all(|s| s.is_finite()));
    }

    /// A training domain with a single class must not panic (centroid of an
    /// empty class is guarded).
    #[test]
    fn single_class_training_domain_is_guarded() {
        let (schema, train, target) = small_task();
        let positives =
            Domain::new(train.pairs.iter().filter(|p| p.label == Some(true)).cloned().collect());
        let support = Domain::new(train.pairs[..2].to_vec());
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        fit(&mut model, Variant::Few, &positives, Some(&target), Some(&support));
        assert!(model.predict(&train.pairs).iter().all(|s| s.is_finite()));
    }
}
