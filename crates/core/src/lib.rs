//! # adamel
//!
//! A Rust implementation of **AdaMEL** — *Deep Transfer Learning for
//! Multi-source Entity Linkage via Domain Adaptation* (VLDB 2021).
//!
//! AdaMEL learns *attribute-level importance* as the transferable knowledge
//! for multi-source entity linkage: each attribute of an entity pair is
//! split into shared/unique contrastive features, a shared attention head
//! scores their importance, and a small classifier predicts match /
//! non-match. Domain adaptation aligns the attention distribution with
//! massive unlabeled data from unseen sources (AdaMEL-zero), a small labeled
//! support set re-weights deviating pairs (AdaMEL-few), and AdaMEL-hyb
//! combines both.
//!
//! ```
//! use adamel::{fit, AdamelConfig, AdamelModel, Variant, evaluate_prauc};
//! use adamel_data::{make_mel_split, MusicConfig, MusicWorld, Scenario, SplitCounts, EntityType};
//!
//! let world = MusicWorld::generate(&MusicConfig::tiny(), 1);
//! let records = world.records_of(EntityType::Artist, None);
//! let split = make_mel_split(&records, "name", &[0, 1, 2], &[3, 4, 5, 6],
//!                            Scenario::Overlapping, &SplitCounts::tiny(), 1);
//!
//! let mut model = AdamelModel::new(AdamelConfig::tiny(), world.schema().clone());
//! fit(&mut model, Variant::Hyb, &split.train, Some(&split.test), Some(&split.support));
//! let prauc = evaluate_prauc(&model, &split.test);
//! assert!(prauc > 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attention;
pub mod config;
pub mod drift;
pub mod eval;
pub mod io;
pub mod model;
pub mod pipeline;
pub mod train;

pub use attention::{
    attribute_importance, feature_importance, top_attribute_schemas, FeatureImportance,
};
pub use config::{AdamelConfig, Variant};
pub use drift::{
    DriftBaseline, DriftMonitor, DriftSignal, DriftThresholds, DriftWarning, SourceDrift,
};
pub use eval::{evaluate_f1, evaluate_prauc};
pub use io::{load_model, save_model};
pub use model::AdamelModel;
pub use pipeline::{Linker, LinkerConfig, MatchResult};
pub use train::{fit, support_weights, TrainReport};
