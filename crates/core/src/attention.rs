//! Attention analysis: aggregating feature importance to attribute level
//! (Table 4) and selecting top attributes (Table 5).

use crate::model::AdamelModel;
use adamel_schema::{Domain, Schema};
use std::collections::BTreeMap;

/// Importance of one relational feature (e.g. `page_title_shared`).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// Feature name (`<attribute>_shared` / `<attribute>_unique`).
    pub feature: String,
    /// Mean attention score over the analyzed pairs.
    pub score: f32,
}

/// Mean attention per feature over a domain, sorted descending — the data
/// behind Table 4.
pub fn feature_importance(model: &AdamelModel, domain: &Domain) -> Vec<FeatureImportance> {
    model
        .feature_importance(&domain.pairs)
        .into_iter()
        .map(|(feature, score)| FeatureImportance { feature, score })
        .collect()
}

/// Importance aggregated to the attribute level (summing the attribute's
/// shared and unique features), sorted descending.
pub fn attribute_importance(model: &AdamelModel, domain: &Domain) -> Vec<(String, f32)> {
    let mut by_attr: BTreeMap<String, f32> = BTreeMap::new();
    for imp in feature_importance(model, domain) {
        let attr = imp
            .feature
            .strip_suffix("_shared")
            .or_else(|| imp.feature.strip_suffix("_unique"))
            .unwrap_or(&imp.feature)
            .to_string();
        *by_attr.entry(attr).or_insert(0.0) += imp.score;
    }
    let mut out: Vec<(String, f32)> = by_attr.into_iter().collect();
    // total_cmp, not partial_cmp-with-Equal-fallback: softmax outputs are
    // finite, but a NaN upstream must not silently make the ranking
    // input-order-dependent (same defect class as the pr_curve tie fix).
    debug_assert!(out.iter().all(|(_, s)| s.is_finite()), "non-finite attribute importance");
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// The `k` most important attributes as a projected schema plus the
/// complementary schema — the two retraining columns of Table 5.
pub fn top_attribute_schemas(
    model: &AdamelModel,
    domain: &Domain,
    schema: &Schema,
    k: usize,
) -> (Schema, Schema) {
    let ranked = attribute_importance(model, domain);
    let top: Vec<&str> = ranked.iter().take(k).map(|(a, _)| a.as_str()).collect();
    (schema.project(&top), schema.without(&top))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdamelConfig;
    use adamel_schema::{EntityPair, Record, SourceId};

    fn fixture() -> (AdamelModel, Domain, Schema) {
        let schema = Schema::new(vec!["artist".into(), "title".into(), "genre".into()]);
        let model = AdamelModel::new(AdamelConfig::tiny(), schema.clone());
        let mut l = Record::new(SourceId(0), 1);
        l.set("title", "hey jude").set("artist", "beatles").set("genre", "rock");
        let mut r = Record::new(SourceId(1), 1);
        r.set("title", "hey jude").set("artist", "the beatles");
        let domain = Domain::new(vec![EntityPair::unlabeled(l, r)]);
        (model, domain, schema)
    }

    #[test]
    fn attribute_importance_sums_to_one() {
        let (model, domain, _) = fixture();
        let imp = attribute_importance(&model, &domain);
        assert_eq!(imp.len(), 3);
        let total: f32 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn top_schemas_partition() {
        let (model, domain, schema) = fixture();
        let (top, rest) = top_attribute_schemas(&model, &domain, &schema, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(rest.len(), 1);
        for a in top.attributes() {
            assert!(!rest.attributes().contains(a));
        }
    }

    #[test]
    fn ranking_is_invariant_under_pair_order() {
        // Regression for the partial_cmp(..).unwrap_or(Equal) sort: a
        // non-antisymmetric comparator made the ranking depend on input
        // order. With total_cmp the ranking must be identical however the
        // pairs are permuted.
        let schema = Schema::new(vec!["artist".into(), "title".into(), "genre".into()]);
        let model = AdamelModel::new(AdamelConfig::tiny(), schema);
        let mut pairs = Vec::new();
        for i in 0..6u64 {
            let mut l = Record::new(SourceId(0), i);
            l.set("title", "song").set("artist", "band");
            let mut r = Record::new(SourceId(1), i);
            r.set("title", "song").set("genre", "rock");
            pairs.push(EntityPair::unlabeled(l, r));
        }
        let forward = Domain::new(pairs.clone());
        pairs.reverse();
        let backward = Domain::new(pairs);
        assert_eq!(attribute_importance(&model, &forward), attribute_importance(&model, &backward));
        assert_eq!(feature_importance(&model, &forward), feature_importance(&model, &backward));
    }

    #[test]
    fn tied_scores_rank_deterministically() {
        // uniform_attention forces every feature to the same score; the
        // stable sort must then preserve the BTreeMap (alphabetical)
        // aggregation order instead of an arbitrary one.
        let schema = Schema::new(vec!["artist".into(), "title".into(), "genre".into()]);
        let cfg = AdamelConfig { uniform_attention: true, ..AdamelConfig::tiny() };
        let model = AdamelModel::new(cfg, schema);
        let mut l = Record::new(SourceId(0), 1);
        l.set("title", "x").set("artist", "y").set("genre", "z");
        let mut r = Record::new(SourceId(1), 1);
        r.set("title", "x");
        let domain = Domain::new(vec![EntityPair::unlabeled(l, r)]);
        let ranked = attribute_importance(&model, &domain);
        let names: Vec<&str> = ranked.iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(names, vec!["artist", "genre", "title"]);
    }

    #[test]
    fn feature_importance_sorted() {
        let (model, domain, _) = fixture();
        let imp = feature_importance(&model, &domain);
        assert_eq!(imp.len(), 6);
        for w in imp.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
