//! Data- and model-drift monitors for unseen target sources.
//!
//! AdaMEL's premise (§1, §3) is that new sources arrive shifted along
//! three axes: **C1** missing attributes, **C2** attributes never seen in
//! training, and **C3** shifted value distributions — and that the
//! attention vector `g(x)` of Eq. 5–6 is the transferable knowledge that
//! must absorb the shift. These monitors make each axis measurable per
//! source, against a [`DriftBaseline`] frozen at training time:
//!
//! | signal | challenge | definition |
//! |---|---|---|
//! | `c1_missing_rate` | C1 | missing fraction over schema attributes, vs the baseline rate |
//! | `c2_new_attributes` | C2 | attributes present on target records but never observed in training |
//! | `c3_oov_rate` | C3 | fraction of value tokens outside the training vocabulary |
//! | `attention_shift` | Eq. 5–6 | KL/JS divergence of the per-source mean attention vector from the frozen source-domain mean |
//! | `calibration` | — | ECE of match scores vs ground truth, with a fixed-bin score histogram |
//!
//! Each signal compares against a configurable [`DriftThresholds`] entry;
//! exceedances become [`DriftWarning`]s, and
//! [`SourceDrift::emit_runlog`] writes the whole assessment (plus one
//! `warn` event per exceedance) into the run ledger
//! (`adamel_obs::runlog`).

use std::collections::{BTreeMap, BTreeSet};

use crate::model::AdamelModel;
use adamel_metrics::ece;
use adamel_obs::runlog;
use adamel_schema::{Domain, Record, SourceId};
use adamel_tensor::Matrix;
use adamel_text::tokenize;

/// Number of equal-width bins in the per-source match-score histogram.
pub const SCORE_BINS: usize = 10;

/// Floor applied to probabilities before taking logarithms, so empty
/// attention slots don't produce infinities.
const EPS: f64 = 1e-9;

/// Per-signal warning thresholds. A signal warns when its value *exceeds*
/// the threshold, so `f64::INFINITY` disables a signal.
#[derive(Debug, Clone)]
pub struct DriftThresholds {
    /// C1: warn when a source's missing rate exceeds the baseline rate by
    /// more than this.
    pub missing_rate_increase: f64,
    /// C2: warn when a source shows more than this many attributes never
    /// observed in training (0 = any new attribute warns).
    pub new_attributes: usize,
    /// C3: warn when the token out-of-vocabulary rate exceeds this.
    pub oov_rate: f64,
    /// Warn when the Jensen–Shannon divergence between the source's mean
    /// attention vector and the frozen baseline exceeds this.
    pub attention_js: f64,
    /// Warn when the expected calibration error of match scores exceeds
    /// this.
    pub ece: f64,
}

impl Default for DriftThresholds {
    fn default() -> Self {
        Self {
            missing_rate_increase: 0.15,
            new_attributes: 0,
            oov_rate: 0.15,
            attention_js: 0.1,
            ece: 0.25,
        }
    }
}

/// Source-domain reference statistics, frozen after training.
#[derive(Debug, Clone)]
pub struct DriftBaseline {
    /// Attributes observed (non-missing at least once) on training records.
    pub attributes: BTreeSet<String>,
    /// Mean missing fraction over the model schema on training records.
    pub missing_rate: f64,
    /// Every token appearing in a training record value.
    pub vocabulary: BTreeSet<String>,
    /// Frozen source-domain mean attention vector (Eq. 5–6), one entry per
    /// feature.
    pub mean_attention: Vec<f32>,
}

impl DriftBaseline {
    /// Builds a baseline from the training domain: record statistics from
    /// the pairs' records, attention from the trained model.
    pub fn build(model: &AdamelModel, train: &Domain) -> Self {
        let records: Vec<Record> =
            train.pairs.iter().flat_map(|p| [p.left.clone(), p.right.clone()]).collect();
        Self::build_with_pool(model, train, &records)
    }

    /// Builds a baseline whose record statistics (attributes, missing
    /// rate, vocabulary) come from `pool` — typically the full
    /// source-domain record pool, wider than the sampled training pairs —
    /// while the frozen attention mean still comes from `train`.
    pub fn build_with_pool(model: &AdamelModel, train: &Domain, pool: &[Record]) -> Self {
        let mut attributes = BTreeSet::new();
        let mut vocabulary = BTreeSet::new();
        for r in pool {
            for (attr, value) in &r.values {
                if r.is_missing(attr) {
                    continue;
                }
                attributes.insert(attr.clone());
                for tok in tokenize(value) {
                    vocabulary.insert(tok);
                }
            }
        }
        let schema_attrs = model.extractor().schema().attributes();
        let missing_rate = missing_rate_over(pool.iter(), schema_attrs);
        let mean_attention = if train.is_empty() {
            vec![0.0; model.extractor().num_features()]
        } else {
            model.attention(&train.pairs).mean_rows().into_vec()
        };
        Self { attributes, missing_rate, vocabulary, mean_attention }
    }
}

/// One drift signal's identity in warnings and ledger events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftSignal {
    /// C1: missing-attribute rate increased beyond threshold.
    MissingRate,
    /// C2: attributes observed only in the target.
    NewAttributes,
    /// C3: token out-of-vocabulary rate beyond threshold.
    OovRate,
    /// Attention distribution diverged from the frozen baseline.
    AttentionShift,
    /// Match-score calibration degraded beyond threshold.
    Calibration,
}

impl DriftSignal {
    /// Stable ledger name of the signal.
    pub fn name(self) -> &'static str {
        match self {
            DriftSignal::MissingRate => "c1_missing_rate",
            DriftSignal::NewAttributes => "c2_new_attributes",
            DriftSignal::OovRate => "c3_oov_rate",
            DriftSignal::AttentionShift => "attention_shift",
            DriftSignal::Calibration => "calibration",
        }
    }
}

/// A threshold exceedance on one signal for one source.
#[derive(Debug, Clone)]
pub struct DriftWarning {
    /// Which signal fired.
    pub signal: DriftSignal,
    /// Observed value.
    pub value: f64,
    /// Configured threshold it exceeded.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub message: String,
}

/// Full drift assessment of one target source.
#[derive(Debug, Clone)]
pub struct SourceDrift {
    /// The assessed source.
    pub source: SourceId,
    /// Distinct records from this source among the target pairs.
    pub records: usize,
    /// Target pairs touching this source.
    pub pairs: usize,
    /// Missing fraction over the model schema (C1).
    pub missing_rate: f64,
    /// The baseline missing rate this is compared against.
    pub baseline_missing_rate: f64,
    /// Attributes on this source's records never observed in training (C2).
    pub new_attributes: Vec<String>,
    /// Fraction of value tokens outside the training vocabulary (C3).
    pub oov_rate: f64,
    /// KL divergence of the source's mean attention from the baseline.
    pub attention_kl: f64,
    /// Jensen–Shannon divergence of the same (symmetric, bounded).
    pub attention_js: f64,
    /// Mean per-pair attention entropy (nats).
    pub attention_entropy: f64,
    /// Match-score histogram over [`SCORE_BINS`] equal-width bins in
    /// `[0, 1]`.
    pub score_hist: [u64; SCORE_BINS],
    /// Expected calibration error of the match scores vs ground truth.
    pub ece: f64,
    /// Threshold exceedances, in signal order.
    pub warnings: Vec<DriftWarning>,
}

impl SourceDrift {
    /// True when the given signal fired for this source.
    pub fn warned(&self, signal: DriftSignal) -> bool {
        self.warnings.iter().any(|w| w.signal == signal)
    }

    /// Writes this assessment into the run ledger: one `drift` event,
    /// then one `warn` event per exceedance. No-op when the ledger is
    /// disabled.
    pub fn emit_runlog(&self) {
        if !runlog::enabled() {
            return;
        }
        let mut hist = String::with_capacity(2 + SCORE_BINS * 4);
        hist.push('[');
        for (i, c) in self.score_hist.iter().enumerate() {
            if i > 0 {
                hist.push_str(", ");
            }
            hist.push_str(&c.to_string());
        }
        hist.push(']');
        runlog::event("drift")
            .int("source", u64::from(self.source.0))
            .int("records", self.records as u64)
            .int("pairs", self.pairs as u64)
            .num("missing_rate", self.missing_rate)
            .num("baseline_missing_rate", self.baseline_missing_rate)
            .str_list("new_attributes", &self.new_attributes)
            .num("oov_rate", self.oov_rate)
            .num("attention_kl", self.attention_kl)
            .num("attention_js", self.attention_js)
            .num("attention_entropy", self.attention_entropy)
            .raw("score_hist", &hist)
            .num("ece", self.ece)
            .emit();
        for w in &self.warnings {
            runlog::event("warn")
                .str("signal", w.signal.name())
                .int("source", u64::from(self.source.0))
                .num("value", w.value)
                .num("threshold", w.threshold)
                .str("message", &w.message)
                .emit();
        }
    }
}

/// Compares live target data against a frozen [`DriftBaseline`].
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    /// The frozen source-domain reference.
    pub baseline: DriftBaseline,
    /// Active thresholds.
    pub thresholds: DriftThresholds,
}

impl DriftMonitor {
    /// A monitor with [`DriftThresholds::default`].
    pub fn new(baseline: DriftBaseline) -> Self {
        Self { baseline, thresholds: DriftThresholds::default() }
    }

    /// A monitor with explicit thresholds.
    pub fn with_thresholds(baseline: DriftBaseline, thresholds: DriftThresholds) -> Self {
        Self { baseline, thresholds }
    }

    /// Assesses every source occurring in `target`, in source-id order.
    ///
    /// Record-level signals (C1/C2/C3) use each source's distinct records
    /// (deduplicated by entity id); model-level signals use the pairs
    /// touching the source.
    #[must_use = "assess has no side effects; the drift report is its only output"]
    pub fn assess(&self, model: &AdamelModel, target: &Domain) -> Vec<SourceDrift> {
        let mut out = Vec::new();
        for source in target.sources() {
            out.push(self.assess_source(model, target, source));
        }
        out
    }

    fn assess_source(&self, model: &AdamelModel, target: &Domain, source: SourceId) -> SourceDrift {
        // Distinct records of this source among the pairs.
        let mut by_entity: BTreeMap<u64, &Record> = BTreeMap::new();
        let mut pair_indices = Vec::new();
        for (i, p) in target.pairs.iter().enumerate() {
            for r in [&p.left, &p.right] {
                if r.source == source {
                    by_entity.entry(r.entity_id).or_insert(r);
                }
            }
            if p.left.source == source || p.right.source == source {
                pair_indices.push(i);
            }
        }

        let schema_attrs = model.extractor().schema().attributes();
        let missing_rate = missing_rate_over(by_entity.values().copied(), schema_attrs);

        let mut new_attributes = BTreeSet::new();
        let mut tokens = 0u64;
        let mut oov = 0u64;
        for r in by_entity.values() {
            for (attr, value) in &r.values {
                if r.is_missing(attr) {
                    continue;
                }
                if !self.baseline.attributes.contains(attr) {
                    new_attributes.insert(attr.clone());
                }
                for tok in tokenize(value) {
                    tokens += 1;
                    if !self.baseline.vocabulary.contains(&tok) {
                        oov += 1;
                    }
                }
            }
        }
        let oov_rate = if tokens == 0 { 0.0 } else { oov as f64 / tokens as f64 };

        // Model-level signals over the pairs touching this source.
        let subset: Vec<_> = pair_indices.iter().map(|&i| target.pairs[i].clone()).collect();
        let (attention_kl, attention_js, attention_entropy, score_hist, ece_value) =
            if subset.is_empty() {
                (0.0, 0.0, 0.0, [0u64; SCORE_BINS], 0.0)
            } else {
                let att = model.attention(&subset);
                let mean = att.mean_rows();
                let kl = kl_divergence(mean.as_slice(), &self.baseline.mean_attention);
                let js = js_divergence(mean.as_slice(), &self.baseline.mean_attention);
                let entropy = mean_row_entropy(&att);
                let scores = model.predict(&subset);
                let mut hist = [0u64; SCORE_BINS];
                for &s in &scores {
                    let s = if s.is_finite() { f64::from(s).clamp(0.0, 1.0) } else { 0.0 };
                    let b = ((s * SCORE_BINS as f64) as usize).min(SCORE_BINS - 1);
                    hist[b] += 1;
                }
                let labels: Vec<bool> = subset.iter().map(|p| p.ground_truth()).collect();
                (kl, js, entropy, hist, ece(&scores, &labels, SCORE_BINS))
            };

        let new_attributes: Vec<String> = new_attributes.into_iter().collect();
        let mut warnings = Vec::new();
        let t = &self.thresholds;
        let missing_delta = missing_rate - self.baseline.missing_rate;
        if missing_delta > t.missing_rate_increase {
            warnings.push(DriftWarning {
                signal: DriftSignal::MissingRate,
                value: missing_delta,
                threshold: t.missing_rate_increase,
                message: format!(
                    "source {} missing rate {:.3} is {:.3} above baseline {:.3} (C1)",
                    source.0, missing_rate, missing_delta, self.baseline.missing_rate
                ),
            });
        }
        if new_attributes.len() > t.new_attributes {
            warnings.push(DriftWarning {
                signal: DriftSignal::NewAttributes,
                value: new_attributes.len() as f64,
                threshold: t.new_attributes as f64,
                message: format!(
                    "source {} has {} attributes never observed in training: {} (C2)",
                    source.0,
                    new_attributes.len(),
                    new_attributes.join(", ")
                ),
            });
        }
        if oov_rate > t.oov_rate {
            warnings.push(DriftWarning {
                signal: DriftSignal::OovRate,
                value: oov_rate,
                threshold: t.oov_rate,
                message: format!(
                    "source {} token OOV rate {:.3} exceeds {:.3} (C3)",
                    source.0, oov_rate, t.oov_rate
                ),
            });
        }
        if attention_js > t.attention_js {
            warnings.push(DriftWarning {
                signal: DriftSignal::AttentionShift,
                value: attention_js,
                threshold: t.attention_js,
                message: format!(
                    "source {} attention JS divergence {:.4} exceeds {:.4} (Eq. 5-6 shift)",
                    source.0, attention_js, t.attention_js
                ),
            });
        }
        if ece_value > t.ece {
            warnings.push(DriftWarning {
                signal: DriftSignal::Calibration,
                value: ece_value,
                threshold: t.ece,
                message: format!(
                    "source {} score calibration error {:.3} exceeds {:.3}",
                    source.0, ece_value, t.ece
                ),
            });
        }

        SourceDrift {
            source,
            records: by_entity.len(),
            pairs: pair_indices.len(),
            missing_rate,
            baseline_missing_rate: self.baseline.missing_rate,
            new_attributes,
            oov_rate,
            attention_kl,
            attention_js,
            attention_entropy,
            score_hist,
            ece: ece_value,
            warnings,
        }
    }
}

/// Missing fraction over the given attributes, averaged across records.
/// Returns 0 for an empty record set or attribute list.
fn missing_rate_over<'a>(records: impl Iterator<Item = &'a Record>, attributes: &[String]) -> f64 {
    if attributes.is_empty() {
        return 0.0;
    }
    let mut cells = 0u64;
    let mut missing = 0u64;
    for r in records {
        for attr in attributes {
            cells += 1;
            if r.is_missing(attr) {
                missing += 1;
            }
        }
    }
    if cells == 0 {
        0.0
    } else {
        missing as f64 / cells as f64
    }
}

/// Normalizes a non-negative vector into a probability distribution with
/// an [`EPS`] floor on every entry.
fn smoothed(p: &[f32], len: usize) -> Vec<f64> {
    let mut out = vec![EPS; len];
    for (o, &v) in out.iter_mut().zip(p.iter()) {
        *o = f64::from(v).max(0.0) + EPS;
    }
    let total: f64 = out.iter().sum();
    for o in &mut out {
        *o /= total;
    }
    out
}

/// KL divergence `KL(p ‖ q)` in nats between two non-negative vectors,
/// smoothed and renormalized so zero entries stay finite. Vectors of
/// unequal length are compared over the longer length with the shorter
/// zero-padded (then floored by the smoothing).
///
/// # Examples
///
/// ```
/// let kl = adamel::drift::kl_divergence(&[0.5, 0.5], &[0.5, 0.5]);
/// assert!(kl.abs() < 1e-9);
/// assert!(adamel::drift::kl_divergence(&[0.9, 0.1], &[0.1, 0.9]) > 0.5);
/// ```
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f64 {
    let len = p.len().max(q.len());
    if len == 0 {
        return 0.0;
    }
    let p = smoothed(p, len);
    let q = smoothed(q, len);
    p.iter().zip(q.iter()).map(|(&pi, &qi)| pi * (pi / qi).ln()).sum::<f64>().max(0.0)
}

/// Jensen–Shannon divergence in nats: symmetric, bounded by `ln 2`.
///
/// # Examples
///
/// ```
/// let a = [0.9f32, 0.1];
/// let b = [0.1f32, 0.9];
/// let ab = adamel::drift::js_divergence(&a, &b);
/// let ba = adamel::drift::js_divergence(&b, &a);
/// assert!((ab - ba).abs() < 1e-12);
/// assert!(ab > 0.0 && ab < std::f64::consts::LN_2 + 1e-12);
/// ```
pub fn js_divergence(p: &[f32], q: &[f32]) -> f64 {
    let len = p.len().max(q.len());
    if len == 0 {
        return 0.0;
    }
    let p = smoothed(p, len);
    let q = smoothed(q, len);
    let m: Vec<f64> = p.iter().zip(q.iter()).map(|(&a, &b)| 0.5 * (a + b)).collect();
    let kl = |x: &[f64], y: &[f64]| -> f64 {
        x.iter().zip(y.iter()).map(|(&xi, &yi)| xi * (xi / yi).ln()).sum()
    };
    (0.5 * kl(&p, &m) + 0.5 * kl(&q, &m)).max(0.0)
}

/// Mean Shannon entropy (nats) of the rows of an attention matrix — the
/// "how spread out is `g(x)`" summary logged per epoch and per source.
/// Returns 0 for an empty matrix.
///
/// # Examples
///
/// ```
/// use adamel_tensor::Matrix;
/// // A one-hot row has zero entropy; a uniform row over 4 has ln 4.
/// let m = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 0.0], vec![0.25; 4]]);
/// let h = adamel::drift::mean_row_entropy(&m);
/// assert!((h - 0.5 * 4f64.ln()).abs() < 1e-6);
/// ```
pub fn mean_row_entropy(m: &Matrix) -> f64 {
    if m.rows() == 0 || m.cols() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..m.rows() {
        let row = m.row(i);
        let mut h = 0.0;
        for &v in row {
            let p = f64::from(v);
            if p > EPS {
                h -= p * p.ln();
            }
        }
        total += h;
    }
    total / m.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdamelConfig;
    use adamel_schema::{EntityPair, Schema};

    fn rec(source: u32, id: u64, kv: &[(&str, &str)]) -> Record {
        let mut r = Record::new(SourceId(source), id);
        for (k, v) in kv {
            r.set(*k, *v);
        }
        r
    }

    fn tiny_model(attrs: &[&str]) -> AdamelModel {
        let schema = Schema::new(attrs.iter().map(|s| s.to_string()).collect());
        AdamelModel::new(AdamelConfig::tiny(), schema)
    }

    #[test]
    fn kl_js_basics() {
        assert!(kl_divergence(&[], &[]).abs() < 1e-12);
        assert!(js_divergence(&[], &[]).abs() < 1e-12);
        // Identical distributions: zero divergence.
        let u = [0.25f32; 4];
        assert!(kl_divergence(&u, &u) < 1e-9);
        assert!(js_divergence(&u, &u) < 1e-9);
        // Divergence grows with separation.
        let near = js_divergence(&[0.6, 0.4], &[0.5, 0.5]);
        let far = js_divergence(&[0.99, 0.01], &[0.01, 0.99]);
        assert!(far > near);
        // KL handles zeros via smoothing instead of going infinite.
        let kl = kl_divergence(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(kl.is_finite() && kl > 1.0);
    }

    #[test]
    fn entropy_of_uniform_and_onehot() {
        let m = Matrix::from_rows(&[vec![0.5, 0.5]]);
        assert!((mean_row_entropy(&m) - std::f64::consts::LN_2).abs() < 1e-6);
        let m = Matrix::from_rows(&[vec![0.0, 1.0]]);
        assert!(mean_row_entropy(&m).abs() < 1e-9);
        assert!(mean_row_entropy(&Matrix::zeros(0, 3)).abs() < 1e-12);
    }

    #[test]
    fn baseline_collects_attributes_vocab_and_missing_rate() {
        let model = tiny_model(&["a", "b"]);
        let train = Domain::new(vec![EntityPair::labeled(
            rec(0, 1, &[("a", "alpha beta")]),
            rec(1, 1, &[("a", "alpha"), ("b", "gamma")]),
            true,
        )]);
        let base = DriftBaseline::build(&model, &train);
        assert!(base.attributes.contains("a") && base.attributes.contains("b"));
        for t in ["alpha", "beta", "gamma"] {
            assert!(base.vocabulary.contains(t), "missing token {t}");
        }
        // 4 cells (2 records x 2 attrs), 1 missing (left "b").
        assert!((base.missing_rate - 0.25).abs() < 1e-9);
        assert_eq!(base.mean_attention.len(), model.extractor().num_features());
    }

    #[test]
    fn monitor_flags_each_challenge_on_crafted_records() {
        let model = tiny_model(&["a", "b"]);
        let train = Domain::new(vec![EntityPair::labeled(
            rec(0, 1, &[("a", "alpha beta"), ("b", "gamma")]),
            rec(1, 1, &[("a", "alpha beta"), ("b", "gamma")]),
            true,
        )]);
        let monitor = DriftMonitor::new(DriftBaseline::build(&model, &train));

        // C1: target records missing everything except one attribute.
        let sparse = Domain::new(vec![EntityPair::unlabeled(
            rec(5, 10, &[("a", "alpha")]),
            rec(6, 10, &[("a", "alpha")]),
        )]);
        let drifts = monitor.assess(&model, &sparse);
        assert_eq!(drifts.len(), 2);
        for d in &drifts {
            assert!(d.warned(DriftSignal::MissingRate), "C1 should fire: {:?}", d.warnings);
            assert!(!d.warned(DriftSignal::NewAttributes));
            assert!(!d.warned(DriftSignal::OovRate));
        }

        // C2 + C3: a new attribute carrying unseen tokens.
        let novel = Domain::new(vec![EntityPair::unlabeled(
            rec(7, 11, &[("a", "alpha beta"), ("b", "gamma"), ("z", "zeta omega")]),
            rec(8, 11, &[("a", "alpha beta"), ("b", "gamma"), ("z", "zeta omega")]),
        )]);
        let drifts = monitor.assess(&model, &novel);
        for d in &drifts {
            assert!(!d.warned(DriftSignal::MissingRate));
            assert!(d.warned(DriftSignal::NewAttributes), "C2 should fire");
            assert_eq!(d.new_attributes, vec!["z".to_string()]);
            assert!(d.warned(DriftSignal::OovRate), "C3 should fire (oov {})", d.oov_rate);
        }

        // Control: records drawn from the training distribution are quiet.
        let control = Domain::new(vec![EntityPair::unlabeled(
            rec(9, 12, &[("a", "alpha beta"), ("b", "gamma")]),
            rec(0, 12, &[("a", "alpha beta"), ("b", "gamma")]),
        )]);
        for d in monitor.assess(&model, &control) {
            assert!(!d.warned(DriftSignal::MissingRate));
            assert!(!d.warned(DriftSignal::NewAttributes));
            assert!(!d.warned(DriftSignal::OovRate));
        }
    }

    #[test]
    fn assess_orders_sources_and_counts_pairs() {
        let model = tiny_model(&["a"]);
        let train = Domain::new(vec![EntityPair::labeled(
            rec(0, 1, &[("a", "x")]),
            rec(1, 1, &[("a", "x")]),
            true,
        )]);
        let monitor = DriftMonitor::new(DriftBaseline::build(&model, &train));
        let target = Domain::new(vec![
            EntityPair::unlabeled(rec(4, 1, &[("a", "x")]), rec(3, 1, &[("a", "x")])),
            EntityPair::unlabeled(rec(3, 2, &[("a", "x")]), rec(4, 3, &[("a", "x")])),
        ]);
        let drifts = monitor.assess(&model, &target);
        let ids: Vec<u32> = drifts.iter().map(|d| d.source.0).collect();
        assert_eq!(ids, vec![3, 4]);
        for d in &drifts {
            assert_eq!(d.pairs, 2);
            assert_eq!(d.records, 2, "dedup by entity id within source");
        }
        let total: u64 = drifts[0].score_hist.iter().sum();
        assert_eq!(total, 2, "one score per touching pair");
    }

    #[test]
    fn emit_runlog_is_inert_when_disabled() {
        runlog::set_forced_path(Some(""));
        let model = tiny_model(&["a"]);
        let train = Domain::new(vec![EntityPair::labeled(
            rec(0, 1, &[("a", "x")]),
            rec(1, 1, &[("a", "x")]),
            true,
        )]);
        let monitor = DriftMonitor::new(DriftBaseline::build(&model, &train));
        let target =
            Domain::new(vec![EntityPair::unlabeled(rec(4, 1, &[("a", "x")]), rec(3, 1, &[]))]);
        for d in monitor.assess(&model, &target) {
            d.emit_runlog(); // must not panic or write anywhere
        }
        runlog::set_forced_path(None);
    }
}
