//! An end-to-end linkage pipeline for downstream use: blocking + scoring +
//! thresholding over raw record collections.
//!
//! The experiments operate on pre-built pair sets; a consumer of the
//! library usually has two bags of records instead. [`Linker`] wraps a
//! trained [`AdamelModel`] with token blocking so linking two collections is
//! one call.

use crate::model::AdamelModel;
use adamel_schema::blocking::BlockingIndex;
use adamel_schema::{EntityPair, Record};
use adamel_tensor::parallel;

/// A scored candidate match between two records.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Index into the left collection.
    pub left: usize,
    /// Index into the right collection.
    pub right: usize,
    /// Model match score in `[0, 1]`.
    pub score: f32,
}

/// Configuration of the linking pass.
#[derive(Debug, Clone)]
pub struct LinkerConfig {
    /// Attributes used for token blocking.
    pub block_attrs: Vec<String>,
    /// Maximum candidates considered per left record.
    pub max_candidates_per_record: usize,
    /// Minimum score to emit a match.
    pub threshold: f32,
    /// Keep only the best match per left record.
    pub one_to_one: bool,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        Self {
            block_attrs: vec!["name".into()],
            max_candidates_per_record: 20,
            threshold: 0.5,
            one_to_one: false,
        }
    }
}

/// Blocking + scoring pipeline around a trained model.
pub struct Linker {
    model: AdamelModel,
    cfg: LinkerConfig,
}

impl Linker {
    /// Wraps a trained model.
    pub fn new(model: AdamelModel, cfg: LinkerConfig) -> Self {
        Self { model, cfg }
    }

    /// The wrapped model.
    pub fn model(&self) -> &AdamelModel {
        &self.model
    }

    /// The linking configuration, for callers that replicate the blocking
    /// stage externally (incremental indexes must probe with the same
    /// `block_attrs` and candidate cap to stay equivalent).
    pub fn config(&self) -> &LinkerConfig {
        &self.cfg
    }

    /// Links two record collections: blocks, scores every candidate pair in
    /// one batch, applies the threshold (and one-to-one reduction if
    /// configured). Results are sorted by descending score.
    pub fn link(&self, left: &[Record], right: &[Record]) -> Vec<MatchResult> {
        adamel_obs::trace_span!("link");
        let block_attrs: Vec<&str> = self.cfg.block_attrs.iter().map(String::as_str).collect();

        let blocking = adamel_obs::span("blocking");
        let index = BlockingIndex::new(right, &block_attrs);

        // Candidate generation is independent per left record; probe the
        // index in parallel and flatten serially so pair order (and thus
        // output order for tied scores) matches the sequential loop.
        let per_left: Vec<Vec<usize>> = parallel::parallel_map_collect(
            left.len(),
            self.cfg.max_candidates_per_record * 64,
            |li| index.candidates_for(&left[li], &block_attrs, self.cfg.max_candidates_per_record),
        );
        drop(blocking);
        self.score_candidates(left, right, &per_left)
    }

    /// Scores a pre-blocked candidate set: `candidates[li]` lists the
    /// `right` indices paired with `left[li]`. This is the second half of
    /// [`link`](Self::link) — pair construction in `(li, ri)` order, one
    /// batched `predict`, thresholding, the stable descending sort, and the
    /// optional one-to-one reduction — exposed so callers that maintain
    /// their own incremental blocking index (`adamel-serve`'s `LiveIndex`)
    /// produce **bit-identical** results to the offline pipeline on the
    /// same candidates.
    ///
    /// Out-of-range candidate indices are skipped (an incremental index can
    /// momentarily disagree with the snapshot it was probed against);
    /// `candidates` entries beyond `left.len()` are ignored.
    pub fn score_candidates(
        &self,
        left: &[Record],
        right: &[Record],
        candidates: &[Vec<usize>],
    ) -> Vec<MatchResult> {
        let mut pairs = Vec::new();
        let mut pair_ids = Vec::new();
        for (li, (lrec, cands)) in left.iter().zip(candidates.iter()).enumerate() {
            for &ri in cands {
                if let Some(rrec) = right.get(ri) {
                    pairs.push(EntityPair::unlabeled(lrec.clone(), rrec.clone()));
                    pair_ids.push((li, ri));
                }
            }
        }
        adamel_obs::trace_count!("link.candidates", pairs.len() as u64);
        if pairs.is_empty() {
            adamel_obs::runlog::event("link")
                .int("left_records", left.len() as u64)
                .int("right_records", right.len() as u64)
                .int("candidates", 0)
                .int("scored", 0)
                .int("matches", 0)
                .num("threshold", f64::from(self.cfg.threshold))
                .emit();
            return Vec::new();
        }
        let score_span = adamel_obs::span("score");
        let scores = self.model.predict(&pairs);
        drop(score_span);
        adamel_obs::trace_count!("link.pairs_scored", scores.len() as u64);
        let scored = scores.len();

        let mut results: Vec<MatchResult> = pair_ids
            .into_iter()
            .zip(scores)
            .filter(|(_, s)| *s >= self.cfg.threshold)
            .map(|((left, right), score)| MatchResult { left, right, score })
            .collect();
        // total_cmp for the same reason as attention.rs: sigmoid scores are
        // finite, but the ordering must never become input-order-dependent.
        debug_assert!(results.iter().all(|m| m.score.is_finite()), "non-finite match score");
        results.sort_by(|a, b| b.score.total_cmp(&a.score));

        if self.cfg.one_to_one {
            let mut used_left = std::collections::HashSet::new();
            let mut used_right = std::collections::HashSet::new();
            results.retain(|m| used_left.insert(m.left) && used_right.insert(m.right));
        }
        adamel_obs::trace_count!("link.matches", results.len() as u64);
        adamel_obs::runlog::event("link")
            .int("left_records", left.len() as u64)
            .int("right_records", right.len() as u64)
            .int("candidates", pairs.len() as u64)
            .int("scored", scored as u64)
            .int("matches", results.len() as u64)
            .num("threshold", f64::from(self.cfg.threshold))
            .emit();
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdamelConfig;
    use crate::config::Variant;
    use crate::train::fit;
    use adamel_schema::{Domain, Schema, SourceId};

    fn rec(source: u32, id: u64, name: &str) -> Record {
        let mut r = Record::new(SourceId(source), id);
        r.set("name", name);
        r
    }

    fn trained_linker(one_to_one: bool) -> Linker {
        let schema = Schema::new(vec!["name".into()]);
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        let names = ["alpha beta", "gamma delta", "epsilon zeta", "eta theta"];
        let mut train = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let id = i as u64;
            train.push(EntityPair::labeled(rec(0, id, n), rec(1, id, n), true));
            let other = names[(i + 1) % names.len()];
            train.push(EntityPair::labeled(rec(0, id, n), rec(1, id + 50, other), false));
        }
        fit(&mut model, Variant::Base, &Domain::new(train), None, None);
        Linker::new(model, LinkerConfig { threshold: 0.5, one_to_one, ..Default::default() })
    }

    #[test]
    fn links_matching_records() {
        let linker = trained_linker(false);
        let left = vec![rec(0, 100, "alpha beta"), rec(0, 101, "gamma delta")];
        let right =
            vec![rec(1, 200, "gamma delta"), rec(1, 201, "alpha beta"), rec(1, 202, "omicron pi")];
        let matches = linker.link(&left, &right);
        assert!(!matches.is_empty());
        // Top match should pair identical names.
        let top = &matches[0];
        assert_eq!(left[top.left].get("name"), right[top.right].get("name"));
    }

    #[test]
    fn one_to_one_removes_duplicate_assignments() {
        let linker = trained_linker(true);
        let left = vec![rec(0, 1, "alpha beta"), rec(0, 2, "alpha beta")];
        let right = vec![rec(1, 3, "alpha beta")];
        let matches = linker.link(&left, &right);
        assert!(matches.len() <= 1, "one-to-one violated: {matches:?}");
    }

    #[test]
    fn empty_inputs_yield_no_matches() {
        let linker = trained_linker(false);
        assert!(linker.link(&[], &[]).is_empty());
        assert!(linker.link(&[rec(0, 1, "x")], &[]).is_empty());
    }

    #[test]
    fn score_candidates_is_bit_identical_to_link() {
        let linker = trained_linker(false);
        let left = vec![rec(0, 1, "alpha beta"), rec(0, 2, "gamma delta")];
        let right =
            vec![rec(1, 3, "alpha beta"), rec(1, 4, "gamma delta"), rec(1, 5, "alpha gamma")];
        let attrs: Vec<&str> = linker.cfg.block_attrs.iter().map(String::as_str).collect();
        let index = BlockingIndex::new(&right, &attrs);
        let per_left: Vec<Vec<usize>> = left
            .iter()
            .map(|l| index.candidates_for(l, &attrs, linker.cfg.max_candidates_per_record))
            .collect();
        let via_candidates = linker.score_candidates(&left, &right, &per_left);
        let via_link = linker.link(&left, &right);
        assert_eq!(via_candidates.len(), via_link.len());
        for (a, b) in via_candidates.iter().zip(via_link.iter()) {
            assert_eq!((a.left, a.right), (b.left, b.right));
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "scores must match bitwise");
        }
    }

    #[test]
    fn score_candidates_skips_out_of_range_indices() {
        let linker = trained_linker(false);
        let left = vec![rec(0, 1, "alpha beta")];
        let right = vec![rec(1, 3, "alpha beta")];
        let matches = linker.score_candidates(&left, &right, &[vec![0, 7]]);
        assert!(matches.iter().all(|m| m.right < right.len()));
    }

    #[test]
    fn results_sorted_descending() {
        let linker = trained_linker(false);
        let left = vec![rec(0, 1, "alpha beta"), rec(0, 2, "gamma delta")];
        let right =
            vec![rec(1, 3, "alpha beta"), rec(1, 4, "gamma delta"), rec(1, 5, "alpha gamma")];
        let matches = linker.link(&left, &right);
        for w in matches.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
