//! Model persistence.
//!
//! Trained models serialize to a small self-describing text format (exact
//! `f32` round-trip via bit patterns) so a model trained once can score new
//! source batches later — the deployment pattern of the incremental
//! scenario. No external serialization crates are needed.

use crate::config::AdamelConfig;
use crate::model::AdamelModel;
use adamel_schema::{FeatureMode, Schema};
use adamel_tensor::Matrix;
use std::io::{self, BufRead, Write};

const MAGIC: &str = "adamel-model v1";

fn mode_tag(mode: FeatureMode) -> &'static str {
    match mode {
        FeatureMode::SharedOnly => "shared",
        FeatureMode::UniqueOnly => "unique",
        FeatureMode::Both => "both",
    }
}

fn mode_from_tag(tag: &str) -> io::Result<FeatureMode> {
    match tag {
        "shared" => Ok(FeatureMode::SharedOnly),
        "unique" => Ok(FeatureMode::UniqueOnly),
        "both" => Ok(FeatureMode::Both),
        other => Err(bad(format!("unknown feature mode {other}"))),
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes a trained model.
pub fn save_model(model: &AdamelModel, w: &mut impl Write) -> io::Result<()> {
    let cfg = model.config();
    writeln!(w, "{MAGIC}")?;
    writeln!(
        w,
        "config {} {} {} {} {} {} {} {} {} {} {} {}",
        cfg.embed_dim,
        cfg.feature_dim,
        cfg.attention_dim,
        cfg.hidden_dim,
        cfg.crop,
        cfg.learning_rate,
        cfg.epochs,
        cfg.batch_size,
        cfg.lambda,
        cfg.phi,
        mode_tag(cfg.feature_mode),
        cfg.seed,
    )?;
    let attrs = model.extractor().schema().attributes();
    writeln!(w, "schema {}", attrs.join(" "))?;
    let snapshot = model.snapshot_params();
    writeln!(w, "params {}", snapshot.len())?;
    for m in &snapshot {
        write!(w, "tensor {} {}", m.rows(), m.cols())?;
        for v in m.as_slice() {
            write!(w, " {:08x}", v.to_bits())?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a model written by [`save_model`].
pub fn load_model(r: &mut impl BufRead) -> io::Result<AdamelModel> {
    let mut lines = r.lines();
    let mut next = || lines.next().unwrap_or_else(|| Err(bad("unexpected end of model file")));

    if next()? != MAGIC {
        return Err(bad("not an adamel model file"));
    }
    let config_line = next()?;
    let parts: Vec<&str> = config_line.split_whitespace().collect();
    if parts.len() != 13 || parts.first() != Some(&"config") {
        return Err(bad("malformed config line"));
    }
    let field = |i: usize| parts.get(i).copied().ok_or_else(|| bad("malformed config line"));
    let p = |i: usize| -> io::Result<usize> { field(i)?.parse().map_err(|_| bad("bad integer")) };
    let pf = |i: usize| -> io::Result<f32> { field(i)?.parse().map_err(|_| bad("bad float")) };
    let cfg = AdamelConfig {
        embed_dim: p(1)?,
        feature_dim: p(2)?,
        attention_dim: p(3)?,
        hidden_dim: p(4)?,
        crop: p(5)?,
        learning_rate: pf(6)?,
        epochs: p(7)?,
        batch_size: p(8)?,
        lambda: pf(9)?,
        phi: pf(10)?,
        feature_mode: mode_from_tag(field(11)?)?,
        seed: field(12)?.parse().map_err(|_| bad("bad seed"))?,
        grad_clip: Some(5.0),
        uniform_attention: false,
    };

    let schema_line = next()?;
    let attrs: Vec<String> = schema_line
        .strip_prefix("schema ")
        .ok_or_else(|| bad("malformed schema line"))?
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    if attrs.is_empty() {
        return Err(bad("empty schema"));
    }
    let schema = Schema::new(attrs);

    let params_line = next()?;
    let count: usize = params_line
        .strip_prefix("params ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("malformed params line"))?;

    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        let line = next()?;
        let mut it = line.split_whitespace();
        if it.next() != Some("tensor") {
            return Err(bad("malformed tensor line"));
        }
        let rows: usize = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("bad rows"))?;
        let cols: usize = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("bad cols"))?;
        let mut data = Vec::with_capacity(rows * cols);
        for tok in it {
            let bits = u32::from_str_radix(tok, 16).map_err(|_| bad("bad value"))?;
            data.push(f32::from_bits(bits));
        }
        if data.len() != rows * cols {
            return Err(bad(format!("tensor expected {} values, got {}", rows * cols, data.len())));
        }
        tensors.push(Matrix::from_vec(rows, cols, data));
    }

    let mut model = AdamelModel::new(cfg, schema);
    model.restore_params(&tensors).map_err(|e| bad(format!("parameter restore failed: {e}")))?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::train::fit;
    use adamel_schema::{Domain, EntityPair, Record, SourceId};
    use std::io::BufReader;

    fn trained_model() -> (AdamelModel, Vec<EntityPair>) {
        let schema = Schema::new(vec!["name".into()]);
        let mut model = AdamelModel::new(AdamelConfig::tiny(), schema);
        let mut train = Vec::new();
        for i in 0..6u64 {
            let mut a = Record::new(SourceId(0), i);
            a.set("name", format!("item {i} alpha"));
            let mut b = Record::new(SourceId(1), i);
            b.set("name", format!("item {i} alpha"));
            train.push(EntityPair::labeled(a.clone(), b, true));
            let mut c = Record::new(SourceId(1), i + 40);
            c.set("name", format!("other {} beta", i + 9));
            train.push(EntityPair::labeled(a, c, false));
        }
        fit(&mut model, Variant::Base, &Domain::new(train.clone()), None, None);
        (model, train)
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let (model, pairs) = trained_model();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).expect("save to Vec cannot fail");
        let restored = load_model(&mut BufReader::new(&buf[..])).expect("round trip should load");
        assert_eq!(model.predict(&pairs), restored.predict(&pairs));
        assert_eq!(model.num_parameters(), restored.num_parameters());
        assert_eq!(
            model.extractor().schema().attributes(),
            restored.extractor().schema().attributes()
        );
    }

    #[test]
    fn rejects_garbage() {
        let data = b"not a model\n";
        assert!(load_model(&mut BufReader::new(&data[..])).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let (model, _) = trained_model();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).expect("save to Vec cannot fail");
        let truncated = &buf[..buf.len() / 2];
        assert!(load_model(&mut BufReader::new(truncated)).is_err());
    }
}
