//! The AdaMEL network (paper §4.2–4.3, Fig. 4).
//!
//! * per-feature non-linear affine: `x_j = relu(h_j V_j + b_j)` (Eq. 4);
//! * shared feature-attention head: `g(x_j) = softmax_j(aᵀ tanh(W x_j))`
//!   (Eq. 5–6);
//! * classifier: `ŷ = Θ(relu(f(x) ⊙ x))`, a 2-layer MLP over the attention-
//!   weighted features (Eq. 7).

use crate::config::AdamelConfig;
use adamel_schema::{EntityPair, FeatureExtractor, Schema};
use adamel_tensor::plan::{BufferPool, CompiledPlan};
use adamel_tensor::{init, parallel, Graph, Matrix, ParamId, ParamSet, Var};
use adamel_text::HashedFastText;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Handles to all trainable parameters.
pub(crate) struct ModelParams {
    /// Per-feature projection weights `V_j` (`D x H` each).
    pub v: Vec<ParamId>,
    /// Per-feature biases `b_j` (`1 x H` each).
    pub b: Vec<ParamId>,
    /// Shared attention transform `W` (`H x H'`).
    pub w_att: ParamId,
    /// Shared attention vector `a` (`H' x 1`).
    pub a_att: ParamId,
    /// Classifier layer 1 (`F*H x H_hidden`).
    pub w1: ParamId,
    /// Classifier bias 1.
    pub b1: ParamId,
    /// Classifier layer 2 (`H_hidden x 1`).
    pub w2: ParamId,
    /// Classifier bias 2.
    pub b2: ParamId,
}

/// Output node handles of one forward construction.
pub(crate) struct ForwardNodes {
    /// The encoded-batch constant the forward was built over (the plan
    /// compiler's replay-time leaf).
    pub input: Var,
    /// Attention distribution `f(x)`, shape `n x F`.
    pub attention: Var,
    /// Classifier logits, shape `n x 1`.
    pub logits: Var,
}

/// The tape-free inference programs, compiled lazily from one probe forward.
///
/// Two separately pruned plans: the attention plan stops at `f(x)` and never
/// replays the classifier, so knowledge-transfer extraction (`attention_*`)
/// pays only the head's FLOPs. Each plan gets its own warm-buffer pool
/// because buffer *i* holds differently shaped intermediates per plan.
struct CompiledForward {
    predict: CompiledPlan,
    attention: CompiledPlan,
    predict_pool: BufferPool,
    attention_pool: BufferPool,
}

/// Probe batch size used to record the plan. Any value ≥ 2 works; 2 keeps
/// the probe cheap while staying clear of row-count 1, which legitimate
/// `1 x k` constants (none today) could collide with in the compiler's
/// scaling-constant check.
const PLAN_PROBE_ROWS: usize = 2;

/// Batch-inference chunk size: `predict`/`attention` build one bounded
/// autograd graph per block of this many rows and score blocks on scoped
/// worker threads. Every forward op is row-independent, so block boundaries
/// (a function of this constant alone, never the thread count) do not change
/// the numbers: chunked output is bit-identical to one monolithic graph.
const PREDICT_CHUNK_ROWS: usize = 512;

/// The AdaMEL model: feature extraction plus network parameters.
///
/// Training is performed by [`crate::train::fit`]; the model itself
/// exposes deterministic inference ([`predict`](Self::predict)) and
/// attention inspection ([`attention`](Self::attention)).
pub struct AdamelModel {
    pub(crate) cfg: AdamelConfig,
    pub(crate) extractor: FeatureExtractor,
    pub(crate) params: ParamSet,
    pub(crate) ids: ModelParams,
    /// Lazily compiled inference plans. `None` inside the cell means the
    /// graph was probed and found non-specializable (uniform-attention
    /// ablation, zero features) — inference then stays on the tape path.
    /// Plans read parameters live from `self.params`, so training and
    /// [`restore_params`](Self::restore_params) never invalidate them.
    plan: OnceLock<Option<CompiledForward>>,
}

impl AdamelModel {
    /// Builds a model over an aligned schema.
    pub fn new(cfg: AdamelConfig, schema: Schema) -> Self {
        let embedder = HashedFastText::new(cfg.embed_dim, cfg.seed);
        let extractor = FeatureExtractor::new(schema, embedder, cfg.crop, cfg.feature_mode);
        let f = extractor.num_features();
        let (d, h, h_att, hidden) =
            (cfg.embed_dim, cfg.feature_dim, cfg.attention_dim, cfg.hidden_dim);

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x000a_dae1_u64);
        let mut params = ParamSet::new();
        let mut v = Vec::with_capacity(f);
        let mut b = Vec::with_capacity(f);
        for j in 0..f {
            v.push(params.insert(format!("V[{j}]"), init::he_uniform(d, h, &mut rng)));
            b.push(params.insert(format!("b[{j}]"), Matrix::zeros(1, h)));
        }
        let w_att = params.insert("W_att", init::xavier_uniform(h, h_att, &mut rng));
        let a_att = params.insert("a_att", init::xavier_uniform(h_att, 1, &mut rng));
        // Θ consumes the concatenated F·H'-dim attention-space features —
        // §4.5: "Θ takes the concatenated FH'-dim features as input", which
        // is also what reproduces the paper's ~2.22M parameter count.
        let w1 = params.insert("Theta.W1", init::he_uniform(f * h_att, hidden, &mut rng));
        let b1 = params.insert("Theta.b1", Matrix::zeros(1, hidden));
        let w2 = params.insert("Theta.W2", init::xavier_uniform(hidden, 1, &mut rng));
        let b2 = params.insert("Theta.b2", Matrix::zeros(1, 1));

        let ids = ModelParams { v, b, w_att, a_att, w1, b1, w2, b2 };
        Self { cfg, extractor, params, ids, plan: OnceLock::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &AdamelConfig {
        &self.cfg
    }

    /// The feature extractor (schema + embedder).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Total scalar parameter count — the paper's §4.5
    /// `O(FDH + HH' + FH'H_hidden)` quantity, reported against
    /// EntityMatcher's in §5.5.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Encodes pairs into the `n x (F*D)` token-embedding block.
    pub fn encode(&self, pairs: &[EntityPair]) -> Matrix {
        self.extractor.encode_pairs(pairs)
    }

    /// Statistics of the extractor's record-level encoding cache: distinct
    /// records memoized, interned vocabulary size, and lookup hit/miss
    /// counts across everything this model has encoded (training, support,
    /// target, and inference batches all share the cache).
    #[must_use = "cache stats are a snapshot; fetching them without reading is a no-op"]
    pub fn encode_cache_stats(&self) -> adamel_schema::EncodeCacheStats {
        self.extractor.cache_stats()
    }

    /// Drops the extractor's record-level encoding cache — use to bound
    /// memory when a model is reused across unrelated corpora.
    pub fn clear_encode_cache(&self) {
        self.extractor.clear_cache()
    }

    /// Estimated forward FLOPs per encoded row — the paper's §4.5
    /// `O(FDH + HH' + FH'H_hidden)` cost, used to plan inference dispatch
    /// and to normalize bench timings into GFLOP/s.
    pub fn per_row_flops(&self) -> usize {
        let f = self.extractor.num_features();
        let (d, h, ha, hh) =
            (self.cfg.embed_dim, self.cfg.feature_dim, self.cfg.attention_dim, self.cfg.hidden_dim);
        f * 2 * (d * h + h * ha + ha) + 2 * (f * ha * hh + hh)
    }

    /// Builds the full forward graph over an encoded batch. Takes the batch
    /// by value: the graph owns its constants, so passing ownership avoids
    /// copying the `n x F·D` block on every forward.
    pub(crate) fn forward(&self, g: &mut Graph, encoded: Matrix) -> ForwardNodes {
        let _forward = adamel_obs::span("forward");
        let f = self.extractor.num_features();
        let d = self.cfg.embed_dim;
        let n = encoded.rows();
        let input = g.constant(encoded);

        // Per-feature latent projections x_j (Eq. 4).
        let phase = adamel_obs::span("feature_proj");
        let mut xs = Vec::with_capacity(f);
        for j in 0..f {
            let h_j = g.slice_cols(input, j * d, d);
            let v_j = g.param(&self.params, self.ids.v[j]);
            let b_j = g.param(&self.params, self.ids.b[j]);
            xs.push(g.linear_relu(h_j, v_j, b_j));
        }
        drop(phase);

        // Shared attention energies e_j = aᵀ tanh(W x_j) (Eq. 5). The tanh
        // projections t_j are kept: they are both the attention input and
        // the H'-dim representation Θ consumes (§4.5's F·H'·H_hidden term).
        let phase = adamel_obs::span("attention_head");
        let w_att = g.param(&self.params, self.ids.w_att);
        let a_att = g.param(&self.params, self.ids.a_att);
        let mut ts = Vec::with_capacity(f);
        let mut energies = Vec::with_capacity(f);
        for &x_j in &xs {
            let t = g.matmul(x_j, w_att);
            let t = g.tanh(t);
            energies.push(g.matmul(t, a_att));
            ts.push(t);
        }
        let e = g.concat_cols(&energies);
        // f(x), rows sum to 1 (Eq. 6); the uniform-attention ablation
        // replaces the learned distribution with the constant 1/F vector.
        let attention = if self.cfg.uniform_attention {
            g.constant(Matrix::full(n, f, 1.0 / f as f32))
        } else {
            g.softmax_rows(e)
        };
        drop(phase);

        let phase = adamel_obs::span("classifier");
        // Attention-weighted features z_j = relu(g_j * t_j) (Eq. 7).
        let mut zs = Vec::with_capacity(f);
        for (j, &t_j) in ts.iter().enumerate() {
            let g_j = g.slice_cols(attention, j, 1);
            let weighted = g.mul_col_broadcast(t_j, g_j);
            zs.push(g.relu(weighted));
        }
        let z = g.concat_cols(&zs);

        // Classifier Θ.
        let w1 = g.param(&self.params, self.ids.w1);
        let b1 = g.param(&self.params, self.ids.b1);
        let hidden = g.linear_relu(z, w1, b1);
        let w2 = g.param(&self.params, self.ids.w2);
        let b2 = g.param(&self.params, self.ids.b2);
        let logits = g.linear(hidden, w2, b2);
        drop(phase);

        ForwardNodes { input, attention, logits }
    }

    /// The compiled inference plans, built on first use from one probe
    /// forward at [`PLAN_PROBE_ROWS`] rows. Returns `None` when the graph
    /// cannot be shape-specialized (the uniform-attention ablation records
    /// a batch-sized constant; a featureless schema has nothing to record)
    /// — callers then fall back to the tape path, which handles every graph.
    fn compiled(&self) -> Option<&CompiledForward> {
        self.plan
            .get_or_init(|| {
                let cols = self.extractor.num_features() * self.cfg.embed_dim;
                if cols == 0 {
                    return None;
                }
                let mut g = Graph::new();
                let nodes = self.forward(&mut g, Matrix::zeros(PLAN_PROBE_ROWS, cols));
                let predict = CompiledPlan::compile(&g, nodes.input, &[nodes.logits]).ok()?;
                let attention = CompiledPlan::compile(&g, nodes.input, &[nodes.attention]).ok()?;
                Some(CompiledForward {
                    predict,
                    attention,
                    predict_pool: BufferPool::new(),
                    attention_pool: BufferPool::new(),
                })
            })
            .as_ref()
    }

    /// Builds the full forward graph over an encoded batch and returns the
    /// `(attention, logits)` node handles. This is the single-graph hook the
    /// differential oracle and the chunking boundary tests use to compare
    /// [`predict_encoded`](Self::predict_encoded) against one monolithic
    /// forward pass.
    pub fn forward_graph(&self, g: &mut Graph, encoded: Matrix) -> (Var, Var) {
        let nodes = self.forward(g, encoded);
        (nodes.attention, nodes.logits)
    }

    /// Match scores (`sigmoid(logit)`) for a batch of pairs.
    pub fn predict(&self, pairs: &[EntityPair]) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        if self.compiled().is_some() {
            return self.predict_encoded(&self.encode(pairs));
        }
        self.predict_owned(self.encode(pairs))
    }

    /// Match scores for pre-encoded pairs. Replays the compiled plan when
    /// the graph is specializable, else records a tape per chunk; both paths
    /// chunk at the same boundaries and are bit-identical.
    pub fn predict_encoded(&self, encoded: &Matrix) -> Vec<f32> {
        match self.compiled() {
            Some(cf) => self.predict_plan(cf, encoded),
            None => self.predict_encoded_tape(encoded),
        }
    }

    /// Tape-path scoring: records a fresh autograd graph per chunk. This is
    /// the reference implementation the plan path is bit-compared against
    /// (and the fallback for non-specializable graphs).
    pub fn predict_encoded_tape(&self, encoded: &Matrix) -> Vec<f32> {
        if encoded.rows() <= PREDICT_CHUNK_ROWS {
            // Single-graph path; the clone here matches the historical cost
            // of the borrowed-forward copy and only hits small batches.
            return self.predict_owned(encoded.clone());
        }
        adamel_obs::trace_span!("predict");
        adamel_obs::trace_count!("predict.rows", encoded.rows() as u64);
        adamel_obs::trace_count!(
            "predict.chunks",
            encoded.rows().div_ceil(PREDICT_CHUNK_ROWS) as u64
        );
        let mut scores = vec![0.0f32; encoded.rows()];
        parallel::parallel_for_row_blocks(
            &mut scores,
            1,
            PREDICT_CHUNK_ROWS,
            self.per_row_flops(),
            |start, block| {
                let chunk = encoded.slice_rows(start, block.len());
                let mut g = Graph::new();
                let nodes = self.forward(&mut g, chunk);
                for (o, &z) in block.iter_mut().zip(g.value(nodes.logits).as_slice()) {
                    *o = 1.0 / (1.0 + (-z).exp());
                }
            },
        );
        scores
    }

    /// Single-allocation tape fast path when the caller can hand over the
    /// batch (only reached when no plan is available).
    fn predict_owned(&self, encoded: Matrix) -> Vec<f32> {
        if encoded.rows() > PREDICT_CHUNK_ROWS {
            return self.predict_encoded_tape(&encoded);
        }
        adamel_obs::trace_span!("predict");
        adamel_obs::trace_count!("predict.rows", encoded.rows() as u64);
        let mut g = Graph::new();
        let nodes = self.forward(&mut g, encoded);
        g.value(nodes.logits).as_slice().iter().map(|&z| 1.0 / (1.0 + (-z).exp())).collect()
    }

    /// Plan-path scoring: replays the compiled program per chunk into warm
    /// buffers from the pool. Chunk boundaries are the same function of
    /// [`PREDICT_CHUNK_ROWS`] as the tape path, each chunk's rows are staged
    /// by the same row-copy `slice_rows` performs, and replay runs the same
    /// kernels the tape ops delegate to — so scores are bit-identical to
    /// [`predict_encoded_tape`](Self::predict_encoded_tape).
    fn predict_plan(&self, cf: &CompiledForward, encoded: &Matrix) -> Vec<f32> {
        adamel_obs::trace_span!("predict");
        adamel_obs::trace_count!("predict.rows", encoded.rows() as u64);
        adamel_obs::trace_count!(
            "predict.chunks",
            encoded.rows().div_ceil(PREDICT_CHUNK_ROWS) as u64
        );
        let mut scores = vec![0.0f32; encoded.rows()];
        if encoded.rows() == 0 {
            return scores;
        }
        parallel::parallel_for_row_blocks(
            &mut scores,
            1,
            PREDICT_CHUNK_ROWS,
            self.per_row_flops(),
            |start, block| {
                let mut bufs = cf.predict_pool.checkout();
                cf.predict.execute_rows(&self.params, encoded, start, block.len(), &mut bufs);
                let logits = cf.predict.output(0, &bufs);
                for (o, &z) in block.iter_mut().zip(logits.as_slice()) {
                    *o = 1.0 / (1.0 + (-z).exp());
                }
                cf.predict_pool.put_back(bufs);
            },
        );
        scores
    }

    /// Per-pair attention distributions `f(x)` (`n x F`, rows sum to 1) —
    /// the transferable knowledge `K`.
    pub fn attention(&self, pairs: &[EntityPair]) -> Matrix {
        let encoded = self.encode(pairs);
        self.attention_encoded(&encoded)
    }

    /// Attention distributions for pre-encoded pairs. Replays the pruned
    /// attention plan (classifier skipped) when available, else records a
    /// tape per chunk; both paths are bit-identical.
    pub fn attention_encoded(&self, encoded: &Matrix) -> Matrix {
        match self.compiled() {
            Some(cf) => self.attention_plan(cf, encoded),
            None => self.attention_encoded_tape(encoded),
        }
    }

    /// Plan-path attention extraction; see
    /// [`predict_plan`](Self::predict_plan) for the bit-identity argument.
    fn attention_plan(&self, cf: &CompiledForward, encoded: &Matrix) -> Matrix {
        adamel_obs::trace_span!("attention");
        adamel_obs::trace_count!("attention.rows", encoded.rows() as u64);
        let f = self.extractor.num_features();
        let mut out = Matrix::zeros(encoded.rows(), f);
        if encoded.rows() == 0 {
            return out;
        }
        parallel::parallel_for_row_blocks(
            out.as_mut_slice(),
            f,
            PREDICT_CHUNK_ROWS,
            self.per_row_flops(),
            |start, block| {
                let mut bufs = cf.attention_pool.checkout();
                let rows = block.len() / f;
                cf.attention.execute_rows(&self.params, encoded, start, rows, &mut bufs);
                block.copy_from_slice(cf.attention.output(0, &bufs).as_slice());
                cf.attention_pool.put_back(bufs);
            },
        );
        out
    }

    /// Tape-path attention extraction: records a fresh graph per chunk. The
    /// reference implementation the plan path is bit-compared against.
    pub fn attention_encoded_tape(&self, encoded: &Matrix) -> Matrix {
        adamel_obs::trace_span!("attention");
        adamel_obs::trace_count!("attention.rows", encoded.rows() as u64);
        let f = self.extractor.num_features();
        if encoded.rows() <= PREDICT_CHUNK_ROWS || f == 0 {
            let mut g = Graph::new();
            let nodes = self.forward(&mut g, encoded.clone());
            return g.value(nodes.attention).clone();
        }
        let mut out = Matrix::zeros(encoded.rows(), f);
        parallel::parallel_for_row_blocks(
            out.as_mut_slice(),
            f,
            PREDICT_CHUNK_ROWS,
            self.per_row_flops(),
            |start, block| {
                let chunk = encoded.slice_rows(start, block.len() / f);
                let mut g = Graph::new();
                let nodes = self.forward(&mut g, chunk);
                block.copy_from_slice(g.value(nodes.attention).as_slice());
            },
        );
        out
    }

    /// Deep copies of all parameter tensors, in registration order (for
    /// persistence and best-model tracking).
    pub fn snapshot_params(&self) -> Vec<Matrix> {
        self.params.snapshot()
    }

    /// Restores parameters from a [`snapshot_params`](Self::snapshot_params)
    /// image; fails (without mutating) if arity or shapes disagree.
    pub fn restore_params(&mut self, tensors: &[Matrix]) -> Result<(), String> {
        let ids: Vec<_> = self.params.ids().collect();
        if tensors.len() != ids.len() {
            return Err(format!("expected {} tensors, got {}", ids.len(), tensors.len()));
        }
        for (id, t) in ids.iter().zip(tensors) {
            let expected = self.params.value(*id).shape();
            if expected != t.shape() {
                return Err(format!(
                    "parameter {} expects shape {:?}, got {:?}",
                    self.params.name(*id),
                    expected,
                    t.shape()
                ));
            }
        }
        self.params.restore(tensors);
        Ok(())
    }

    /// Mean attention per feature with names, sorted descending — the
    /// Table 4 "learned importance" report.
    pub fn feature_importance(&self, pairs: &[EntityPair]) -> Vec<(String, f32)> {
        let att = self.attention(pairs);
        let mean = att.mean_rows();
        let mut out: Vec<(String, f32)> = self
            .extractor
            .feature_names()
            .into_iter()
            .zip(mean.as_slice().iter().copied())
            .collect();
        // total_cmp keeps the ranking a total order even if a NaN sneaks
        // through; the old partial_cmp fallback made it input-order
        // dependent (same defect class as the pr_curve tie fix).
        debug_assert!(out.iter().all(|(_, s)| s.is_finite()), "non-finite feature importance");
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{EntityPair, Record, Schema, SourceId};

    fn schema() -> Schema {
        Schema::new(vec!["artist".into(), "title".into()])
    }

    fn pair(l: &[(&str, &str)], r: &[(&str, &str)]) -> EntityPair {
        let mut a = Record::new(SourceId(0), 0);
        for (k, v) in l {
            a.set(*k, *v);
        }
        let mut b = Record::new(SourceId(1), 0);
        for (k, v) in r {
            b.set(*k, *v);
        }
        EntityPair::unlabeled(a, b)
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let model = AdamelModel::new(AdamelConfig::tiny(), schema());
        let pairs = vec![
            pair(&[("title", "hey jude")], &[("title", "hey jude")]),
            pair(&[("artist", "x")], &[("artist", "y z")]),
        ];
        let att = model.attention(&pairs);
        assert_eq!(att.shape(), (2, 4));
        for i in 0..2 {
            let sum: f32 = att.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn predictions_are_probabilities() {
        let model = AdamelModel::new(AdamelConfig::tiny(), schema());
        let pairs =
            vec![pair(&[("title", "a b")], &[("title", "a b")]), pair(&[], &[("artist", "q")])];
        let scores = model.predict(&pairs);
        assert_eq!(scores.len(), 2);
        for s in scores {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn predict_empty_is_empty() {
        let model = AdamelModel::new(AdamelConfig::tiny(), schema());
        assert!(model.predict(&[]).is_empty());
    }

    #[test]
    fn parameter_count_matches_formula() {
        let cfg = AdamelConfig::tiny();
        let model = AdamelModel::new(cfg.clone(), schema());
        let f = model.extractor().num_features();
        let (d, h, ha, hh) = (cfg.embed_dim, cfg.feature_dim, cfg.attention_dim, cfg.hidden_dim);
        // F*(D*H + H) + H*H' + H' + F*H'*H_hidden + H_hidden + H_hidden*1 + 1
        let expected = f * (d * h + h) + h * ha + ha + f * ha * hh + hh + hh + 1;
        assert_eq!(model.num_parameters(), expected);
    }

    #[test]
    fn paper_scale_parameter_count_is_order_of_papers() {
        // §5.5 reports ~2.2M parameters for AdaMEL-hyb on Monitor
        // (13 attributes → F = 26). Our formula at paper dims should land in
        // the same order of magnitude.
        let cfg = AdamelConfig::paper();
        let attrs: Vec<String> = (0..13).map(|i| format!("a{i}")).collect();
        let model = AdamelModel::new(cfg, Schema::new(attrs));
        let n = model.num_parameters();
        // The paper reports ~2_219_520 (weights only; ours includes biases).
        assert!(n > 2_000_000 && n < 2_500_000, "param count {n}");
    }

    #[test]
    fn deterministic_initialization() {
        let a = AdamelModel::new(AdamelConfig::tiny(), schema());
        let b = AdamelModel::new(AdamelConfig::tiny(), schema());
        let p = vec![pair(&[("title", "x y")], &[("title", "x z")])];
        assert_eq!(a.predict(&p), b.predict(&p));
    }

    #[test]
    fn feature_importance_is_sorted_and_complete() {
        let model = AdamelModel::new(AdamelConfig::tiny(), schema());
        let pairs = vec![pair(&[("title", "a")], &[("title", "a")])];
        let imp = model.feature_importance(&pairs);
        assert_eq!(imp.len(), 4);
        for w in imp.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let total: f32 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }
}
