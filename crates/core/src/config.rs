//! Model configuration and the four AdaMEL variants.

use adamel_schema::FeatureMode;

/// Which AdaMEL variant to train (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Supervised on `D_S` only (Fig. 4).
    Base,
    /// Unsupervised domain adaptation via the KL term, Algorithm 1.
    Zero,
    /// Semi-supervised with the labeled support set, Algorithm 2.
    Few,
    /// Both adaptation terms, Algorithm 3.
    Hyb,
}

impl Variant {
    /// All variants in the paper's reporting order.
    pub const ALL: [Variant; 4] = [Variant::Base, Variant::Zero, Variant::Few, Variant::Hyb];

    /// Reporting name ("AdaMEL-base", ...).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Base => "AdaMEL-base",
            Variant::Zero => "AdaMEL-zero",
            Variant::Few => "AdaMEL-few",
            Variant::Hyb => "AdaMEL-hyb",
        }
    }

    /// Whether training uses the unlabeled target domain.
    pub fn uses_target(self) -> bool {
        matches!(self, Variant::Zero | Variant::Hyb)
    }

    /// Whether training uses the labeled support set.
    pub fn uses_support(self) -> bool {
        matches!(self, Variant::Few | Variant::Hyb)
    }
}

/// Hyperparameters of the AdaMEL model (paper §5.1 "Configuration").
#[derive(Debug, Clone)]
pub struct AdamelConfig {
    /// Token embedding dimensionality `D` (paper: 300-d FastText).
    pub embed_dim: usize,
    /// Projected per-feature dimensionality `H` (paper: 64).
    pub feature_dim: usize,
    /// Attention hidden dimensionality `H'` (paper: 256).
    pub attention_dim: usize,
    /// Classifier hidden dimensionality `H_hidden` (paper: 256).
    pub hidden_dim: usize,
    /// Token cropping size (paper: 20).
    pub crop: usize,
    /// Adam learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// Training epochs (paper: 100).
    pub epochs: usize,
    /// Mini-batch size (paper: 16).
    pub batch_size: usize,
    /// Adaptation weight λ in Eq. 9/14 (paper default: 0.98).
    pub lambda: f32,
    /// Support weight φ in Eq. 13/14 (paper default: 1.0).
    pub phi: f32,
    /// Contrastive feature mode (Table 6 ablation; default Both).
    pub feature_mode: FeatureMode,
    /// Seed for embedding hashing, initialization, and batching.
    pub seed: u64,
    /// Ablation: replace the learned attention distribution with a uniform
    /// `1/F` vector, disabling the paper's central mechanism (the attention
    /// parameters still exist but receive no gradient through `f`).
    pub uniform_attention: bool,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
}

impl Default for AdamelConfig {
    /// A compact configuration that trains in well under a second on the
    /// test corpora while preserving the paper's architecture; use
    /// [`AdamelConfig::paper`] for the full-size settings.
    fn default() -> Self {
        Self {
            embed_dim: 48,
            feature_dim: 24,
            attention_dim: 48,
            hidden_dim: 48,
            crop: 20,
            learning_rate: 1e-3,
            epochs: 40,
            batch_size: 16,
            lambda: 0.98,
            phi: 1.0,
            feature_mode: FeatureMode::Both,
            seed: 7,
            grad_clip: Some(5.0),
            uniform_attention: false,
        }
    }
}

impl AdamelConfig {
    /// The paper's §5.1 configuration (300-d embeddings, H=64, H'=256,
    /// H_hidden=256, lr=1e-4, 100 epochs, batch 16, λ=0.98, φ=1.0).
    pub fn paper() -> Self {
        Self {
            embed_dim: 300,
            feature_dim: 64,
            attention_dim: 256,
            hidden_dim: 256,
            learning_rate: 1e-4,
            epochs: 100,
            ..Self::default()
        }
    }

    /// A minimal configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            embed_dim: 24,
            feature_dim: 12,
            attention_dim: 16,
            hidden_dim: 16,
            epochs: 80,
            learning_rate: 3e-3,
            ..Self::default()
        }
    }

    /// Sets λ (Eq. 9).
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        self.lambda = lambda;
        self
    }

    /// Sets φ (Eq. 13).
    pub fn with_phi(mut self, phi: f32) -> Self {
        assert!(phi >= 0.0, "phi must be non-negative");
        self.phi = phi;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the feature mode (Table 6).
    pub fn with_feature_mode(mut self, mode: FeatureMode) -> Self {
        self.feature_mode = mode;
        self
    }

    /// Enables the uniform-attention ablation.
    pub fn with_uniform_attention(mut self, uniform: bool) -> Self {
        self.uniform_attention = uniform;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_capability_matrix() {
        assert!(!Variant::Base.uses_target() && !Variant::Base.uses_support());
        assert!(Variant::Zero.uses_target() && !Variant::Zero.uses_support());
        assert!(!Variant::Few.uses_target() && Variant::Few.uses_support());
        assert!(Variant::Hyb.uses_target() && Variant::Hyb.uses_support());
    }

    #[test]
    fn paper_config_matches_section_5_1() {
        let c = AdamelConfig::paper();
        assert_eq!(c.embed_dim, 300);
        assert_eq!(c.feature_dim, 64);
        assert_eq!(c.attention_dim, 256);
        assert_eq!(c.hidden_dim, 256);
        assert_eq!(c.epochs, 100);
        assert_eq!(c.batch_size, 16);
        assert!((c.lambda - 0.98).abs() < 1e-6);
        assert!((c.phi - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn lambda_out_of_range_panics() {
        let _ = AdamelConfig::default().with_lambda(1.5);
    }
}
