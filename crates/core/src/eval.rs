//! Evaluation helpers binding the model to the metrics crate.

use crate::model::AdamelModel;
use adamel_metrics::{best_f1, pr_auc};
use adamel_schema::Domain;

/// PRAUC of the model on a target domain, judged against ground-truth
/// entity identities (the evaluation protocol for "unlabeled" `D_T`).
pub fn evaluate_prauc(model: &AdamelModel, test: &Domain) -> f64 {
    let scores = model.predict(&test.pairs);
    let labels: Vec<bool> = test.pairs.iter().map(|p| p.ground_truth()).collect();
    let value = pr_auc(&scores, &labels);
    emit_metric("pr_auc", value, test.pairs.len());
    value
}

/// Best-threshold F1 on a target domain (Table 7's metric).
pub fn evaluate_f1(model: &AdamelModel, test: &Domain) -> f64 {
    let scores = model.predict(&test.pairs);
    let labels: Vec<bool> = test.pairs.iter().map(|p| p.ground_truth()).collect();
    let value = best_f1(&scores, &labels).0;
    emit_metric("best_f1", value, test.pairs.len());
    value
}

/// One `metric` ledger event per evaluation; `higher_is_better` lets
/// `adamel-report diff` orient its regression check without a metric table.
fn emit_metric(name: &str, value: f64, n: usize) {
    adamel_obs::runlog::event("metric")
        .str("name", name)
        .num("value", value)
        .flag("higher_is_better", true)
        .int("pairs", n as u64)
        .emit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdamelConfig;
    use adamel_schema::{EntityPair, Record, Schema, SourceId};

    #[test]
    fn evaluation_runs_on_untrained_model() {
        let schema = Schema::new(vec!["title".into()]);
        let model = AdamelModel::new(AdamelConfig::tiny(), schema);
        let mut l = Record::new(SourceId(0), 1);
        l.set("title", "x");
        let mut r = Record::new(SourceId(1), 1);
        r.set("title", "x");
        let mut l2 = Record::new(SourceId(0), 2);
        l2.set("title", "y");
        let mut r2 = Record::new(SourceId(1), 3);
        r2.set("title", "z");
        let test = Domain::new(vec![EntityPair::unlabeled(l, r), EntityPair::unlabeled(l2, r2)]);
        let auc = evaluate_prauc(&model, &test);
        assert!((0.0..=1.0).contains(&auc));
        let f1 = evaluate_f1(&model, &test);
        assert!((0.0..=1.0).contains(&f1));
    }
}
