//! Aggregation of repeated runs: the paper reports "mean and std" over 3
//! seeded runs for every table.

use std::fmt;

/// Mean ± sample standard deviation of a set of runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single run).
    pub std: f64,
    /// Number of runs aggregated.
    pub n: usize,
}

impl RunStats {
    /// Aggregates run values. Panics on an empty slice.
    pub fn from_runs(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "RunStats::from_runs on empty input");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Self { mean, std, n }
    }
}

impl fmt::Display for RunStats {
    /// Formats like the paper's tables: `0.9211 ± 0.0040`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

/// Runs a seeded experiment `n` times (seeds `1..=n`) and aggregates the
/// returned metric.
pub fn repeat_runs(n: usize, mut experiment: impl FnMut(u64) -> f64) -> RunStats {
    let values: Vec<f64> = (1..=n as u64).map(&mut experiment).collect();
    RunStats::from_runs(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = RunStats::from_runs(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn single_run_has_zero_std() {
        let s = RunStats::from_runs(&[0.5]);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn display_format() {
        let s = RunStats::from_runs(&[0.9211, 0.9211]);
        assert_eq!(format!("{s}"), "0.9211 ± 0.0000");
    }

    #[test]
    fn repeat_runs_passes_seeds() {
        let mut seeds = Vec::new();
        let s = repeat_runs(3, |seed| {
            seeds.push(seed);
            seed as f64
        });
        assert_eq!(seeds, vec![1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = RunStats::from_runs(&[]);
    }
}
