//! # adamel-metrics
//!
//! Evaluation for the AdaMEL reproduction: sklearn-compatible
//! average-precision PRAUC (the paper's headline metric), thresholded
//! precision/recall/F1 (Table 7), mean ± std aggregation over seeded runs,
//! expected calibration error for the drift monitors, and an exact t-SNE
//! implementation for the attention-space visualizations of Fig. 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod calibration;
pub mod classify;
pub mod prauc;
pub mod tsne;

pub use aggregate::{repeat_runs, RunStats};
pub use calibration::ece;
pub use classify::{best_f1, Confusion};
pub use prauc::{pr_auc, pr_curve, PrPoint};
pub use tsne::{separation_ratio, tsne, TsneConfig};
