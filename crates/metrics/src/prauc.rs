//! Precision-recall metrics.
//!
//! The paper's headline metric is PRAUC "as it measures the precision-recall
//! relation globally and handles data imbalance", computed with sklearn.
//! [`pr_auc`] implements sklearn's `average_precision_score`:
//! `AP = Σ_n (R_n − R_{n−1}) · P_n`, summing over descending score
//! thresholds with ties processed as one group.

/// One point on the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Precision at this threshold.
    pub precision: f64,
    /// Recall at this threshold.
    pub recall: f64,
    /// The score threshold.
    pub threshold: f64,
}

/// The precision-recall curve over descending thresholds (ties grouped).
///
/// `scores[i]` is the model's match score for sample `i`; `labels[i]` is the
/// ground truth (true = positive).
pub fn pr_curve(scores: &[f32], labels: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "pr_curve length mismatch");
    assert!(scores.iter().all(|s| s.is_finite()), "pr_curve: scores must be finite");
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 || scores.is_empty() {
        return Vec::new();
    }
    // `total_cmp` gives a genuine total order, so the ranking — and with it
    // every tie group — is independent of the input order. The previous
    // `partial_cmp(..).unwrap_or(Equal)` comparator was not antisymmetric in
    // the presence of NaN, which made the sort order (and the curve)
    // input-order dependent and hung the tie loop below on NaN thresholds.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut points = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume the whole tie group before emitting a point.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(PrPoint {
            precision: tp as f64 / (tp + fp) as f64,
            recall: tp as f64 / total_pos as f64,
            threshold: threshold as f64,
        });
    }
    points
}

/// Average-precision PRAUC in `[0, 1]`.
pub fn pr_auc(scores: &[f32], labels: &[bool]) -> f64 {
    let curve = pr_curve(scores, labels);
    let mut auc = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        auc += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    auc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((pr_auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worst_ranking_is_low() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        let auc = pr_auc(&scores, &labels);
        assert!(auc < 0.6 && auc > 0.0);
    }

    #[test]
    fn matches_sklearn_example() {
        // sklearn: average_precision_score([0,0,1,1], [0.1,0.4,0.35,0.8])
        // == 0.8333333...
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, false, true, true];
        assert!((pr_auc(&scores, &labels) - 0.8333333).abs() < 1e-6);
    }

    #[test]
    fn ties_processed_as_group() {
        // All scores equal: precision = prevalence, recall jumps to 1.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let auc = pr_auc(&scores, &labels);
        assert!((auc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_positives_is_zero() {
        assert_eq!(pr_auc(&[0.5, 0.1], &[false, false]), 0.0);
        assert_eq!(pr_auc(&[], &[]), 0.0);
    }

    #[test]
    fn imbalance_penalizes_random_scores() {
        // 1% positives with uninformative scores should give PRAUC near the
        // prevalence, not near 0.5 — the reason the paper prefers PRAUC.
        let n = 1000;
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut state = 12345u64;
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            scores.push((state >> 33) as f32 / (1u64 << 31) as f32);
            labels.push(i % 100 == 0);
        }
        let auc = pr_auc(&scores, &labels);
        assert!(auc < 0.1, "random scores on 1% prevalence gave {auc}");
    }

    #[test]
    fn curve_recall_is_monotone() {
        let scores = [0.9, 0.7, 0.7, 0.4, 0.2];
        let labels = [true, false, true, true, false];
        let curve = pr_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-9);
    }
}
