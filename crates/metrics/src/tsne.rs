//! Exact t-SNE (van der Maaten & Hinton, 2008) for the attention-space
//! visualizations of Fig. 7.
//!
//! The paper projects per-pair feature-attention vectors (dimension `F`,
//! a few hundred points) to 2-D with sklearn's TSNE. At that scale the exact
//! O(n²) formulation is fast, so no Barnes–Hut approximation is needed.

/// Configuration for a t-SNE run.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbors).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration: 12.0,
            seed: 0,
        }
    }
}

/// Embeds `points` (each a d-dimensional vector) into 2-D.
///
/// Returns one `[x, y]` per input point. Inputs of fewer than 3 points are
/// returned as trivial layouts.
pub fn tsne(points: &[Vec<f32>], cfg: &TsneConfig) -> Vec<[f32; 2]> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if n < 3 {
        return (0..n).map(|i| [i as f32, 0.0]).collect();
    }
    let d2 = pairwise_sq_distances(points);
    let p = joint_probabilities(&d2, cfg.perplexity.min((n - 1) as f64 / 3.0).max(1.0));

    // Deterministic small random init.
    let mut state = cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut rand = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e-2
    };
    let mut y: Vec<[f64; 2]> = (0..n).map(|_| [rand(), rand()]).collect();
    let mut velocity = vec![[0.0f64; 2]; n];
    let mut gains = vec![[1.0f64; 2]; n];

    let exag_end = cfg.iterations / 4;
    for iter in 0..cfg.iterations {
        let exag = if iter < exag_end { cfg.exaggeration } else { 1.0 };
        let momentum = if iter < exag_end { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding.
        let mut num = vec![0.0f64; n * n];
        let mut z = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let q = 1.0 / (1.0 + dx * dx + dy * dy);
                num[i * n + j] = q;
                num[j * n + i] = q;
                z += 2.0 * q;
            }
        }
        let z = z.max(1e-12);

        // All gradients are computed against the same snapshot of `y`
        // before any position moves; interleaving updates with gradient
        // computation lets early moves cascade into later gradients and
        // diverge.
        let mut grads = vec![[0.0f64; 2]; n];
        for i in 0..n {
            let grad = &mut grads[i];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = num[i * n + j];
                let pij = exag * p[i * n + j];
                let mult = (pij - q / z) * q;
                grad[0] += 4.0 * mult * (y[i][0] - y[j][0]);
                grad[1] += 4.0 * mult * (y[i][1] - y[j][1]);
            }
        }
        for i in 0..n {
            for k in 0..2 {
                // Adaptive gains as in the reference implementation.
                gains[i][k] = if grads[i][k].signum() != velocity[i][k].signum() {
                    gains[i][k] + 0.2
                } else {
                    (gains[i][k] * 0.8).max(0.01)
                };
                velocity[i][k] =
                    momentum * velocity[i][k] - cfg.learning_rate * gains[i][k] * grads[i][k];
                y[i][k] += velocity[i][k];
            }
        }

        // Re-center.
        let (mx, my) = y.iter().fold((0.0, 0.0), |(a, b), p| (a + p[0], b + p[1]));
        let (mx, my) = (mx / n as f64, my / n as f64);
        for p in &mut y {
            p[0] -= mx;
            p[1] -= my;
        }
    }
    y.iter().map(|p| [p[0] as f32, p[1] as f32]).collect()
}

fn pairwise_sq_distances(points: &[Vec<f32>]) -> Vec<f64> {
    let n = points.len();
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f64 =
                points[i].iter().zip(&points[j]).map(|(a, b)| ((a - b) as f64).powi(2)).sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }
    d2
}

/// Conditional Gaussians calibrated per-point to the target perplexity,
/// then symmetrized: `P = (P|i + P|j) / 2n`.
fn joint_probabilities(d2: &[f64], perplexity: f64) -> Vec<f64> {
    let n = (d2.len() as f64).sqrt() as usize;
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2 sigma^2).
        let mut beta = 1.0f64;
        let (mut beta_min, mut beta_max) = (f64::NEG_INFINITY, f64::INFINITY);
        let mut row = vec![0.0f64; n];
        for _ in 0..64 {
            let mut sum = 0.0;
            for (j, r) in row.iter_mut().enumerate() {
                *r = if i == j { 0.0 } else { (-beta * d2[i * n + j]).exp() };
                sum += *r;
            }
            let sum = sum.max(1e-300);
            let mut entropy = 0.0;
            for r in &row {
                let pij = r / sum;
                if pij > 1e-12 {
                    entropy -= pij * pij.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() { (beta + beta_max) / 2.0 } else { beta * 2.0 };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() { (beta + beta_min) / 2.0 } else { beta / 2.0 };
            }
        }
        let sum: f64 = row.iter().sum::<f64>().max(1e-300);
        for j in 0..n {
            p[i * n + j] = row[j] / sum;
        }
    }
    // Symmetrize and normalize.
    let mut joint = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    joint
}

/// Mean pairwise distance between two groups of 2-D points divided by the
/// mean within-group distance — a scalar "how separated are these clusters"
/// summary used to quantify Fig. 7's alignment claim.
pub fn separation_ratio(a: &[[f32; 2]], b: &[[f32; 2]]) -> f64 {
    fn mean_dist(xs: &[[f32; 2]], ys: &[[f32; 2]], skip_same_index: bool) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, x) in xs.iter().enumerate() {
            for (j, y) in ys.iter().enumerate() {
                if skip_same_index && i == j {
                    continue;
                }
                total += (((x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2)) as f64).sqrt();
                count += 1;
            }
        }
        total / count.max(1) as f64
    }
    if a.len() < 2 || b.len() < 2 {
        return 1.0;
    }
    let between = mean_dist(a, b, false);
    let within = 0.5 * (mean_dist(a, a, true) + mean_dist(b, b, true));
    if within <= 0.0 {
        return f64::INFINITY;
    }
    between / within
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters(n_per: usize, gap: f32) -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..n_per {
            let jitter = (i as f32) * 0.01;
            pts.push(vec![jitter, 0.0, jitter]);
        }
        for i in 0..n_per {
            let jitter = (i as f32) * 0.01;
            pts.push(vec![gap + jitter, gap, gap - jitter]);
        }
        pts
    }

    #[test]
    fn preserves_cluster_structure() {
        let pts = two_clusters(12, 10.0);
        let cfg = TsneConfig { perplexity: 5.0, iterations: 250, ..Default::default() };
        let emb = tsne(&pts, &cfg);
        let (a, b) = emb.split_at(12);
        let ratio = separation_ratio(a, b);
        assert!(ratio > 1.5, "clusters not separated: ratio {ratio}");
    }

    #[test]
    fn identical_distribution_is_mixed() {
        // Points drawn from one blob should NOT separate by arbitrary
        // grouping — this is the λ=0.98 "aligned" case of Fig. 7.
        let pts = two_clusters(12, 0.0);
        let cfg = TsneConfig { perplexity: 5.0, iterations: 250, ..Default::default() };
        let emb = tsne(&pts, &cfg);
        let (a, b) = emb.split_at(12);
        let ratio = separation_ratio(a, b);
        assert!(ratio < 1.5, "identical clusters separated: ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_clusters(6, 5.0);
        let cfg = TsneConfig { iterations: 50, ..Default::default() };
        let a = tsne(&pts, &cfg);
        let b = tsne(&pts, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn small_inputs_do_not_panic() {
        assert!(tsne(&[], &TsneConfig::default()).is_empty());
        assert_eq!(tsne(&[vec![1.0]], &TsneConfig::default()).len(), 1);
        assert_eq!(tsne(&[vec![1.0], vec![2.0]], &TsneConfig::default()).len(), 2);
    }

    #[test]
    fn output_is_centered() {
        let pts = two_clusters(8, 4.0);
        let emb = tsne(&pts, &TsneConfig { iterations: 100, ..Default::default() });
        let mx: f32 = emb.iter().map(|p| p[0]).sum::<f32>() / emb.len() as f32;
        let my: f32 = emb.iter().map(|p| p[1]).sum::<f32>() / emb.len() as f32;
        assert!(mx.abs() < 1e-3 && my.abs() < 1e-3);
    }
}
