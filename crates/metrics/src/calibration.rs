//! Calibration: expected calibration error over equal-width score bins.
//!
//! A well-calibrated matcher's score is a probability: among pairs scored
//! ~0.8, about 80% should be true matches. Under distribution shift the
//! classifier head often stays discriminative (PR-AUC holds up) while its
//! scores drift away from probabilities — exactly the C3 failure mode the
//! drift monitors watch for — so the monitors pair each per-source score
//! histogram with this ECE summary.

/// Expected calibration error of match scores against boolean labels,
/// using `bins` equal-width bins over `[0, 1]`.
///
/// ECE = Σ_b (n_b / N) · |accuracy_b − mean_score_b|, the standard
/// binned estimator (Naeini et al., AAAI 2015). Scores are clamped into
/// `[0, 1]`; non-finite scores count as 0. Returns 0 for empty input.
/// `scores` and `labels` must have equal length (debug-asserted; the
/// shorter length wins in release).
///
/// # Examples
///
/// ```
/// use adamel_metrics::ece;
///
/// // Perfectly calibrated corners: score 1 on matches, 0 on non-matches.
/// let e = ece(&[1.0, 1.0, 0.0], &[true, true, false], 10);
/// assert!(e < 1e-9);
///
/// // Maximally mis-calibrated: confident and always wrong.
/// let e = ece(&[1.0, 1.0, 0.0], &[false, false, true], 10);
/// assert!(e > 0.99);
/// ```
pub fn ece(scores: &[f32], labels: &[bool], bins: usize) -> f64 {
    debug_assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n = scores.len().min(labels.len());
    let bins = bins.max(1);
    if n == 0 {
        return 0.0;
    }
    // Per-bin: count, summed score (confidence), positive count (accuracy
    // against label=true, since "predicted class" here is always "match"
    // scored by its probability).
    let mut count = vec![0u64; bins];
    let mut conf = vec![0f64; bins];
    let mut pos = vec![0u64; bins];
    for i in 0..n {
        let s = if scores[i].is_finite() { f64::from(scores[i]).clamp(0.0, 1.0) } else { 0.0 };
        let b = ((s * bins as f64) as usize).min(bins - 1);
        count[b] += 1;
        conf[b] += s;
        if labels[i] {
            pos[b] += 1;
        }
    }
    let mut e = 0.0;
    for b in 0..bins {
        if count[b] == 0 {
            continue;
        }
        let cb = count[b] as f64;
        let acc = pos[b] as f64 / cb;
        let avg_conf = conf[b] / cb;
        e += (cb / n as f64) * (acc - avg_conf).abs();
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(ece(&[], &[], 10), 0.0);
    }

    #[test]
    fn perfectly_calibrated_mixed_bin() {
        // All scores 0.5, half the labels positive: |0.5 - 0.5| = 0.
        let scores = [0.5f32; 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!(ece(&scores, &labels, 10) < 1e-9);
    }

    #[test]
    fn overconfidence_is_measured() {
        // Scores 0.9 but only 50% accurate: ECE ≈ 0.4.
        let scores = [0.9f32; 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let e = ece(&scores, &labels, 10);
        assert!((e - 0.4).abs() < 1e-6, "got {e}");
    }

    #[test]
    fn bins_partition_weighting() {
        // Two bins, equal mass: one perfect (score 1.0 / all true), one
        // off by 0.25 (score 0.25 / none true). ECE = 0.5*0 + 0.5*0.25.
        let scores = [1.0f32, 1.0, 0.25, 0.25];
        let labels = [true, true, false, false];
        let e = ece(&scores, &labels, 2);
        assert!((e - 0.125).abs() < 1e-6, "got {e}");
    }

    #[test]
    fn score_one_lands_in_last_bin() {
        // Score exactly 1.0 must not index out of range.
        let e = ece(&[1.0], &[true], 4);
        assert!(e < 1e-9);
    }

    #[test]
    fn nonfinite_scores_count_as_zero() {
        let e = ece(&[f32::NAN], &[false], 4);
        assert!(e < 1e-9, "NaN→0 score with negative label is calibrated");
        let e = ece(&[f32::INFINITY], &[true], 4);
        assert!((e - 1.0).abs() < 1e-6, "inf→0 score with positive label");
    }

    #[test]
    fn zero_bins_is_clamped_to_one() {
        let e = ece(&[0.3, 0.7], &[false, true], 0);
        assert!((e - 0.0).abs() < 1e-6, "single bin: mean conf 0.5, acc 0.5");
    }
}
