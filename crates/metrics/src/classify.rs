//! Thresholded classification metrics (precision, recall, F1).
//!
//! Table 7 reports F1; following standard entity-matching practice the
//! decision threshold is chosen to maximize F1 on the evaluation scores.

/// Confusion counts at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the confusion matrix of `scores >= threshold` vs `labels`.
    pub fn at_threshold(scores: &[f32], labels: &[bool], threshold: f32) -> Self {
        assert_eq!(scores.len(), labels.len(), "Confusion length mismatch");
        let mut c = Confusion::default();
        for (&s, &l) in scores.iter().zip(labels) {
            match (s >= threshold, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision (0 when nothing predicted positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 — harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// The maximum F1 over all score thresholds, with the threshold achieving
/// it.
pub fn best_f1(scores: &[f32], labels: &[bool]) -> (f64, f32) {
    assert_eq!(scores.len(), labels.len(), "best_f1 length mismatch");
    let mut thresholds: Vec<f32> = scores.to_vec();
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup();
    let mut best = (0.0f64, 0.5f32);
    for &t in &thresholds {
        let f1 = Confusion::at_threshold(scores, labels, t).f1();
        if f1 > best.0 {
            best = (f1, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let c = Confusion::at_threshold(&[0.9, 0.8, 0.3, 0.1], &[true, false, true, false], 0.5);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn perfect_classifier() {
        let c = Confusion::at_threshold(&[0.9, 0.8, 0.3, 0.1], &[true, true, false, false], 0.5);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn best_f1_finds_separating_threshold() {
        let scores = [0.9, 0.7, 0.4, 0.2];
        let labels = [true, true, false, false];
        let (f1, t) = best_f1(&scores, &labels);
        assert_eq!(f1, 1.0);
        assert!(t > 0.4 && t <= 0.7);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(best_f1(&[], &[]).0, 0.0);
        let c = Confusion::at_threshold(&[0.1], &[false], 0.5);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }
}
