//! PR-curve properties against the oracle's O(n²) reference.
//!
//! `adamel_oracle::pr_auc_ref` re-scans the whole sample set per distinct
//! threshold, so it is trivially independent of input order. The production
//! single-sweep implementation must match it exactly — in particular through
//! tie groups, which the quantized score strategy below generates heavily.

use adamel_metrics::{pr_auc, pr_curve};
use adamel_oracle::{pr_auc_ref, pr_curve_ref};
use proptest::prelude::*;

/// Scores snapped to a 1/8 grid so that ties are common, plus labels.
fn tied_samples() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    proptest::collection::vec((0.0f32..1.0, any::<bool>()), 1..60)
        .prop_map(|v| v.into_iter().map(|(s, l)| ((s * 8.0).round() / 8.0, l)).unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_matches_oracle((scores, labels) in tied_samples()) {
        let prod = pr_auc(&scores, &labels);
        let oracle = pr_auc_ref(&scores, &labels);
        prop_assert!(
            (prod - oracle).abs() < 1e-9,
            "pr_auc {prod} vs oracle {oracle} on {scores:?} / {labels:?}"
        );
    }

    #[test]
    fn curve_matches_oracle_pointwise((scores, labels) in tied_samples()) {
        let prod = pr_curve(&scores, &labels);
        let oracle = pr_curve_ref(&scores, &labels);
        prop_assert_eq!(prod.len(), oracle.len());
        for (p, o) in prod.iter().zip(&oracle) {
            prop_assert!((p.precision - o.precision).abs() < 1e-12);
            prop_assert!((p.recall - o.recall).abs() < 1e-12);
            prop_assert!((p.threshold - o.threshold).abs() < 1e-12);
        }
    }

    #[test]
    fn auc_is_input_order_independent((scores, labels) in tied_samples()) {
        // Regression for the old partial_cmp sort: reversing the input used
        // to regroup ties and change the curve.
        let base = pr_auc(&scores, &labels);
        let rs: Vec<f32> = scores.iter().rev().copied().collect();
        let rl: Vec<bool> = labels.iter().rev().copied().collect();
        prop_assert!((pr_auc(&rs, &rl) - base).abs() < 1e-12);
    }
}

#[test]
#[should_panic(expected = "finite")]
fn nan_scores_are_rejected_instead_of_hanging() {
    // The old comparator made NaN thresholds spin the tie loop forever; the
    // contract is now an explicit assert.
    pr_auc(&[0.5, f32::NAN, 0.25], &[true, false, true]);
}
