//! Property-based tests of the evaluation metrics.

use adamel_metrics::{best_f1, pr_auc, pr_curve, Confusion, RunStats};
use proptest::prelude::*;

fn scores_and_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    proptest::collection::vec((0.0f32..1.0, any::<bool>()), 1..80)
        .prop_map(|v| v.into_iter().unzip())
}

proptest! {
    #[test]
    fn pr_auc_is_bounded((scores, labels) in scores_and_labels()) {
        let auc = pr_auc(&scores, &labels);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc), "auc {}", auc);
    }

    #[test]
    fn perfect_ranking_reaches_one(n_pos in 1usize..20, n_neg in 1usize..20) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            scores.push(1.0 - i as f32 * 1e-3);
            labels.push(true);
        }
        for i in 0..n_neg {
            scores.push(0.4 - i as f32 * 1e-3);
            labels.push(false);
        }
        prop_assert!((pr_auc(&scores, &labels) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pr_auc_invariant_to_monotone_score_transform((scores, labels) in scores_and_labels()) {
        prop_assume!(labels.iter().any(|&l| l));
        let transformed: Vec<f32> = scores.iter().map(|s| s * 0.5 + 0.25).collect();
        let a = pr_auc(&scores, &labels);
        let b = pr_auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
    }

    #[test]
    fn curve_ends_at_full_recall((scores, labels) in scores_and_labels()) {
        prop_assume!(labels.iter().any(|&l| l));
        let curve = pr_curve(&scores, &labels);
        prop_assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn best_f1_dominates_any_fixed_threshold((scores, labels) in scores_and_labels()) {
        let (best, _) = best_f1(&scores, &labels);
        for t in [0.25f32, 0.5, 0.75] {
            let f1 = Confusion::at_threshold(&scores, &labels, t).f1();
            prop_assert!(best >= f1 - 1e-9);
        }
    }

    #[test]
    fn confusion_counts_total((scores, labels) in scores_and_labels()) {
        let c = Confusion::at_threshold(&scores, &labels, 0.5);
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, scores.len());
    }

    #[test]
    fn run_stats_mean_is_bounded_by_extremes(values in proptest::collection::vec(0.0f64..1.0, 1..10)) {
        let s = RunStats::from_runs(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean >= min - 1e-12 && s.mean <= max + 1e-12);
        prop_assert!(s.std >= 0.0);
    }
}
