//! Property-based tests of the corpus generators and split construction.

use adamel_data::{
    make_mel_split, weaken_labels, EntityType, MonitorConfig, MonitorWorld, MusicConfig,
    MusicWorld, Scenario, SplitCounts,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn music_world_records_reference_valid_entities(seed in 0u64..500) {
        let w = MusicWorld::generate(&MusicConfig::tiny(), seed);
        for r in &w.records {
            prop_assert!((r.entity_id as usize) < w.entities.len());
            prop_assert!((r.source.0 as usize) < w.styles.len());
            // Every rendered attribute is in the aligned schema.
            for attr in r.attributes() {
                prop_assert!(w.schema().index_of(attr).is_some(), "unknown attribute {}", attr);
            }
        }
    }

    #[test]
    fn music_c2_holds_for_every_seed(seed in 0u64..500) {
        let w = MusicWorld::generate(&MusicConfig::tiny(), seed);
        for r in &w.records {
            if r.source.0 < 3 {
                prop_assert!(r.is_missing("gender"));
                prop_assert!(r.is_missing("name_native_language"));
            }
        }
    }

    #[test]
    fn monitor_c2_holds_for_every_seed(seed in 0u64..500) {
        let w = MonitorWorld::generate(&MonitorConfig::tiny(), seed);
        for r in &w.records {
            if (r.source.0 as usize) < w.num_seen {
                for attr in adamel_data::monitor::TARGET_ONLY_ATTRIBUTES {
                    prop_assert!(r.is_missing(attr));
                }
            }
        }
    }

    #[test]
    fn splits_have_valid_structure(seed in 0u64..200) {
        let w = MusicWorld::generate(&MusicConfig::tiny(), 3);
        let records = w.records_of(EntityType::Artist, None);
        let split = make_mel_split(
            &records, "name", &[0, 1, 2], &[3, 4, 5, 6],
            Scenario::Overlapping, &SplitCounts::tiny(), seed,
        );
        // Labels consistent with ground truth in the labeled splits.
        for p in split.train.pairs.iter().chain(&split.support.pairs) {
            prop_assert_eq!(p.label.unwrap(), p.ground_truth());
        }
        for p in &split.test.pairs {
            prop_assert!(p.label.is_none());
        }
        // No duplicate (left, right) record identity pairs inside train.
        let mut keys: Vec<(u64, u32, u64, u32)> = split
            .train
            .pairs
            .iter()
            .map(|p| (p.left.entity_id, p.left.source.0, p.right.entity_id, p.right.source.0))
            .collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        // Positives of the same entity across the same source pair can
        // legitimately repeat only if sampled twice — they are not, so
        // dedup must be lossless for negatives at minimum.
        prop_assert!(keys.len() + 2 >= before, "{} duplicate pairs", before - keys.len());
    }

    #[test]
    fn weaken_labels_flip_rate_is_respected(rate in 0.05f64..0.5) {
        let w = MusicWorld::generate(&MusicConfig::tiny(), 3);
        let records = w.records_of(EntityType::Artist, None);
        let mut split = make_mel_split(
            &records, "name", &[0, 1, 2], &[3, 4, 5, 6],
            Scenario::Overlapping, &SplitCounts::tiny(), 1,
        );
        let n = split.train.len() as f64;
        let flipped = weaken_labels(&mut split.train, rate, 9) as f64;
        // Binomial concentration: within 4 sigma.
        let sigma = (n * rate * (1.0 - rate)).sqrt();
        prop_assert!((flipped - n * rate).abs() <= 4.0 * sigma + 1.0,
            "flipped {} of {} at rate {}", flipped, n, rate);
    }

    #[test]
    fn monitor_page_title_near_complete(seed in 0u64..100) {
        let w = MonitorWorld::generate(&MonitorConfig::tiny(), seed);
        let total = w.records.len() as f64;
        prop_assume!(total > 20.0);
        let with_title = w.records.iter().filter(|r| !r.is_missing("page_title")).count() as f64;
        prop_assert!(with_title / total > 0.9);
    }
}
