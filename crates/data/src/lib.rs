//! # adamel-data
//!
//! Synthetic multi-source entity-linkage corpora for the AdaMEL
//! reproduction. The paper evaluates on two proprietary Amazon music crawls
//! and the DI2KG Monitor challenge data; none can be shipped, so this crate
//! generates worlds with the same statistical fingerprint (see DESIGN.md §2
//! for the substitution argument):
//!
//! * [`music`] — 7 websites, artist/album/track entities, 9 attributes,
//!   target-only attributes and abbreviated names in unseen sources;
//! * [`monitor`] — 24 sales websites, 13 sparse attributes, 5 of them
//!   target-only, heavily imbalanced pairs;
//! * [`benchmark`] — single-domain stand-ins for the 11 Magellan datasets of
//!   Table 7.
//!
//! Pair construction ([`sampling`]), experiment splits ([`splits`],
//! [`incremental`]), weak labeling, data analysis ([`analysis`]) and CSV
//! interchange ([`csvio`]) complete the data layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod benchmark;
pub mod csvio;
pub mod di2kg;
pub mod incremental;
pub mod monitor;
pub mod music;
pub mod names;
pub mod sampling;
pub mod splits;
pub mod style;

pub use benchmark::{benchmark_specs, generate_benchmark, BenchmarkData, BenchmarkSpec};
pub use di2kg::Di2kgCorpus;
pub use incremental::{monitor_incremental, IncrementalStep, IncrementalStream};
pub use monitor::{degrade_pairs, MonitorConfig, MonitorWorld};
pub use music::{EntityType, MusicConfig, MusicWorld};
pub use sampling::PairSampler;
pub use splits::{make_mel_split, weaken_labels, MelSplit, Scenario, SplitCounts};
pub use style::{NameFormat, SourceStyle};
