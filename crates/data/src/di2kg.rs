//! Loader for DI2KG-style corpora (the paper's Monitor dataset source).
//!
//! The DI2KG challenge distributes product specs as per-source documents
//! keyed by *spec ids* of the form `www.ebay.com//123`, plus a
//! `monitor_label.csv` with `left_spec_id,right_spec_id,label` rows. The
//! paper filters this corpus to 24 sources / 13 attributes (appendix A.1).
//!
//! This module ingests that layout from two flat CSV files so the
//! experiments can run against the *real* corpus when a user has obtained
//! it (it is not redistributable here):
//!
//! * a **records** file: `spec_id,attribute,value` triples;
//! * a **labels** file: `left_spec_id,right_spec_id,label` with 0/1 labels.
//!
//! Sources are derived from the spec-id prefix (the site domain before
//! `//`) and entity identities from the label file's match components
//! (connected components of the positive-pair graph), so generated and real
//! corpora expose the same [`Domain`] API downstream.

use adamel_schema::{Domain, EntityPair, Record, SourceId};
use std::collections::BTreeMap;
use std::io::{self, BufRead};

/// Splits one CSV line honoring quoted fields (same dialect as
/// [`crate::csvio`]).
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The site-domain prefix of a DI2KG spec id (`www.ebay.com//123` →
/// `www.ebay.com`).
pub fn spec_source(spec_id: &str) -> &str {
    spec_id.split("//").next().unwrap_or(spec_id)
}

/// A loaded DI2KG corpus: records addressable by spec id plus labeled pairs.
pub struct Di2kgCorpus {
    /// Records in load order.
    pub records: Vec<Record>,
    /// Source names in [`SourceId`] order.
    pub sources: Vec<String>,
    spec_to_record: BTreeMap<String, usize>,
    labels: Vec<(String, String, bool)>,
}

impl Di2kgCorpus {
    /// Loads the two CSV files (each with a header row).
    pub fn load(records_csv: &mut impl BufRead, labels_csv: &mut impl BufRead) -> io::Result<Self> {
        // Records: spec_id,attribute,value triples.
        let mut source_ids: BTreeMap<String, u32> = BTreeMap::new();
        let mut sources = Vec::new();
        let mut spec_to_record: BTreeMap<String, usize> = BTreeMap::new();
        let mut records: Vec<Record> = Vec::new();
        for (ln, line) in records_csv.lines().enumerate() {
            let line = line?;
            if ln == 0 || line.trim().is_empty() {
                continue;
            }
            let f = split_line(&line);
            if f.len() != 3 {
                return Err(bad(format!("records line {}: expected 3 fields", ln + 1)));
            }
            let (spec, attr, value) = (&f[0], &f[1], &f[2]);
            let source = spec_source(spec).to_string();
            let next_id = source_ids.len() as u32;
            let sid = *source_ids.entry(source.clone()).or_insert_with(|| {
                sources.push(source.clone());
                next_id
            });
            let idx = *spec_to_record.entry(spec.clone()).or_insert_with(|| {
                // entity_id is provisional; match components are assigned
                // after the labels are read.
                records.push(Record::new(SourceId(sid), u64::MAX));
                records.len() - 1
            });
            records[idx].set(attr.clone(), value.clone());
        }

        // Labels: left,right,label.
        let mut labels = Vec::new();
        for (ln, line) in labels_csv.lines().enumerate() {
            let line = line?;
            if ln == 0 || line.trim().is_empty() {
                continue;
            }
            let f = split_line(&line);
            if f.len() != 3 {
                return Err(bad(format!("labels line {}: expected 3 fields", ln + 1)));
            }
            let label = match f[2].trim() {
                "1" => true,
                "0" => false,
                other => return Err(bad(format!("labels line {}: bad label {other}", ln + 1))),
            };
            labels.push((f[0].clone(), f[1].clone(), label));
        }

        let mut corpus = Self { records, sources, spec_to_record, labels };
        corpus.assign_match_components();
        Ok(corpus)
    }

    /// Union-find over positive pairs: records in the same match component
    /// share an entity id, making [`EntityPair::ground_truth`] meaningful
    /// for real data too.
    fn assign_match_components(&mut self) {
        let n = self.records.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (l, r, label) in &self.labels {
            if !label {
                continue;
            }
            if let (Some(&a), Some(&b)) = (self.spec_to_record.get(l), self.spec_to_record.get(r)) {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
        }
        for i in 0..n {
            let root = find(&mut parent, i);
            self.records[i].entity_id = root as u64;
        }
    }

    /// The record for a spec id, if present.
    pub fn record(&self, spec_id: &str) -> Option<&Record> {
        self.spec_to_record.get(spec_id).map(|&i| &self.records[i])
    }

    /// Number of labeled pairs.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Materializes the labeled pairs as a [`Domain`] (pairs whose spec ids
    /// are missing from the records file are skipped, mirroring the paper's
    /// filtering step; the skipped count is returned).
    pub fn labeled_domain(&self) -> (Domain, usize) {
        let mut pairs = Vec::new();
        let mut skipped = 0;
        for (l, r, label) in &self.labels {
            match (self.record(l), self.record(r)) {
                (Some(a), Some(b)) => pairs.push(EntityPair::labeled(a.clone(), b.clone(), *label)),
                _ => skipped += 1,
            }
        }
        (Domain::new(pairs), skipped)
    }

    /// Source ids for the given site domains (the paper's
    /// `D_S* = {ebay.com, ...}` selection).
    pub fn source_ids(&self, domains: &[&str]) -> Vec<u32> {
        self.sources
            .iter()
            .enumerate()
            .filter(|(_, s)| domains.iter().any(|d| s.contains(d)))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const RECORDS: &str = "\
spec_id,attribute,value
www.ebay.com//1,page_title,dell u2412m 24 monitor
www.ebay.com//1,price,199
www.catalog.com//7,page_title,dell u2412m 24 inch
www.catalog.com//8,page_title,acer k222hql
www.getprice.com//3,page_title,\"dell, u2412m\"
";

    const LABELS: &str = "\
left_spec_id,right_spec_id,label
www.ebay.com//1,www.catalog.com//7,1
www.ebay.com//1,www.catalog.com//8,0
www.catalog.com//7,www.getprice.com//3,1
";

    fn corpus() -> Di2kgCorpus {
        Di2kgCorpus::load(
            &mut BufReader::new(RECORDS.as_bytes()),
            &mut BufReader::new(LABELS.as_bytes()),
        )
        .expect("fixture corpus should parse")
    }

    #[test]
    fn loads_records_and_sources() {
        let c = corpus();
        assert_eq!(c.records.len(), 4);
        assert_eq!(c.sources.len(), 3);
        let r = c.record("www.ebay.com//1").expect("ebay//1 is in the fixture");
        assert_eq!(r.get("price"), Some("199"));
        assert_eq!(r.get("page_title"), Some("dell u2412m 24 monitor"));
    }

    #[test]
    fn quoted_values_survive() {
        let c = corpus();
        assert_eq!(
            c.record("www.getprice.com//3")
                .expect("getprice//3 is in the fixture")
                .get("page_title"),
            Some("dell, u2412m")
        );
    }

    #[test]
    fn match_components_are_transitive() {
        let c = corpus();
        // ebay//1 ~ catalog//7 ~ getprice//3 form one component.
        let a = c.record("www.ebay.com//1").expect("ebay//1 is in the fixture").entity_id;
        let b = c.record("www.catalog.com//7").expect("catalog//7 is in the fixture").entity_id;
        let d = c.record("www.getprice.com//3").expect("getprice//3 is in the fixture").entity_id;
        let neg = c.record("www.catalog.com//8").expect("catalog//8 is in the fixture").entity_id;
        assert_eq!(a, b);
        assert_eq!(b, d);
        assert_ne!(a, neg);
    }

    #[test]
    fn labeled_domain_matches_ground_truth() {
        let c = corpus();
        let (domain, skipped) = c.labeled_domain();
        assert_eq!(skipped, 0);
        assert_eq!(domain.len(), 3);
        for p in &domain.pairs {
            assert_eq!(p.label.expect("labeled_domain emits labeled pairs"), p.ground_truth());
        }
    }

    #[test]
    fn source_selection_by_domain() {
        let c = corpus();
        let ids = c.source_ids(&["ebay.com", "getprice.com"]);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn missing_spec_pairs_are_skipped() {
        let labels = "h\nwww.ebay.com//1,www.nowhere.com//9,1\n";
        let c = Di2kgCorpus::load(
            &mut BufReader::new(RECORDS.as_bytes()),
            &mut BufReader::new(labels.as_bytes()),
        )
        .expect("fixture corpus should parse");
        let (domain, skipped) = c.labeled_domain();
        assert_eq!(domain.len(), 0);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn malformed_rows_error() {
        let bad_records = "h\nonly,two\n";
        assert!(Di2kgCorpus::load(
            &mut BufReader::new(bad_records.as_bytes()),
            &mut BufReader::new(LABELS.as_bytes()),
        )
        .is_err());
        let bad_labels = "h\na,b,banana\n";
        assert!(Di2kgCorpus::load(
            &mut BufReader::new(RECORDS.as_bytes()),
            &mut BufReader::new(bad_labels.as_bytes()),
        )
        .is_err());
    }
}
