//! Entity-pair sampling with token blocking.
//!
//! Real EL pipelines never score the full cross product; candidate pairs are
//! produced by *blocking* — grouping records that share a key token — and
//! labeled pairs are sampled from those candidates. This module provides a
//! [`PairSampler`] that generates positive pairs (two renderings of the same
//! entity from different sources) and negative pairs (distinct entities,
//! with a configurable fraction of *hard* negatives sharing a blocking
//! token).

use adamel_schema::{EntityPair, Record, SourceId};
use adamel_text::tokenize;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashSet};

/// Sampler over a pool of rendered records.
pub struct PairSampler<'a> {
    records: &'a [Record],
    by_entity: BTreeMap<u64, Vec<usize>>,
    blocks: BTreeMap<String, Vec<usize>>,
}

impl<'a> PairSampler<'a> {
    /// Indexes `records`, blocking on tokens of `block_attr` (e.g. `name` or
    /// `page_title`).
    pub fn new(records: &'a [Record], block_attr: &str) -> Self {
        let mut by_entity: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            by_entity.entry(r.entity_id).or_default().push(i);
            if let Some(v) = r.get(block_attr) {
                for t in tokenize(v) {
                    blocks.entry(t).or_default().push(i);
                }
            }
        }
        Self { records, by_entity, blocks }
    }

    /// The underlying record pool.
    pub fn records(&self) -> &[Record] {
        self.records
    }

    /// Samples up to `n` positive pairs (same entity, different record;
    /// `filter` restricts the admissible source combinations).
    pub fn positives(
        &self,
        n: usize,
        filter: impl Fn(SourceId, SourceId) -> bool,
        rng: &mut StdRng,
    ) -> Vec<EntityPair> {
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for indices in self.by_entity.values() {
            for (a_pos, &a) in indices.iter().enumerate() {
                for &b in &indices[a_pos + 1..] {
                    let (ra, rb) = (&self.records[a], &self.records[b]);
                    if ra.source != rb.source && filter(ra.source, rb.source) {
                        candidates.push((a, b));
                    }
                }
            }
        }
        sample_pairs(self.records, &mut candidates, n, true, rng)
    }

    /// Samples up to `n` negative pairs; `hard_fraction` of them share a
    /// blocking token (near-miss negatives), the rest are random.
    pub fn negatives(
        &self,
        n: usize,
        hard_fraction: f64,
        filter: impl Fn(SourceId, SourceId) -> bool,
        rng: &mut StdRng,
    ) -> Vec<EntityPair> {
        let n_hard = (n as f64 * hard_fraction).round() as usize;
        let mut out = Vec::with_capacity(n);
        let mut seen: HashSet<(usize, usize)> = HashSet::new();

        // Hard negatives from blocks.
        let block_keys: Vec<&String> = self.blocks.keys().collect();
        let mut attempts = 0;
        while out.len() < n_hard && attempts < n_hard * 200 && !block_keys.is_empty() {
            attempts += 1;
            let key = block_keys[rng.gen_range(0..block_keys.len())];
            let members = &self.blocks[key];
            if members.len() < 2 {
                continue;
            }
            let a = members[rng.gen_range(0..members.len())];
            let b = members[rng.gen_range(0..members.len())];
            if self.admissible_negative(a, b, &filter, &mut seen) {
                out.push(EntityPair::labeled(
                    self.records[a].clone(),
                    self.records[b].clone(),
                    false,
                ));
            }
        }

        // Random negatives for the remainder.
        let mut attempts = 0;
        while out.len() < n && attempts < n * 200 && self.records.len() >= 2 {
            attempts += 1;
            let a = rng.gen_range(0..self.records.len());
            let b = rng.gen_range(0..self.records.len());
            if self.admissible_negative(a, b, &filter, &mut seen) {
                out.push(EntityPair::labeled(
                    self.records[a].clone(),
                    self.records[b].clone(),
                    false,
                ));
            }
        }
        out
    }

    fn admissible_negative(
        &self,
        a: usize,
        b: usize,
        filter: &impl Fn(SourceId, SourceId) -> bool,
        seen: &mut HashSet<(usize, usize)>,
    ) -> bool {
        if a == b {
            return false;
        }
        let (ra, rb) = (&self.records[a], &self.records[b]);
        // Negatives are cross-source like positives: MEL links records
        // *across* sources, and same-source negatives would let models read
        // the label off the shared `source` attribute.
        if ra.entity_id == rb.entity_id || ra.source == rb.source || !filter(ra.source, rb.source) {
            return false;
        }
        seen.insert((a.min(b), a.max(b)))
    }
}

fn sample_pairs(
    records: &[Record],
    candidates: &mut [(usize, usize)],
    n: usize,
    positive: bool,
    rng: &mut StdRng,
) -> Vec<EntityPair> {
    // Deterministic shuffle-then-take; candidates were built in index order.
    for i in (1..candidates.len()).rev() {
        candidates.swap(i, rng.gen_range(0..=i));
    }
    candidates
        .iter()
        .take(n)
        .map(|&(a, b)| EntityPair::labeled(records[a].clone(), records[b].clone(), positive))
        .collect()
}

/// Source-combination filters for the paper's scenarios.
pub mod filters {
    use adamel_schema::SourceId;

    /// Both records from the seen set — `D_S` pairs.
    pub fn both_in(allowed: Vec<u32>) -> impl Fn(SourceId, SourceId) -> bool {
        move |a, b| allowed.contains(&a.0) && allowed.contains(&b.0)
    }

    /// At least one record from `unseen` — the target-domain membership test
    /// (Definition 3.1); used for the overlapping scenario `S1`.
    pub fn touches(unseen: Vec<u32>) -> impl Fn(SourceId, SourceId) -> bool {
        move |a, b| unseen.contains(&a.0) || unseen.contains(&b.0)
    }

    /// Both records from `unseen` — the disjoint scenario `S2`
    /// (`D_T* x D_T*`).
    pub fn both_unseen(unseen: Vec<u32>) -> impl Fn(SourceId, SourceId) -> bool {
        move |a, b| unseen.contains(&a.0) && unseen.contains(&b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::music::{MusicConfig, MusicWorld};
    use rand::SeedableRng;

    fn sampler_fixture() -> (MusicWorld, &'static str) {
        (MusicWorld::generate(&MusicConfig::tiny(), 11), "name")
    }

    #[test]
    fn positives_are_same_entity_cross_source() {
        let (w, attr) = sampler_fixture();
        let s = PairSampler::new(&w.records, attr);
        let mut rng = StdRng::seed_from_u64(0);
        let pos = s.positives(30, |_, _| true, &mut rng);
        assert!(!pos.is_empty());
        for p in &pos {
            assert_eq!(p.left.entity_id, p.right.entity_id);
            assert_ne!(p.left.source, p.right.source);
            assert_eq!(p.label, Some(true));
        }
    }

    #[test]
    fn negatives_are_distinct_entities() {
        let (w, attr) = sampler_fixture();
        let s = PairSampler::new(&w.records, attr);
        let mut rng = StdRng::seed_from_u64(0);
        let neg = s.negatives(30, 0.5, |_, _| true, &mut rng);
        assert_eq!(neg.len(), 30);
        for p in &neg {
            assert_ne!(p.left.entity_id, p.right.entity_id);
            assert_eq!(p.label, Some(false));
        }
    }

    #[test]
    fn filters_respected() {
        let (w, attr) = sampler_fixture();
        let s = PairSampler::new(&w.records, attr);
        let mut rng = StdRng::seed_from_u64(0);
        let seen = vec![0u32, 1, 2];
        let pos = s.positives(50, filters::both_in(seen.clone()), &mut rng);
        for p in &pos {
            assert!(seen.contains(&p.left.source.0));
            assert!(seen.contains(&p.right.source.0));
        }
        let unseen = vec![3u32, 4, 5, 6];
        let neg = s.negatives(20, 0.5, filters::both_unseen(unseen.clone()), &mut rng);
        for p in &neg {
            assert!(unseen.contains(&p.left.source.0));
            assert!(unseen.contains(&p.right.source.0));
        }
    }

    #[test]
    fn touches_filter_requires_one_unseen() {
        let f = filters::touches(vec![9]);
        assert!(f(SourceId(9), SourceId(0)));
        assert!(f(SourceId(0), SourceId(9)));
        assert!(!f(SourceId(0), SourceId(1)));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let (w, attr) = sampler_fixture();
        let s = PairSampler::new(&w.records, attr);
        let a = s.positives(10, |_, _| true, &mut StdRng::seed_from_u64(5));
        let b = s.positives(10, |_, _| true, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.left.entity_id, y.left.entity_id);
            assert_eq!(x.right.source, y.right.source);
        }
    }

    #[test]
    fn hard_negatives_share_block_tokens() {
        let (w, attr) = sampler_fixture();
        let s = PairSampler::new(&w.records, attr);
        let mut rng = StdRng::seed_from_u64(2);
        let neg = s.negatives(40, 1.0, |_, _| true, &mut rng);
        // At least a reasonable share of fully-hard negatives must actually
        // share a name token.
        let sharing = neg
            .iter()
            .filter(|p| {
                let a = p.left.get("name").map(tokenize).unwrap_or_default();
                let b = p.right.get("name").map(tokenize).unwrap_or_default();
                a.iter().any(|t| b.contains(t))
            })
            .count();
        assert!(
            sharing * 2 >= neg.len(),
            "only {sharing}/{} hard negatives share tokens",
            neg.len()
        );
    }
}
