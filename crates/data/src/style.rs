//! Per-data-source rendering styles.
//!
//! A [`SourceStyle`] describes how one website renders entity attributes:
//! which attributes it omits (C1), which it is the only kind of source to
//! carry (C2), how it formats names and categorical values (C3), and how
//! noisy it is. Styles are what make the same underlying entity look
//! different across sources — the whole difficulty of MEL.

use std::collections::BTreeMap;

/// How a source renders person-name attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameFormat {
    /// Full name as-is ("Paul McCartney").
    Full,
    /// Initials only ("P. M.") — the paper's Fig. 1 example of an
    /// uninformative target-source rendering.
    Abbreviated,
    /// Diacritic-decorated native-language form.
    Native,
    /// "Last, First" reordering.
    LastFirst,
    /// Surname only ("McCartney") — common on chart/agency sites.
    SurnameOnly,
}

/// The rendering profile of one data source.
#[derive(Debug, Clone)]
pub struct SourceStyle {
    /// Human-readable source name (also rendered into the `source`
    /// attribute, which the paper's Table 4 shows carries signal).
    pub name: String,
    /// Name rendering format.
    pub name_format: NameFormat,
    /// Per-attribute probability of dropping the value (C1). Attributes not
    /// listed use `default_missing_rate`.
    pub missing_rates: BTreeMap<String, f64>,
    /// Fallback missing rate.
    pub default_missing_rate: f64,
    /// Attributes this source *never* renders; if an attribute is absent
    /// from every seen source but present in unseen ones, that realizes C2.
    pub never_renders: Vec<String>,
    /// Probability of a single-character typo per value.
    pub typo_rate: f64,
    /// Index into the categorical vocabulary rotation: sources with
    /// different offsets prefer different synonyms / head tokens (C3).
    pub vocab_shift: usize,
    /// Probability of appending decorative filler tokens to long text
    /// attributes (simulates boilerplate-laden pages).
    pub filler_rate: f64,
}

impl SourceStyle {
    /// A clean, complete style — typical of curated seen sources.
    pub fn clean(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            name_format: NameFormat::Full,
            missing_rates: BTreeMap::new(),
            default_missing_rate: 0.02,
            never_renders: Vec::new(),
            typo_rate: 0.01,
            vocab_shift: 0,
            filler_rate: 0.05,
        }
    }

    /// Sets the name format.
    pub fn with_name_format(mut self, f: NameFormat) -> Self {
        self.name_format = f;
        self
    }

    /// Sets the fallback missing rate.
    pub fn with_default_missing(mut self, rate: f64) -> Self {
        self.default_missing_rate = rate;
        self
    }

    /// Sets a per-attribute missing rate.
    pub fn with_missing(mut self, attribute: impl Into<String>, rate: f64) -> Self {
        self.missing_rates.insert(attribute.into(), rate);
        self
    }

    /// Marks attributes this source never renders.
    pub fn never_rendering(mut self, attributes: &[&str]) -> Self {
        self.never_renders.extend(attributes.iter().map(|s| s.to_string()));
        self
    }

    /// Sets the typo rate.
    pub fn with_typo_rate(mut self, rate: f64) -> Self {
        self.typo_rate = rate;
        self
    }

    /// Sets the categorical vocabulary shift.
    pub fn with_vocab_shift(mut self, shift: usize) -> Self {
        self.vocab_shift = shift;
        self
    }

    /// Sets the filler-token rate.
    pub fn with_filler_rate(mut self, rate: f64) -> Self {
        self.filler_rate = rate;
        self
    }

    /// The effective missing probability for an attribute.
    pub fn missing_rate(&self, attribute: &str) -> f64 {
        if self.never_renders.iter().any(|a| a == attribute) {
            return 1.0;
        }
        self.missing_rates.get(attribute).copied().unwrap_or(self.default_missing_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let s = SourceStyle::clean("web1")
            .with_name_format(NameFormat::Abbreviated)
            .with_missing("genre", 0.5)
            .never_rendering(&["gender"])
            .with_typo_rate(0.1)
            .with_vocab_shift(3);
        assert_eq!(s.name, "web1");
        assert_eq!(s.name_format, NameFormat::Abbreviated);
        assert_eq!(s.missing_rate("genre"), 0.5);
        assert_eq!(s.missing_rate("gender"), 1.0);
        assert_eq!(s.missing_rate("country"), 0.02);
        assert_eq!(s.vocab_shift, 3);
    }

    #[test]
    fn never_renders_overrides_specific_rate() {
        let s = SourceStyle::clean("x").with_missing("a", 0.1).never_rendering(&["a"]);
        assert_eq!(s.missing_rate("a"), 1.0);
    }
}
