//! CSV import/export of pair sets.
//!
//! The DI2KG challenge distributes its labels as CSV (`monitor_label.csv`);
//! this module provides a compatible interchange format so generated corpora
//! can be inspected, diffed, and re-loaded:
//!
//! ```text
//! left_source,left_entity,right_source,right_entity,label,attr,left_value,right_value
//! ```
//!
//! Pairs are flattened to one row per attribute; `label` is `1`, `0`, or
//! empty for unlabeled pairs.

use adamel_schema::{Domain, EntityPair, Record, Schema, SourceId};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits one CSV line honoring quoted fields.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Writes a domain to CSV.
pub fn write_pairs(domain: &Domain, schema: &Schema, w: &mut impl Write) -> io::Result<()> {
    writeln!(
        w,
        "left_source,left_entity,right_source,right_entity,label,attr,left_value,right_value"
    )?;
    for p in &domain.pairs {
        let label = match p.label {
            Some(true) => "1",
            Some(false) => "0",
            None => "",
        };
        for attr in schema.attributes() {
            let lv = p.left.get(attr).unwrap_or("");
            let rv = p.right.get(attr).unwrap_or("");
            if lv.is_empty() && rv.is_empty() {
                continue;
            }
            writeln!(
                w,
                "{},{},{},{},{},{},{},{}",
                p.left.source.0,
                p.left.entity_id,
                p.right.source.0,
                p.right.entity_id,
                label,
                escape(attr),
                escape(lv),
                escape(rv)
            )?;
        }
    }
    Ok(())
}

/// Reads a domain back from CSV produced by [`write_pairs`].
pub fn read_pairs(r: &mut impl BufRead) -> io::Result<Domain> {
    // Key: (left_source, left_entity, right_source, right_entity, label).
    type Key = (u32, u64, u32, u64, String);
    let mut order: Vec<Key> = Vec::new();
    let mut groups: BTreeMap<Key, Vec<(String, String, String)>> = BTreeMap::new();
    let mut first = true;
    for line in r.lines() {
        let line = line?;
        if first {
            first = false;
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let f = split_line(&line);
        if f.len() != 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected 8 CSV fields, got {}: {line}", f.len()),
            ));
        }
        let parse_err = |what: &str| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad {what} in: {line}"))
        };
        let key: Key = (
            f[0].parse().map_err(|_| parse_err("left_source"))?,
            f[1].parse().map_err(|_| parse_err("left_entity"))?,
            f[2].parse().map_err(|_| parse_err("right_source"))?,
            f[3].parse().map_err(|_| parse_err("right_entity"))?,
            f[4].clone(),
        );
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push((f[5].clone(), f[6].clone(), f[7].clone()));
    }

    let mut pairs = Vec::with_capacity(order.len());
    for key in order {
        let (ls, le, rs, re, label) = key.clone();
        let mut left = Record::new(SourceId(ls), le);
        let mut right = Record::new(SourceId(rs), re);
        for (attr, lv, rv) in &groups[&key] {
            if !lv.is_empty() {
                left.set(attr.clone(), lv.clone());
            }
            if !rv.is_empty() {
                right.set(attr.clone(), rv.clone());
            }
        }
        let label = match label.as_str() {
            "1" => Some(true),
            "0" => Some(false),
            "" => None,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad label {other}"),
                ))
            }
        };
        pairs.push(EntityPair { left, right, label });
    }
    Ok(Domain::new(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample_domain() -> (Domain, Schema) {
        let mut l = Record::new(SourceId(1), 10);
        l.set("title", "Hey, \"Jude\"");
        l.set("artist", "The Beatles");
        let mut r = Record::new(SourceId(2), 10);
        r.set("title", "Hey Jude");
        let mut l2 = Record::new(SourceId(1), 11);
        l2.set("title", "Hello");
        let r2 = Record::new(SourceId(3), 12);
        let domain =
            Domain::new(vec![EntityPair::labeled(l, r, true), EntityPair::unlabeled(l2, r2)]);
        let schema = Schema::new(vec!["artist".into(), "title".into()]);
        (domain, schema)
    }

    #[test]
    fn round_trip_preserves_pairs() {
        let (domain, schema) = sample_domain();
        let mut buf = Vec::new();
        write_pairs(&domain, &schema, &mut buf).expect("write to Vec cannot fail");
        let restored = read_pairs(&mut BufReader::new(&buf[..])).expect("round trip should parse");
        assert_eq!(restored.len(), domain.len());
        assert_eq!(restored.pairs[0].label, Some(true));
        assert_eq!(restored.pairs[0].left.get("title"), Some("Hey, \"Jude\""));
        assert_eq!(restored.pairs[0].right.get("title"), Some("Hey Jude"));
        assert_eq!(restored.pairs[1].label, None);
        assert_eq!(restored.pairs[1].left.entity_id, 11);
    }

    #[test]
    fn quoting_round_trip() {
        assert_eq!(split_line("a,\"b,c\",\"d\"\"e\""), vec!["a", "b,c", "d\"e"]);
        assert_eq!(escape("x,y"), "\"x,y\"");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn malformed_line_is_error() {
        let data = b"header\n1,2,3\n";
        assert!(read_pairs(&mut BufReader::new(&data[..])).is_err());
    }

    #[test]
    fn bad_label_is_error() {
        let data = b"h\n1,1,2,2,banana,title,a,b\n";
        assert!(read_pairs(&mut BufReader::new(&data[..])).is_err());
    }
}
