//! Deterministic synthesis of entity names and vocabularies.
//!
//! The generators need open-ended but reproducible vocabularies: artist and
//! manufacturer names, album/track titles, genre terms, and so on. Names are
//! composed from syllable inventories with a seeded RNG so two runs of a
//! generator produce identical worlds.

use rand::Rng;

const SYLLABLES: &[&str] = &[
    "ka", "ro", "mi", "ta", "lu", "ven", "sol", "dar", "el", "an", "be", "chi", "do", "fa", "gre",
    "hol", "is", "jo", "kel", "lor", "mar", "nel", "or", "pel", "qui", "ras", "sten", "tor", "ul",
    "vor", "wes", "xan", "yor", "zel", "bran", "cor", "del", "fen", "gar", "hav",
];

const LAST_SYLLABLES: &[&str] = &[
    "son", "man", "berg", "ski", "ton", "ford", "well", "smith", "er", "ley", "den", "field",
    "worth", "more", "land", "wood", "stone", "brook", "hart", "dale",
];

/// Words used to build album / track titles.
pub const TITLE_WORDS: &[&str] = &[
    "midnight", "golden", "echo", "river", "dream", "fire", "shadow", "light", "stone", "velvet",
    "electric", "silent", "broken", "wild", "neon", "crystal", "summer", "winter", "road", "heart",
    "city", "ocean", "star", "moon", "ghost", "paper", "glass", "iron", "thunder", "rain",
    "horizon", "garden", "mirror", "ashes", "embers", "waves",
];

/// Genre vocabulary; per-source distribution shift over this list realizes
/// challenge C3.
pub const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "classical",
    "electronic",
    "hip hop",
    "folk",
    "metal",
    "blues",
    "indie",
    "soul",
    "country",
    "ambient",
    "punk",
];

/// Country vocabulary.
pub const COUNTRIES: &[&str] = &[
    "usa",
    "uk",
    "germany",
    "france",
    "japan",
    "brazil",
    "sweden",
    "canada",
    "australia",
    "italy",
    "spain",
    "norway",
    "iceland",
    "korea",
];

/// Monitor manufacturer vocabulary.
pub const MANUFACTURERS: &[&str] = &[
    "dell",
    "samsung",
    "lg",
    "acer",
    "asus",
    "hp",
    "benq",
    "viewsonic",
    "aoc",
    "philips",
    "lenovo",
    "msi",
    "gigabyte",
    "nec",
];

/// Monitor product-type phrasing used by *seen* sources; target sources use
/// [`PROD_TYPES_TARGET`] (challenge C3, Fig. 12).
pub const PROD_TYPES_SOURCE: &[&str] =
    &["lcd monitor", "led monitor", "computer monitor", "desktop monitor", "flat panel"];

/// Monitor product-type phrasing used by *unseen* sources.
pub const PROD_TYPES_TARGET: &[&str] = &[
    "gaming display",
    "curved display",
    "ips display",
    "ultrawide screen",
    "professional display",
];

/// Track version tags; these make the "track" entity type diverse (remixes
/// and covers), which is why the paper's support set helps most there.
pub const VERSION_TAGS: &[&str] =
    &["original", "remix", "live", "acoustic", "radio edit", "cover", "extended mix", "demo"];

/// Diacritic-decorated variants used to build "native language" name forms.
const NATIVE_DECOR: &[(&str, &str)] =
    &[("a", "á"), ("e", "é"), ("o", "ö"), ("u", "ü"), ("i", "í"), ("n", "ñ"), ("c", "ç")];

/// A capitalized given/last name pair like "Kelmar Bergson".
pub fn person_name(rng: &mut impl Rng) -> String {
    let first = compose(rng, SYLLABLES, 2);
    let last = format!(
        "{}{}",
        compose(rng, SYLLABLES, 1),
        LAST_SYLLABLES[rng.gen_range(0..LAST_SYLLABLES.len())]
    );
    format!("{} {}", capitalize(&first), capitalize(&last))
}

/// A 1–3 word title like "Golden River".
pub fn title(rng: &mut impl Rng) -> String {
    let n = rng.gen_range(1..=3);
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(capitalize(TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]));
    }
    words.join(" ")
}

/// A monitor model code like "VX2458".
pub fn model_code(rng: &mut impl Rng) -> String {
    let letters: Vec<char> = "ABCEGHKMPSUVX".chars().collect();
    let a = letters[rng.gen_range(0..letters.len())];
    let b = letters[rng.gen_range(0..letters.len())];
    format!("{}{}{}", a, b, rng.gen_range(1000..9999))
}

/// Abbreviates a person name to initials: "Paul McCartney" → "P. M." —
/// the paper's running example of target-source abbreviation.
pub fn abbreviate(name: &str) -> String {
    name.split_whitespace()
        .filter_map(|w| w.chars().next())
        .map(|c| format!("{}.", c.to_uppercase()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// A "native language" rendering: inject diacritics so the string differs
/// at the character level but stays subword-similar.
pub fn nativeize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for c in name.chars() {
        let lower = c.to_lowercase().next().unwrap_or(c);
        let replaced = NATIVE_DECOR.iter().find(|(from, _)| from.starts_with(lower));
        match replaced {
            Some((_, to)) if c.is_lowercase() => out.push_str(to),
            _ => out.push(c),
        }
    }
    out
}

/// Introduces a single-character typo with the given probability.
pub fn maybe_typo(text: &str, prob: f64, rng: &mut impl Rng) -> String {
    if text.len() < 3 || !rng.gen_bool(prob) {
        return text.to_string();
    }
    let chars: Vec<char> = text.chars().collect();
    let idx = rng.gen_range(1..chars.len());
    let mut out: String = chars[..idx].iter().collect();
    match rng.gen_range(0..3) {
        0 => {
            // deletion
            out.extend(chars.get(idx + 1..).unwrap_or(&[]));
        }
        1 => {
            // duplication
            out.push(chars[idx]);
            out.extend(&chars[idx..]);
        }
        _ => {
            // substitution
            out.push('x');
            out.extend(chars.get(idx + 1..).unwrap_or(&[]));
        }
    }
    out
}

fn compose(rng: &mut impl Rng, inventory: &[&str], n: usize) -> String {
    let mut s = String::new();
    for _ in 0..n.max(1) {
        s.push_str(inventory[rng.gen_range(0..inventory.len())]);
    }
    s
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn person_name_deterministic() {
        let a = person_name(&mut StdRng::seed_from_u64(5));
        let b = person_name(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        assert!(a.contains(' '));
    }

    #[test]
    fn abbreviate_to_initials() {
        assert_eq!(abbreviate("Paul McCartney"), "P. M.");
        assert_eq!(abbreviate("Cher"), "C.");
        assert_eq!(abbreviate(""), "");
    }

    #[test]
    fn nativeize_changes_but_preserves_length_class() {
        let n = nativeize("kelmar");
        assert_ne!(n, "kelmar");
        assert_eq!(n.chars().count(), 6);
    }

    #[test]
    fn typo_probability_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(maybe_typo("beatles", 0.0, &mut rng), "beatles");
    }

    #[test]
    fn typo_probability_one_changes_string() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut changed = 0;
        for _ in 0..20 {
            if maybe_typo("beatles", 1.0, &mut rng) != "beatles" {
                changed += 1;
            }
        }
        assert!(changed >= 15, "only {changed}/20 typos applied");
    }

    #[test]
    fn model_code_format() {
        let m = model_code(&mut StdRng::seed_from_u64(9));
        assert_eq!(m.len(), 6);
        assert!(m[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
