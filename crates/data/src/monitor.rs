//! The synthetic Monitor world (DI2KG Monitor substitute).
//!
//! The paper's Monitor dataset comes from the DI2KG challenge: 24 sales
//! websites, 13 attributes after filtering, >99% of pairs negative, and the
//! appendix's data analysis (Fig. 11–12) showing
//!
//! * only `page_title` and `source` are near-complete; the other 11
//!   attributes have <50% non-missing pairs (C1);
//! * 5 of 13 attributes have non-missing pairs only in the target domain
//!   (C2);
//! * the `prod_type` token distribution differs sharply between domains
//!   (C3).
//!
//! This generator reproduces that statistical fingerprint on a synthetic
//! product catalog.

use crate::names;
use crate::style::SourceStyle;
use adamel_schema::{EntityPair, Record, Schema, SourceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 13 Monitor attributes (after the paper's >60%-empty filtering).
pub const MONITOR_ATTRIBUTES: [&str; 13] = [
    "page_title",
    "source",
    "manufacturer",
    "prod_type",
    "screen_size",
    "resolution",
    "condition",
    "price",
    "refresh_rate",
    "connectivity",
    "color",
    "weight",
    "warranty",
];

/// The 5 attributes only target-domain sources render (C2).
pub const TARGET_ONLY_ATTRIBUTES: [&str; 5] =
    ["refresh_rate", "connectivity", "color", "weight", "warranty"];

/// A canonical monitor product.
#[derive(Debug, Clone)]
pub struct MonitorEntity {
    /// Ground-truth identity.
    pub id: u64,
    /// Manufacturer index into [`names::MANUFACTURERS`].
    pub manufacturer: usize,
    /// Model code like "VX2458".
    pub model: String,
    /// Diagonal size in inches.
    pub size: u32,
    /// Resolution string.
    pub resolution: &'static str,
    /// Refresh rate in Hz.
    pub refresh: u32,
    /// Base price in dollars.
    pub price: u32,
}

const RESOLUTIONS: [&str; 5] = ["1920x1080", "2560x1440", "3840x2160", "1680x1050", "2560x1080"];
const CONNECTIVITY: [&str; 4] = ["hdmi dvi", "hdmi displayport", "vga dvi", "usb-c hdmi"];
const COLORS: [&str; 4] = ["black", "silver", "white", "gray"];
const CONDITIONS: [&str; 3] = ["new", "refurbished", "used"];

/// Size knobs for the generated monitor world.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Number of distinct monitor products.
    pub num_products: usize,
    /// Number of sales websites (paper: 24).
    pub num_sources: usize,
    /// Number of *seen* sources (paper: 5).
    pub num_seen_sources: usize,
    /// Probability a website lists a given product.
    pub coverage: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self { num_products: 150, num_sources: 24, num_seen_sources: 5, coverage: 0.35 }
    }
}

impl MonitorConfig {
    /// A small world for unit tests.
    pub fn tiny() -> Self {
        Self { num_products: 40, num_sources: 8, num_seen_sources: 3, coverage: 0.5 }
    }
}

/// The generated monitor world.
pub struct MonitorWorld {
    /// Canonical products.
    pub entities: Vec<MonitorEntity>,
    /// Per-source styles indexed by `SourceId.0`.
    pub styles: Vec<SourceStyle>,
    /// Rendered records.
    pub records: Vec<Record>,
    /// Number of seen sources (ids `0..num_seen`).
    pub num_seen: usize,
    schema: Schema,
}

/// Website names mimicking the paper's roster (first five are the seen
/// sources used as `D_S*`).
pub fn source_name(index: usize) -> String {
    const NAMED: [&str; 8] = [
        "ebay.com",
        "catalog.com",
        "best-deal-items.com",
        "cleverboxes.com",
        "ca.pcpartpicker.com",
        "yikus.com",
        "getprice.com",
        "shopmania.com",
    ];
    NAMED.get(index).map(|s| s.to_string()).unwrap_or_else(|| format!("shop{index}.com"))
}

impl MonitorWorld {
    /// Generates the world deterministically from a seed.
    pub fn generate(cfg: &MonitorConfig, seed: u64) -> Self {
        assert!(cfg.num_seen_sources < cfg.num_sources, "need at least one unseen source");
        let mut rng = StdRng::seed_from_u64(seed);
        // Manufacturers reuse base model codes across product lines
        // (VX2458 / VX2458-H / VX2458 gaming), so page_title is the
        // strongest signal without being an oracle — matching the paper's
        // Table 4 where page_title_shared dominates but PRAUC stays < 1.
        let base_codes: Vec<String> =
            (0..cfg.num_products / 3 + 1).map(|_| names::model_code(&mut rng)).collect();
        let mut entities = Vec::with_capacity(cfg.num_products);
        for id in 0..cfg.num_products {
            let base = &base_codes[rng.gen_range(0..base_codes.len())];
            let model = match rng.gen_range(0..3) {
                0 => base.clone(),
                1 => format!("{base}-H"),
                _ => format!("{base} v2"),
            };
            entities.push(MonitorEntity {
                id: id as u64,
                manufacturer: rng.gen_range(0..names::MANUFACTURERS.len()),
                model,
                size: [22u32, 24, 27, 32, 34][rng.gen_range(0..5)],
                resolution: RESOLUTIONS[rng.gen_range(0..RESOLUTIONS.len())],
                refresh: [60u32, 75, 144, 165, 240][rng.gen_range(0..5)],
                price: rng.gen_range(90..900),
            });
        }

        let styles = monitor_styles(cfg.num_sources, cfg.num_seen_sources);
        let mut records = Vec::new();
        for e in &entities {
            for (sidx, style) in styles.iter().enumerate() {
                if rng.gen_bool(cfg.coverage) {
                    records.push(render_monitor(
                        e,
                        SourceId(sidx as u32),
                        style,
                        sidx < cfg.num_seen_sources,
                        &mut rng,
                    ));
                }
            }
        }
        let schema = Schema::new(MONITOR_ATTRIBUTES.iter().map(|s| s.to_string()).collect());
        Self { entities, styles, records, num_seen: cfg.num_seen_sources, schema }
    }

    /// The aligned 13-attribute schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Records restricted to the given sources (None = all).
    pub fn records_for(&self, sources: Option<&[u32]>) -> Vec<Record> {
        self.records
            .iter()
            .filter(|r| sources.is_none_or(|s| s.contains(&r.source.0)))
            .cloned()
            .collect()
    }

    /// Ids of the seen sources `D_S*`.
    pub fn seen_sources(&self) -> Vec<u32> {
        (0..self.num_seen as u32).collect()
    }

    /// Ids of every source (`D_T*` in the overlapping scenario).
    pub fn all_sources(&self) -> Vec<u32> {
        (0..self.styles.len() as u32).collect()
    }

    /// Ids of the unseen sources (`D_T*` in the disjoint scenario).
    pub fn unseen_sources(&self) -> Vec<u32> {
        (self.num_seen as u32..self.styles.len() as u32).collect()
    }
}

/// Styles for the monitor roster: sparse attributes everywhere (C1), five
/// attributes never rendered by seen sources (C2), and shifted `prod_type`
/// phrasing in the target (C3).
pub fn monitor_styles(num_sources: usize, num_seen: usize) -> Vec<SourceStyle> {
    let mut styles = Vec::with_capacity(num_sources);
    for i in 0..num_sources {
        let mut style = SourceStyle::clean(source_name(i))
            // page_title and source are near-complete; everything else is
            // sparse, matching Fig. 11.
            .with_missing("page_title", 0.02)
            .with_missing("manufacturer", 0.45)
            .with_missing("prod_type", 0.5)
            .with_missing("screen_size", 0.55)
            .with_missing("resolution", 0.55)
            .with_missing("condition", 0.6)
            .with_missing("price", 0.5)
            .with_missing("refresh_rate", 0.6)
            .with_missing("connectivity", 0.65)
            .with_missing("color", 0.6)
            .with_missing("weight", 0.7)
            .with_missing("warranty", 0.7)
            .with_typo_rate(0.03)
            .with_filler_rate(0.3)
            .with_vocab_shift(i);
        if i < num_seen {
            style = style.never_rendering(&TARGET_ONLY_ATTRIBUTES);
        }
        styles.push(style);
    }
    styles
}

/// Renders one product through a website style.
pub fn render_monitor(
    e: &MonitorEntity,
    source: SourceId,
    style: &SourceStyle,
    is_seen_source: bool,
    rng: &mut StdRng,
) -> Record {
    let mut r = Record::new(source, e.id);
    let manufacturer = names::MANUFACTURERS[e.manufacturer];

    let set_attr = |record: &mut Record, attr: &str, value: String, rng: &mut StdRng| {
        if value.is_empty() || rng.gen_bool(style.missing_rate(attr).min(1.0)) {
            return;
        }
        let v = names::maybe_typo(&value, style.typo_rate, rng);
        record.set(attr, v);
    };

    // page_title concatenates the identifying fields — which is exactly why
    // the paper's Table 4 finds page_title_shared dominant. Each website
    // lays its titles out differently, and some listings omit the model
    // code, so title matching is strong evidence rather than an oracle.
    let include_model = !is_seen_source || rng.gen_bool(0.85);
    let model = if include_model { e.model.as_str() } else { "" };
    let mut page_title = match style.vocab_shift % 3 {
        0 => format!("{} {} {}\" {} monitor", manufacturer, model, e.size, e.resolution),
        1 => format!("{} {} {} inch {} hz screen", model, manufacturer, e.size, e.refresh),
        _ => format!("{} {} display {} {}", manufacturer, e.size, e.resolution, model),
    };
    if rng.gen_bool(style.filler_rate) {
        page_title.push_str(if is_seen_source {
            " best price free shipping"
        } else {
            " deal of the day warehouse stock"
        });
    }
    set_attr(&mut r, "page_title", page_title, rng);
    r.set("source", style.name.clone());
    set_attr(&mut r, "manufacturer", manufacturer.to_string(), rng);

    // C3: seen and unseen sources phrase prod_type from disjoint vocabularies.
    let prod_type = if is_seen_source {
        names::PROD_TYPES_SOURCE
            [(e.id as usize + style.vocab_shift) % names::PROD_TYPES_SOURCE.len()]
    } else {
        names::PROD_TYPES_TARGET
            [(e.id as usize + style.vocab_shift) % names::PROD_TYPES_TARGET.len()]
    };
    set_attr(&mut r, "prod_type", prod_type.to_string(), rng);

    set_attr(&mut r, "screen_size", format!("{} inch", e.size), rng);
    set_attr(&mut r, "resolution", e.resolution.to_string(), rng);
    set_attr(&mut r, "condition", CONDITIONS[rng.gen_range(0..CONDITIONS.len())].to_string(), rng);
    // Per-site price jitter keeps price a weak signal, as in real listings.
    let price = (e.price as f64 * rng.gen_range(0.92..1.08)) as u32;
    set_attr(&mut r, "price", format!("{price}"), rng);
    set_attr(&mut r, "refresh_rate", format!("{} hz", e.refresh), rng);
    set_attr(
        &mut r,
        "connectivity",
        CONNECTIVITY[e.id as usize % CONNECTIVITY.len()].to_string(),
        rng,
    );
    set_attr(&mut r, "color", COLORS[e.id as usize % COLORS.len()].to_string(), rng);
    set_attr(&mut r, "weight", format!("{:.1} kg", 2.5 + (e.size as f32) / 8.0), rng);
    set_attr(&mut r, "warranty", format!("{} year", 1 + e.id % 3), rng);
    r
}

/// Degrades pairs by dropping each present attribute value with probability
/// `extra_missing` — a deterministic C1 drift fixture. Feeding the output to
/// a drift monitor whose baseline was built on the originals raises the
/// missing-attribute rate without touching vocabulary (C3) or introducing
/// new attributes (C2), so exactly the C1 signal should fire.
pub fn degrade_pairs(pairs: &[EntityPair], extra_missing: f64, seed: u64) -> Vec<EntityPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut drop_values = |r: &Record| -> Record {
        let mut out = Record::new(r.source, r.entity_id);
        // BTreeMap iteration order keeps the RNG stream deterministic.
        for (attr, value) in &r.values {
            if !rng.gen_bool(extra_missing) {
                out.set(attr.clone(), value.clone());
            }
        }
        out
    };
    pairs
        .iter()
        .map(|p| EntityPair {
            left: drop_values(&p.left),
            right: drop_values(&p.right),
            label: p.label,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> MonitorWorld {
        MonitorWorld::generate(&MonitorConfig::tiny(), 3)
    }

    #[test]
    fn deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[10].values, b.records[10].values);
    }

    #[test]
    fn seen_sources_never_render_target_only_attributes() {
        let w = world();
        for r in &w.records {
            if (r.source.0 as usize) < w.num_seen {
                for attr in TARGET_ONLY_ATTRIBUTES {
                    assert!(r.is_missing(attr), "seen source rendered {attr}");
                }
            }
        }
        for attr in TARGET_ONLY_ATTRIBUTES {
            assert!(
                w.records.iter().any(|r| !r.is_missing(attr)),
                "{attr} missing everywhere — C2 not realized"
            );
        }
    }

    #[test]
    fn page_title_near_complete_but_others_sparse() {
        let w = world();
        let total = w.records.len() as f64;
        let count =
            |attr: &str| w.records.iter().filter(|r| !r.is_missing(attr)).count() as f64 / total;
        assert!(count("page_title") > 0.9);
        assert!(count("source") > 0.99);
        assert!(count("screen_size") < 0.6);
        assert!(count("weight") < 0.5);
    }

    #[test]
    fn prod_type_vocabulary_shifts_between_domains_c3() {
        let w = world();
        let seen_tokens: Vec<&str> = w
            .records
            .iter()
            .filter(|r| (r.source.0 as usize) < w.num_seen)
            .filter_map(|r| r.get("prod_type"))
            .collect();
        for t in &seen_tokens {
            assert!(
                names::PROD_TYPES_SOURCE.iter().any(|p| t.contains(&p[..3])),
                "unexpected seen prod_type {t}"
            );
        }
        let unseen_has_target_vocab = w
            .records
            .iter()
            .filter(|r| (r.source.0 as usize) >= w.num_seen)
            .filter_map(|r| r.get("prod_type"))
            .any(|t| names::PROD_TYPES_TARGET.iter().any(|p| t.contains(&p[..4])));
        assert!(unseen_has_target_vocab);
    }

    #[test]
    fn source_partitions() {
        let w = world();
        assert_eq!(w.seen_sources().len() + w.unseen_sources().len(), w.all_sources().len());
        assert_eq!(w.schema().len(), 13);
    }

    #[test]
    fn degrade_pairs_is_deterministic_and_only_removes_values() {
        let w = world();
        let records = w.records_for(Some(&w.seen_sources()));
        let pairs: Vec<EntityPair> = records
            .windows(2)
            .map(|p| EntityPair::labeled(p[0].clone(), p[1].clone(), true))
            .collect();
        let a = degrade_pairs(&pairs, 0.5, 9);
        let b = degrade_pairs(&pairs, 0.5, 9);
        assert_eq!(a.len(), pairs.len());
        for (da, db) in a.iter().zip(&b) {
            assert_eq!(da.left.values, db.left.values, "nondeterministic degradation");
            assert_eq!(da.right.values, db.right.values);
        }
        let present = |ps: &[EntityPair]| -> usize {
            ps.iter().map(|p| p.left.values.len() + p.right.values.len()).sum()
        };
        assert!(present(&a) < present(&pairs), "degradation removed nothing");
        for (orig, deg) in pairs.iter().zip(&a) {
            assert_eq!(orig.label, deg.label);
            for (attr, value) in &deg.left.values {
                assert_eq!(orig.left.values.get(attr), Some(value), "degradation altered a value");
            }
        }
        // Zero extra rate must be the identity.
        let id = degrade_pairs(&pairs, 0.0, 9);
        assert_eq!(present(&id), present(&pairs));
    }

    #[test]
    fn records_for_filters() {
        let w = world();
        let seen = w.records_for(Some(&w.seen_sources()));
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|r| (r.source.0 as usize) < w.num_seen));
        assert_eq!(w.records_for(None).len(), w.records.len());
    }
}
