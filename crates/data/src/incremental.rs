//! Incremental data-source streams for the stability experiment (Fig. 9).
//!
//! §5.5 fixes 1500 training pairs from the 5 seen sources, seeds the target
//! domain with 200 pairs from each of 7 sources, and then grows `D_T*` by 2
//! new sources (200 pairs each) per step, always ensuring new pairs touch
//! the newly added sources.

use crate::monitor::MonitorWorld;
use crate::sampling::{filters, PairSampler};
use adamel_schema::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One growth step of the target domain.
pub struct IncrementalStep {
    /// Number of sources now in `D_T*`.
    pub num_sources: usize,
    /// The cumulative target domain (unlabeled; ground truth retained).
    pub target: Domain,
}

/// The full incremental experiment stream.
pub struct IncrementalStream {
    /// Fixed labeled training pairs from the seen sources.
    pub train: Domain,
    /// Fixed labeled support set drawn from all sources.
    pub support: Domain,
    /// Growing target domains.
    pub steps: Vec<IncrementalStep>,
}

/// Builds the Fig. 9 stream over a monitor world.
///
/// * `train_pairs`: labeled pairs from the seen sources (paper: 1500).
/// * `per_source_pairs`: pairs contributed by each target source (paper: 200).
/// * `initial_sources`: size of the starting `D_T*` (paper: 7).
/// * `sources_per_step`: growth per step (paper: 2).
pub fn monitor_incremental(
    world: &MonitorWorld,
    train_pairs: usize,
    support_size: usize,
    per_source_pairs: usize,
    initial_sources: usize,
    sources_per_step: usize,
    seed: u64,
) -> IncrementalStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let records = world.records_for(None);
    let sampler = PairSampler::new(&records, "page_title");
    let seen = world.seen_sources();

    // Fixed training set from the seen sources.
    let train_filter = filters::both_in(seen.clone());
    let mut train = sampler.positives(train_pairs / 2, &train_filter, &mut rng);
    train.extend(sampler.negatives(train_pairs - train.len(), 0.6, &train_filter, &mut rng));
    let train = Domain::new(train);

    // Fixed support set from all sources.
    let all = world.all_sources();
    let support_filter = filters::both_in(all.clone());
    let mut support = sampler.positives(support_size / 2, &support_filter, &mut rng);
    support.extend(sampler.negatives(support_size - support.len(), 0.6, &support_filter, &mut rng));
    let support = Domain::new(support);

    // Growing target: start with `initial_sources`, add `sources_per_step`
    // at a time; each step's new pairs touch the newly added sources.
    let mut steps = Vec::new();
    let mut cumulative = Domain::default();
    let mut active: Vec<u32> = Vec::new();
    let mut next = 0usize;
    while next < all.len() {
        let take = if active.is_empty() { initial_sources } else { sources_per_step };
        let added: Vec<u32> = all[next..(next + take).min(all.len())].to_vec();
        next += added.len();
        active.extend(&added);

        // New pairs must touch an added source (paper: "each of the newly
        // added pairs contains at least one record from ΔD_T").
        let added_filter = {
            let added = added.clone();
            let active = active.clone();
            move |a: adamel_schema::SourceId, b: adamel_schema::SourceId| {
                (added.contains(&a.0) || added.contains(&b.0))
                    && active.contains(&a.0)
                    && active.contains(&b.0)
            }
        };
        let want = per_source_pairs * added.len();
        let mut new_pairs = sampler.positives(want / 4, &added_filter, &mut rng);
        new_pairs.extend(sampler.negatives(want - new_pairs.len(), 0.6, &added_filter, &mut rng));
        for p in &mut new_pairs {
            p.label = None;
        }
        cumulative.pairs.extend(new_pairs);
        steps.push(IncrementalStep { num_sources: active.len(), target: cumulative.clone() });
    }

    IncrementalStream { train, support, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorConfig;

    #[test]
    fn stream_grows_monotonically() {
        let world = MonitorWorld::generate(&MonitorConfig::tiny(), 4);
        let stream = monitor_incremental(&world, 120, 30, 20, 4, 2, 1);
        assert!(!stream.train.is_empty());
        assert!(!stream.support.is_empty());
        assert!(stream.steps.len() >= 2);
        for w in stream.steps.windows(2) {
            assert!(w[1].num_sources > w[0].num_sources);
            assert!(w[1].target.len() >= w[0].target.len());
        }
    }

    #[test]
    fn train_is_confined_to_seen_sources() {
        let world = MonitorWorld::generate(&MonitorConfig::tiny(), 4);
        let stream = monitor_incremental(&world, 120, 30, 20, 4, 2, 1);
        let seen = world.seen_sources();
        for p in &stream.train.pairs {
            assert!(seen.contains(&p.left.source.0) && seen.contains(&p.right.source.0));
        }
    }

    #[test]
    fn target_pairs_unlabeled_and_within_active_sources() {
        let world = MonitorWorld::generate(&MonitorConfig::tiny(), 4);
        let stream = monitor_incremental(&world, 120, 30, 20, 4, 2, 1);
        let first = &stream.steps[0];
        for p in &first.target.pairs {
            assert!(p.label.is_none());
            assert!((p.left.source.0 as usize) < first.num_sources);
            assert!((p.right.source.0 as usize) < first.num_sources);
        }
    }

    #[test]
    fn final_step_covers_all_sources() {
        let world = MonitorWorld::generate(&MonitorConfig::tiny(), 4);
        let stream = monitor_incremental(&world, 120, 30, 20, 4, 2, 1);
        assert_eq!(stream.steps.last().unwrap().num_sources, world.all_sources().len());
    }
}
