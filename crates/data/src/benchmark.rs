//! Synthetic stand-ins for the Magellan benchmark datasets of Table 7.
//!
//! The paper's single-domain experiment (§5.7.2) compares DeepMatcher,
//! AdaMEL-zero and AdaMEL-hyb on 11 public benchmark datasets (7 structured,
//! 4 dirty). What Table 7 establishes is *relative*: on clean single-domain
//! data without C1–C3, word-level models have the edge over AdaMEL-zero
//! while AdaMEL-hyb stays comparable. Each dataset is therefore simulated by
//! a generator matched on schema width, value length, noise level, and
//! difficulty tier; the dirty variants additionally swap values into wrong
//! columns, the standard "dirty EM" construction.

use adamel_schema::{Domain, EntityPair, Record, Schema, SourceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Difficulty tier controlling noise and negative hardness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Near-perfectly separable (DBLP-ACM, Fodors-Zagats).
    Easy,
    /// Mild noise (DBLP-GoogleScholar, iTunes-Amazon, Beer).
    Medium,
    /// Heavy noise, overlapping vocabulary (Amazon-Google, Walmart-Amazon).
    Hard,
}

/// Static description of one benchmark dataset.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Dataset name as reported in Table 7.
    pub name: &'static str,
    /// Domain column of Table 7.
    pub domain: &'static str,
    /// Structured or dirty variant.
    pub dirty: bool,
    /// Attribute schema.
    pub attributes: &'static [&'static str],
    /// Number of distinct entities.
    pub num_entities: usize,
    /// Difficulty tier.
    pub tier: Tier,
}

const CITATION_ATTRS: &[&str] = &["title", "authors", "venue", "year"];
const PRODUCT_ATTRS: &[&str] = &["title", "manufacturer", "price", "category"];
const RESTAURANT_ATTRS: &[&str] = &["name", "address", "city", "phone", "cuisine"];
const MUSIC_ATTRS: &[&str] = &["song_name", "artist_name", "album_name", "genre", "price"];

/// The 11 Table 7 datasets.
pub fn benchmark_specs() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "Amazon-Google",
            domain: "Software",
            dirty: false,
            attributes: PRODUCT_ATTRS,
            num_entities: 220,
            tier: Tier::Hard,
        },
        BenchmarkSpec {
            name: "Beer",
            domain: "Product",
            dirty: false,
            attributes: PRODUCT_ATTRS,
            num_entities: 100,
            tier: Tier::Medium,
        },
        BenchmarkSpec {
            name: "DBLP-ACM",
            domain: "Citation",
            dirty: false,
            attributes: CITATION_ATTRS,
            num_entities: 250,
            tier: Tier::Easy,
        },
        BenchmarkSpec {
            name: "DBLP-Google",
            domain: "Citation",
            dirty: false,
            attributes: CITATION_ATTRS,
            num_entities: 250,
            tier: Tier::Medium,
        },
        BenchmarkSpec {
            name: "Fodors-Zagats",
            domain: "Restaurant",
            dirty: false,
            attributes: RESTAURANT_ATTRS,
            num_entities: 120,
            tier: Tier::Easy,
        },
        BenchmarkSpec {
            name: "iTunes-Amazon",
            domain: "Music",
            dirty: false,
            attributes: MUSIC_ATTRS,
            num_entities: 150,
            tier: Tier::Medium,
        },
        BenchmarkSpec {
            name: "Walmart-Amazon",
            domain: "Electronics",
            dirty: false,
            attributes: PRODUCT_ATTRS,
            num_entities: 220,
            tier: Tier::Hard,
        },
        BenchmarkSpec {
            name: "DBLP-ACM",
            domain: "Citation",
            dirty: true,
            attributes: CITATION_ATTRS,
            num_entities: 250,
            tier: Tier::Easy,
        },
        BenchmarkSpec {
            name: "DBLP-Google",
            domain: "Citation",
            dirty: true,
            attributes: CITATION_ATTRS,
            num_entities: 250,
            tier: Tier::Medium,
        },
        BenchmarkSpec {
            name: "iTunes-Amazon",
            domain: "Music",
            dirty: true,
            attributes: MUSIC_ATTRS,
            num_entities: 150,
            tier: Tier::Medium,
        },
        BenchmarkSpec {
            name: "Walmart-Amazon",
            domain: "Electronics",
            dirty: true,
            attributes: PRODUCT_ATTRS,
            num_entities: 220,
            tier: Tier::Hard,
        },
    ]
}

impl Tier {
    fn typo_rate(self) -> f64 {
        match self {
            Tier::Easy => 0.01,
            Tier::Medium => 0.08,
            Tier::Hard => 0.2,
        }
    }
    fn missing_rate(self) -> f64 {
        match self {
            Tier::Easy => 0.02,
            Tier::Medium => 0.08,
            Tier::Hard => 0.18,
        }
    }
    fn hard_negative_fraction(self) -> f64 {
        match self {
            Tier::Easy => 0.2,
            Tier::Medium => 0.5,
            Tier::Hard => 0.85,
        }
    }
    /// Smaller vocabularies make negatives collide more (harder).
    fn vocab_size(self) -> usize {
        match self {
            Tier::Easy => 400,
            Tier::Medium => 150,
            Tier::Hard => 60,
        }
    }
}

/// A generated benchmark: labeled train/test domains over two sources with
/// one shared schema and no C1–C3 challenges.
pub struct BenchmarkData {
    /// Labeled training pairs.
    pub train: Domain,
    /// Labeled test pairs.
    pub test: Domain,
    /// The dataset schema.
    pub schema: Schema,
}

/// Generates one benchmark dataset deterministically.
pub fn generate_benchmark(spec: &BenchmarkSpec, seed: u64) -> BenchmarkData {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab: Vec<String> =
        (0..spec.tier.vocab_size()).map(|i| synth_word(i as u64, seed)).collect();

    // Canonical entities: one value per attribute.
    let mut canonical: Vec<Vec<String>> = Vec::with_capacity(spec.num_entities);
    for _ in 0..spec.num_entities {
        let values = spec
            .attributes
            .iter()
            .map(|attr| {
                let words = if attr.contains("title") || attr.contains("name") {
                    rng.gen_range(2..=4)
                } else {
                    rng.gen_range(1..=2)
                };
                (0..words)
                    .map(|_| vocab[rng.gen_range(0..vocab.len())].clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        canonical.push(values);
    }

    let render = |id: usize, source: u32, rng: &mut StdRng, canonical: &[Vec<String>]| -> Record {
        let mut r = Record::new(SourceId(source), id as u64);
        let mut rendered: Vec<(usize, String)> = Vec::new();
        for (ai, attr) in spec.attributes.iter().enumerate() {
            if rng.gen_bool(spec.tier.missing_rate()) {
                continue;
            }
            let v = crate::names::maybe_typo(&canonical[id][ai], spec.tier.typo_rate(), rng);
            rendered.push((ai, v));
            let _ = attr;
        }
        // Dirty construction: move a value into another attribute's column.
        if spec.dirty {
            for entry in rendered.iter_mut() {
                if rng.gen_bool(0.25) {
                    entry.0 = rng.gen_range(0..spec.attributes.len());
                }
            }
        }
        for (ai, v) in rendered {
            // Later writes overwrite earlier ones for a swapped-in column;
            // that lossiness is what makes dirty variants harder.
            r.set(spec.attributes[ai], v);
        }
        r
    };

    let mut pairs: Vec<EntityPair> = Vec::new();
    // Positives: entity rendered by both sources.
    for id in 0..spec.num_entities {
        let a = render(id, 0, &mut rng, &canonical);
        let b = render(id, 1, &mut rng, &canonical);
        pairs.push(EntityPair::labeled(a, b, true));
    }
    // Negatives: 2 per entity; tier-dependent share are near-misses that
    // share title words.
    for id in 0..spec.num_entities {
        for _ in 0..2 {
            let other = if rng.gen_bool(spec.tier.hard_negative_fraction()) {
                // Near-miss: clone canonical, perturb one word, register as a
                // different entity.
                let mut values = canonical[id].clone();
                let ai = rng.gen_range(0..values.len());
                values[ai] = vocab[rng.gen_range(0..vocab.len())].clone();
                canonical.len() + pairs.len() // fresh id
            } else {
                let mut o = rng.gen_range(0..spec.num_entities);
                if o == id {
                    o = (o + 1) % spec.num_entities;
                }
                o
            };
            let a = render(id, 0, &mut rng, &canonical);
            let mut b = if other < canonical.len() {
                render(other, 1, &mut rng, &canonical)
            } else {
                // Near-miss record: same as id but one attribute re-rolled.
                let mut fake = render(id, 1, &mut rng, &canonical);
                let attr = spec.attributes[rng.gen_range(0..spec.attributes.len())];
                fake.set(attr, vocab[rng.gen_range(0..vocab.len())].clone());
                fake
            };
            b.entity_id = other as u64;
            pairs.push(EntityPair::labeled(a, b, false));
        }
    }

    // Deterministic shuffle, 60/40 train/test split.
    for i in (1..pairs.len()).rev() {
        pairs.swap(i, rng.gen_range(0..=i));
    }
    let cut = pairs.len() * 3 / 5;
    let test = pairs.split_off(cut);
    let schema = Schema::new(spec.attributes.iter().map(|s| s.to_string()).collect());
    BenchmarkData { train: Domain::new(pairs), test: Domain::new(test), schema }
}

fn synth_word(i: u64, seed: u64) -> String {
    // Pronounceable deterministic pseudo-words, distinct per index.
    const C: &[u8] = b"bcdfgklmnprstvz";
    const V: &[u8] = b"aeiou";
    let mut x = i.wrapping_mul(0x9e37_79b9).wrapping_add(seed);
    let mut s = String::new();
    for k in 0..3 {
        let c = C[(x % C.len() as u64) as usize] as char;
        x /= C.len() as u64;
        let v = V[(x % V.len() as u64) as usize] as char;
        x /= V.len() as u64;
        s.push(c);
        s.push(v);
        if k == 1 && x % 2 == 0 {
            break;
        }
    }
    s.push_str(&(i % 97).to_string());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_specs_match_table7() {
        let specs = benchmark_specs();
        assert_eq!(specs.len(), 11);
        assert_eq!(specs.iter().filter(|s| s.dirty).count(), 4);
        assert!(specs.iter().any(|s| s.name == "Fodors-Zagats"));
    }

    #[test]
    fn generation_deterministic() {
        let spec = &benchmark_specs()[2]; // DBLP-ACM
        let a = generate_benchmark(spec, 3);
        let b = generate_benchmark(spec, 3);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn positives_and_negatives_present_in_both_splits() {
        let spec = &benchmark_specs()[4]; // Fodors-Zagats
        let d = generate_benchmark(spec, 1);
        for dom in [&d.train, &d.test] {
            let pos = dom.num_positive();
            assert!(pos > 0 && pos < dom.len());
        }
        assert_eq!(d.schema.len(), RESTAURANT_ATTRS.len());
    }

    #[test]
    fn dirty_variant_misplaces_values() {
        let clean_spec = &benchmark_specs()[2];
        let dirty_spec = &benchmark_specs()[7];
        assert_eq!(clean_spec.name, dirty_spec.name);
        let clean = generate_benchmark(clean_spec, 5);
        let dirty = generate_benchmark(dirty_spec, 5);
        // Dirty records should, on average, have fewer populated attributes
        // (column collisions drop values).
        let avg = |d: &BenchmarkData| {
            let total: usize = d
                .train
                .pairs
                .iter()
                .map(|p| p.left.attributes().count() + p.right.attributes().count())
                .sum();
            total as f64 / (2 * d.train.len()) as f64
        };
        assert!(avg(&dirty) <= avg(&clean) + 0.1);
    }

    #[test]
    fn hard_tier_has_harder_negatives_than_easy() {
        use adamel_text::tokenize;
        let overlap_share = |d: &BenchmarkData| {
            let negs: Vec<&EntityPair> =
                d.train.pairs.iter().filter(|p| p.label == Some(false)).collect();
            let sharing = negs
                .iter()
                .filter(|p| {
                    let a: Vec<String> = p.left.values.values().flat_map(|v| tokenize(v)).collect();
                    let b: Vec<String> =
                        p.right.values.values().flat_map(|v| tokenize(v)).collect();
                    a.iter().any(|t| b.contains(t))
                })
                .count();
            sharing as f64 / negs.len().max(1) as f64
        };
        let easy = generate_benchmark(&benchmark_specs()[2], 7);
        let hard = generate_benchmark(&benchmark_specs()[6], 7);
        assert!(
            overlap_share(&hard) > overlap_share(&easy),
            "hard {} <= easy {}",
            overlap_share(&hard),
            overlap_share(&easy)
        );
    }

    #[test]
    fn synth_word_distinct_and_stable() {
        let a = synth_word(1, 0);
        let b = synth_word(2, 0);
        assert_ne!(a, b);
        assert_eq!(synth_word(1, 0), a);
    }
}
