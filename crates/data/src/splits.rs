//! MEL experiment splits: source domain `D_S`, support set `S_U`, and target
//! domain `D_T` under the paper's two scenarios (§5.2).

use crate::sampling::{filters, PairSampler};
use adamel_schema::{Domain, EntityPair, Record};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The two evaluation scenarios of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scenario {
    /// S1: target pairs may mix seen and unseen sources
    /// (`(r,r')_T ∈ D_S* x D_T*`).
    Overlapping,
    /// S2: target pairs are entirely within unseen sources
    /// (`(r,r')_T ∈ D_T* x D_T*`).
    Disjoint,
}

impl Scenario {
    /// Reporting name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Overlapping => "overlapping",
            Scenario::Disjoint => "disjoint",
        }
    }
}

/// How many pairs to draw for each split.
#[derive(Debug, Clone)]
pub struct SplitCounts {
    /// Labeled training positives in `D_S`.
    pub train_pos: usize,
    /// Labeled training negatives in `D_S`.
    pub train_neg: usize,
    /// Support-set positives (paper: 50).
    pub support_pos: usize,
    /// Support-set negatives (paper: 50).
    pub support_neg: usize,
    /// Test positives.
    pub test_pos: usize,
    /// Test negatives.
    pub test_neg: usize,
    /// Fraction of negatives sharing a blocking token.
    pub hard_negative_fraction: f64,
}

impl Default for SplitCounts {
    fn default() -> Self {
        Self {
            train_pos: 150,
            train_neg: 150,
            support_pos: 50,
            support_neg: 50,
            test_pos: 120,
            test_neg: 120,
            hard_negative_fraction: 0.5,
        }
    }
}

impl SplitCounts {
    /// A reduced configuration for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            train_pos: 40,
            train_neg: 40,
            support_pos: 15,
            support_neg: 15,
            test_pos: 30,
            test_neg: 30,
            hard_negative_fraction: 0.5,
        }
    }

    /// The Monitor-style imbalanced test: all positives plus a fixed pool of
    /// negatives (paper: all remaining 432 positives + 1000 negatives).
    pub fn imbalanced(test_neg: usize) -> Self {
        Self { test_neg, hard_negative_fraction: 0.7, ..Self::default() }
    }
}

/// A complete MEL split.
#[derive(Debug, Clone)]
pub struct MelSplit {
    /// Labeled source-domain training pairs.
    pub train: Domain,
    /// Small labeled support set from the target source range.
    pub support: Domain,
    /// Target-domain pairs; labels stripped (ground truth retained in
    /// `entity_id` for evaluation).
    pub test: Domain,
}

/// Builds a MEL split over a record pool.
///
/// `seen` are the source ids of `D_S*`; `unseen` the ids new in `D_T*`.
/// Under [`Scenario::Overlapping`] target pairs touch any source but must
/// include data reachable from the full roster; under [`Scenario::Disjoint`]
/// both records come from unseen sources.
pub fn make_mel_split(
    records: &[Record],
    block_attr: &str,
    seen: &[u32],
    unseen: &[u32],
    scenario: Scenario,
    counts: &SplitCounts,
    seed: u64,
) -> MelSplit {
    let sampler = PairSampler::new(records, block_attr);
    let mut rng = StdRng::seed_from_u64(seed);

    let train_filter = filters::both_in(seen.to_vec());
    let mut train = sampler.positives(counts.train_pos, &train_filter, &mut rng);
    train.extend(sampler.negatives(
        counts.train_neg,
        counts.hard_negative_fraction,
        &train_filter,
        &mut rng,
    ));

    // Target membership per scenario. The support set is drawn from the same
    // range of sources as D_T (Definition 3.2).
    let make_target: Box<dyn Fn(adamel_schema::SourceId, adamel_schema::SourceId) -> bool> =
        match scenario {
            Scenario::Overlapping => Box::new(filters::touches(unseen.to_vec())),
            Scenario::Disjoint => Box::new(filters::both_unseen(unseen.to_vec())),
        };

    let mut support = sampler.positives(counts.support_pos, &make_target, &mut rng);
    support.extend(sampler.negatives(
        counts.support_neg,
        counts.hard_negative_fraction,
        &make_target,
        &mut rng,
    ));

    let mut test: Vec<EntityPair> = sampler
        .positives(counts.test_pos, &make_target, &mut rng)
        .into_iter()
        .chain(sampler.negatives(
            counts.test_neg,
            counts.hard_negative_fraction,
            &make_target,
            &mut rng,
        ))
        .collect();
    // Strip labels: the target domain is unlabeled (G1); evaluation uses
    // ground-truth entity ids.
    for p in &mut test {
        p.label = None;
    }

    MelSplit { train: Domain::new(train), support: Domain::new(support), test: Domain::new(test) }
}

/// Applies weak "hyperlink" labeling noise to a labeled domain — the
/// Music-1M construction, where labels follow website hyperlinks and can
/// connect an artist to her album (mixed-type errors) or miss version
/// distinctions.
///
/// With probability `flip_rate` a pair's label is corrupted. Returns the
/// number of corrupted labels.
pub fn weaken_labels(domain: &mut Domain, flip_rate: f64, seed: u64) -> usize {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flipped = 0;
    for p in &mut domain.pairs {
        if let Some(l) = p.label {
            if rng.gen_bool(flip_rate) {
                p.label = Some(!l);
                flipped += 1;
            }
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::music::{EntityType, MusicConfig, MusicWorld};

    fn fixture() -> (Vec<Record>, Vec<u32>, Vec<u32>) {
        let w = MusicWorld::generate(&MusicConfig::tiny(), 21);
        let records = w.records_of(EntityType::Artist, None);
        (records, vec![0, 1, 2], vec![3, 4, 5, 6])
    }

    #[test]
    fn split_structure_overlapping() {
        let (records, seen, unseen) = fixture();
        let split = make_mel_split(
            &records,
            "name",
            &seen,
            &unseen,
            Scenario::Overlapping,
            &SplitCounts::tiny(),
            1,
        );
        assert!(!split.train.is_empty());
        assert!(!split.support.is_empty());
        assert!(!split.test.is_empty());
        // Train pairs stay inside seen sources.
        for p in &split.train.pairs {
            assert!(seen.contains(&p.left.source.0) && seen.contains(&p.right.source.0));
        }
        // Test pairs are unlabeled and touch an unseen source.
        for p in &split.test.pairs {
            assert!(p.label.is_none());
            assert!(unseen.contains(&p.left.source.0) || unseen.contains(&p.right.source.0));
        }
    }

    #[test]
    fn split_structure_disjoint() {
        let (records, seen, unseen) = fixture();
        let split = make_mel_split(
            &records,
            "name",
            &seen,
            &unseen,
            Scenario::Disjoint,
            &SplitCounts::tiny(),
            1,
        );
        for p in &split.test.pairs {
            assert!(unseen.contains(&p.left.source.0) && unseen.contains(&p.right.source.0));
        }
        for p in &split.support.pairs {
            assert!(unseen.contains(&p.left.source.0) && unseen.contains(&p.right.source.0));
            assert!(p.label.is_some());
        }
    }

    #[test]
    fn split_deterministic() {
        let (records, seen, unseen) = fixture();
        let a = make_mel_split(
            &records,
            "name",
            &seen,
            &unseen,
            Scenario::Overlapping,
            &SplitCounts::tiny(),
            9,
        );
        let b = make_mel_split(
            &records,
            "name",
            &seen,
            &unseen,
            Scenario::Overlapping,
            &SplitCounts::tiny(),
            9,
        );
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.test.ground_truth(), b.test.ground_truth());
    }

    #[test]
    fn weak_labels_flip_expected_share() {
        let (records, seen, unseen) = fixture();
        let mut split = make_mel_split(
            &records,
            "name",
            &seen,
            &unseen,
            Scenario::Overlapping,
            &SplitCounts::tiny(),
            3,
        );
        let n = split.train.len();
        let flipped = weaken_labels(&mut split.train, 0.3, 5);
        assert!(flipped > 0 && flipped < n);
        let frac = flipped as f64 / n as f64;
        assert!((0.1..0.5).contains(&frac), "flip fraction {frac}");
    }

    #[test]
    fn weak_labels_zero_rate_is_noop() {
        let (records, seen, unseen) = fixture();
        let mut split = make_mel_split(
            &records,
            "name",
            &seen,
            &unseen,
            Scenario::Overlapping,
            &SplitCounts::tiny(),
            3,
        );
        assert_eq!(weaken_labels(&mut split.train, 0.0, 5), 0);
    }
}
