//! Data-challenge analysis reproducing the paper's appendix A.2
//! (Fig. 11: per-attribute non-missing pair percentages; Fig. 12: token
//! frequency distributions).

use adamel_schema::{Domain, Schema};
use adamel_text::{tokenize, TokenFrequency};

/// For each attribute, the fraction of pairs where *both* records have a
/// non-missing value — Fig. 11's metric.
pub fn non_missing_pair_fraction(domain: &Domain, schema: &Schema) -> Vec<(String, f64)> {
    let n = domain.len().max(1) as f64;
    schema
        .attributes()
        .iter()
        .map(|attr| {
            let complete = domain
                .pairs
                .iter()
                .filter(|p| !p.left.is_missing(attr) && !p.right.is_missing(attr))
                .count();
            (attr.clone(), complete as f64 / n)
        })
        .collect()
}

/// Attributes whose pairs are complete only in `target` (zero complete pairs
/// in `source`) — the paper's count of "new attributes" (C2).
pub fn target_only_attributes(source: &Domain, target: &Domain, schema: &Schema) -> Vec<String> {
    let src = non_missing_pair_fraction(source, schema);
    let tgt = non_missing_pair_fraction(target, schema);
    src.iter()
        .zip(&tgt)
        .filter(|((_, s), (_, t))| *s <= 0.0 && *t > 0.0)
        .map(|((a, _), _)| a.clone())
        .collect()
}

/// Top-`k` word tokens under one attribute across a domain's records —
/// Fig. 12's distribution.
pub fn top_tokens(domain: &Domain, attribute: &str, k: usize) -> Vec<(String, usize)> {
    let mut freq = TokenFrequency::new();
    for p in &domain.pairs {
        for r in [&p.left, &p.right] {
            if let Some(v) = r.get(attribute) {
                freq.add_tokens(&tokenize(v));
            }
        }
    }
    freq.top_k(k)
}

/// Average attribute length in word tokens over all non-missing values —
/// the paper's §5.1 dataset statistic (25.75 for Music-3K artist, 11.73 for
/// Monitor).
pub fn mean_attribute_tokens(domain: &Domain) -> f64 {
    let mut total = 0usize;
    let mut count = 0usize;
    for p in &domain.pairs {
        for r in [&p.left, &p.right] {
            for v in r.values.values() {
                total += tokenize(v).len();
                count += 1;
            }
        }
    }
    total as f64 / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamel_schema::{EntityPair, Record, SourceId};

    fn rec(kv: &[(&str, &str)]) -> Record {
        let mut r = Record::new(SourceId(0), 0);
        for (k, v) in kv {
            r.set(*k, *v);
        }
        r
    }

    fn schema() -> Schema {
        Schema::new(vec!["a".into(), "b".into()])
    }

    #[test]
    fn non_missing_fractions() {
        let d = Domain::new(vec![
            EntityPair::unlabeled(rec(&[("a", "x")]), rec(&[("a", "y")])),
            EntityPair::unlabeled(rec(&[("a", "x"), ("b", "z")]), rec(&[("b", "w")])),
        ]);
        let frac = non_missing_pair_fraction(&d, &schema());
        assert_eq!(frac[0], ("a".to_string(), 0.5));
        assert_eq!(frac[1], ("b".to_string(), 0.5));
    }

    #[test]
    fn target_only_detection() {
        let src = Domain::new(vec![EntityPair::unlabeled(rec(&[("a", "x")]), rec(&[("a", "y")]))]);
        let tgt = Domain::new(vec![EntityPair::unlabeled(
            rec(&[("a", "x"), ("b", "q")]),
            rec(&[("b", "r")]),
        )]);
        assert_eq!(target_only_attributes(&src, &tgt, &schema()), vec!["b".to_string()]);
    }

    #[test]
    fn top_tokens_counts_both_sides() {
        let d = Domain::new(vec![EntityPair::unlabeled(
            rec(&[("a", "lcd monitor")]),
            rec(&[("a", "lcd display")]),
        )]);
        let top = top_tokens(&d, "a", 2);
        assert_eq!(top[0], ("lcd".to_string(), 2));
    }

    #[test]
    fn mean_tokens() {
        let d = Domain::new(vec![EntityPair::unlabeled(
            rec(&[("a", "one two three")]),
            rec(&[("a", "one")]),
        )]);
        assert!((mean_attribute_tokens(&d) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_domain_is_safe() {
        let d = Domain::default();
        assert_eq!(mean_attribute_tokens(&d), 0.0);
        assert!(top_tokens(&d, "a", 3).is_empty());
    }
}
