//! The synthetic multi-source music world (Music-3K / Music-1M substitute).
//!
//! The paper's music corpora are proprietary Amazon crawls of 7 public music
//! websites with three entity types (artist, album, track) and 9 textual
//! attributes. This generator builds a "world" of canonical music entities
//! and renders each through per-website [`SourceStyle`]s, realizing the
//! paper's three data challenges:
//!
//! * **C1** — styles drop attribute values at configurable rates;
//! * **C2** — `gender` and `name_native_language` are only rendered by the
//!   unseen (target) websites, never by the three seen ones;
//! * **C3** — websites phrase categorical values differently (vocabulary
//!   rotation) and the target websites abbreviate artist names, exactly the
//!   paper's Fig. 1 example.

use crate::names;
use crate::style::{NameFormat, SourceStyle};
use adamel_schema::{Record, Schema, SourceId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three music entity types of the paper's corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityType {
    /// A musical artist (person or band).
    Artist,
    /// A physical album release.
    Album,
    /// A digital track, possibly a remix/cover of another track.
    Track,
}

impl EntityType {
    /// All types, in the paper's reporting order.
    pub const ALL: [EntityType; 3] = [EntityType::Artist, EntityType::Album, EntityType::Track];

    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            EntityType::Artist => "artist",
            EntityType::Album => "album",
            EntityType::Track => "track",
        }
    }
}

/// A canonical music entity before any website renders it.
#[derive(Debug, Clone)]
pub struct MusicEntity {
    /// Globally unique identity; pairs of renderings of the same id match.
    pub id: u64,
    /// Entity type.
    pub etype: EntityType,
    /// Canonical performer name.
    pub performer: String,
    /// Canonical title (artist: the performer name; album/track: the work).
    pub title: String,
    /// Parent album title (tracks), own title (albums), empty (artists).
    pub album: String,
    /// Genre term index into [`names::GENRES`].
    pub genre: usize,
    /// Country index into [`names::COUNTRIES`].
    pub country: usize,
    /// Performer gender ("m"/"f") — only unseen sources render it (C2).
    pub gender: &'static str,
    /// Version tag index for tracks (into [`names::VERSION_TAGS`]).
    pub version: Option<usize>,
}

/// Size knobs for the generated world.
#[derive(Debug, Clone)]
pub struct MusicConfig {
    /// Number of artists.
    pub num_artists: usize,
    /// Albums per artist.
    pub albums_per_artist: usize,
    /// Tracks per album.
    pub tracks_per_album: usize,
    /// Number of websites (the paper uses 7).
    pub num_sources: usize,
    /// Probability a given website carries a given entity.
    pub coverage: f64,
}

impl Default for MusicConfig {
    fn default() -> Self {
        Self {
            num_artists: 120,
            albums_per_artist: 2,
            tracks_per_album: 2,
            num_sources: 7,
            coverage: 0.85,
        }
    }
}

impl MusicConfig {
    /// A small world for unit tests.
    pub fn tiny() -> Self {
        Self { num_artists: 25, albums_per_artist: 1, tracks_per_album: 1, ..Self::default() }
    }
}

/// The generated world: canonical entities plus per-source rendered records.
pub struct MusicWorld {
    /// Canonical entities.
    pub entities: Vec<MusicEntity>,
    /// Per-source rendering styles, indexed by `SourceId.0`.
    pub styles: Vec<SourceStyle>,
    /// All rendered records.
    pub records: Vec<Record>,
    /// The aligned 9-attribute schema.
    schema: Schema,
}

/// The 9 music attributes (paper: "manual annotation is based on 9
/// attributes such as the artist name and album title").
pub const MUSIC_ATTRIBUTES: [&str; 9] = [
    "name",
    "main_performer",
    "name_native_language",
    "title",
    "album",
    "source",
    "genre",
    "country",
    "gender",
];

impl MusicWorld {
    /// Generates the world deterministically from a seed.
    pub fn generate(cfg: &MusicConfig, seed: u64) -> Self {
        assert!(cfg.num_sources >= 4, "music world needs >= 4 sources (3 seen + >=1 unseen)");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = Vec::new();
        let mut next_id = 0u64;

        for _ in 0..cfg.num_artists {
            let performer = names::person_name(&mut rng);
            let genre = rng.gen_range(0..names::GENRES.len());
            let country = rng.gen_range(0..names::COUNTRIES.len());
            let gender = if rng.gen_bool(0.5) { "m" } else { "f" };
            let artist_id = next_id;
            next_id += 1;
            entities.push(MusicEntity {
                id: artist_id,
                etype: EntityType::Artist,
                performer: performer.clone(),
                title: performer.clone(),
                album: String::new(),
                genre,
                country,
                gender,
                version: None,
            });
            for _ in 0..cfg.albums_per_artist {
                let album_title = names::title(&mut rng);
                let album_id = next_id;
                next_id += 1;
                entities.push(MusicEntity {
                    id: album_id,
                    etype: EntityType::Album,
                    performer: performer.clone(),
                    title: album_title.clone(),
                    album: album_title.clone(),
                    genre,
                    country,
                    gender,
                    version: None,
                });
                for _ in 0..cfg.tracks_per_album {
                    let track_title = names::title(&mut rng);
                    let version = rng.gen_range(0..names::VERSION_TAGS.len());
                    entities.push(MusicEntity {
                        id: next_id,
                        etype: EntityType::Track,
                        performer: performer.clone(),
                        title: track_title,
                        album: album_title.clone(),
                        genre,
                        country,
                        gender,
                        version: Some(version),
                    });
                    next_id += 1;
                }
            }
        }

        let styles = default_styles(cfg.num_sources);
        let mut records = Vec::new();
        for entity in &entities {
            for (sidx, style) in styles.iter().enumerate() {
                if rng.gen_bool(cfg.coverage) {
                    records.push(render(entity, SourceId(sidx as u32), style, &mut rng));
                }
            }
        }

        let schema = Schema::new(MUSIC_ATTRIBUTES.iter().map(|s| s.to_string()).collect());
        Self { entities, styles, records, schema }
    }

    /// The aligned music schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Entity type of a record (looked up through its ground-truth id).
    pub fn entity_type(&self, record: &Record) -> EntityType {
        self.entities[record.entity_id as usize].etype
    }

    /// Records of one entity type, optionally restricted to given sources.
    pub fn records_of(&self, etype: EntityType, sources: Option<&[u32]>) -> Vec<Record> {
        self.records
            .iter()
            .filter(|r| self.entities[r.entity_id as usize].etype == etype)
            .filter(|r| sources.is_none_or(|s| s.contains(&r.source.0)))
            .cloned()
            .collect()
    }
}

/// The default 7-website style roster: websites 0–2 (the seen sources) are
/// clean and complete; websites 3+ (unseen) abbreviate names, use native
/// spellings, drop more values, and are the only ones rendering `gender`
/// and `name_native_language`.
pub fn default_styles(num_sources: usize) -> Vec<SourceStyle> {
    let mut styles = Vec::with_capacity(num_sources);
    for i in 0..num_sources {
        let name = format!("website{}", i + 1);
        let style = if i < 3 {
            SourceStyle::clean(name)
                .never_rendering(&["gender", "name_native_language"])
                .with_vocab_shift(0)
                .with_missing("album", 0.15)
        } else {
            // Each unseen website renders names in its own format, so
            // cross-website positives in the disjoint scenario rarely share
            // name tokens — the paper's Fig. 1 abbreviation story.
            let fmt = match i % 4 {
                0 => NameFormat::Abbreviated,
                1 => NameFormat::Native,
                2 => NameFormat::LastFirst,
                _ => NameFormat::SurnameOnly,
            };
            SourceStyle::clean(name)
                .with_name_format(fmt)
                .with_default_missing(0.18)
                .with_missing("main_performer", 0.5)
                .with_missing("country", 0.45)
                .with_vocab_shift(i)
                .with_typo_rate(0.08)
                .with_filler_rate(0.45)
        };
        styles.push(style);
    }
    styles
}

/// Renders one canonical entity through a website style.
pub fn render(
    entity: &MusicEntity,
    source: SourceId,
    style: &SourceStyle,
    rng: &mut StdRng,
) -> Record {
    let mut r = Record::new(source, entity.id);

    let fmt_name = |name: &str| -> String {
        match style.name_format {
            NameFormat::Full => name.to_string(),
            NameFormat::Abbreviated => names::abbreviate(name),
            NameFormat::Native => names::nativeize(name),
            NameFormat::LastFirst => {
                let parts: Vec<&str> = name.split_whitespace().collect();
                match parts.split_last() {
                    Some((last, rest)) if !rest.is_empty() => {
                        format!("{}, {}", last, rest.join(" "))
                    }
                    _ => name.to_string(),
                }
            }
            NameFormat::SurnameOnly => name.split_whitespace().last().unwrap_or(name).to_string(),
        }
    };

    let genre_phrase = phrase_rotation(names::GENRES[entity.genre], style.vocab_shift);
    let version_suffix =
        entity.version.map(|v| format!(" ({})", names::VERSION_TAGS[v])).unwrap_or_default();
    let display_title = match entity.etype {
        EntityType::Artist => fmt_name(&entity.performer),
        EntityType::Album => entity.title.clone(),
        EntityType::Track => format!("{}{}", entity.title, version_suffix),
    };

    let set_attr = |record: &mut Record, attr: &str, value: String, rng: &mut StdRng| {
        if value.is_empty() {
            return;
        }
        if rng.gen_bool(style.missing_rate(attr).min(1.0)) {
            return;
        }
        let mut v = names::maybe_typo(&value, style.typo_rate, rng);
        if rng.gen_bool(style.filler_rate) {
            v.push_str(" official page");
        }
        record.set(attr, v);
    };

    set_attr(&mut r, "name", display_title.clone(), rng);
    set_attr(&mut r, "main_performer", fmt_name(&entity.performer), rng);
    // The native-language name derives from the *canonical* name, not the
    // site's display format: it is the attribute that stays informative in
    // the target domain while being absent from every seen source (C2).
    let canonical = match entity.etype {
        EntityType::Artist => entity.performer.clone(),
        _ => entity.title.clone(),
    };
    set_attr(&mut r, "name_native_language", names::nativeize(&canonical), rng);
    let title_value = match entity.etype {
        EntityType::Artist => String::new(),
        _ => display_title,
    };
    set_attr(&mut r, "title", title_value, rng);
    set_attr(&mut r, "album", entity.album.clone(), rng);
    set_attr(&mut r, "genre", genre_phrase, rng);
    set_attr(&mut r, "country", names::COUNTRIES[entity.country].to_string(), rng);
    set_attr(&mut r, "gender", entity.gender.to_string(), rng);
    // `source` is always present: every page knows its own site.
    r.set("source", style.name.clone());
    r
}

/// Phrases a categorical term differently per vocabulary shift — the C3
/// distribution rotation ("rock" / "rock music" / "music rock style" ...).
pub fn phrase_rotation(term: &str, shift: usize) -> String {
    match shift % 4 {
        0 => term.to_string(),
        1 => format!("{term} music"),
        2 => format!("music {term} style"),
        _ => format!("{term} genre"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> MusicWorld {
        MusicWorld::generate(&MusicConfig::tiny(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.entities.len(), b.entities.len());
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[0].values, b.records[0].values);
    }

    #[test]
    fn entity_counts_follow_config() {
        let cfg = MusicConfig {
            num_artists: 10,
            albums_per_artist: 2,
            tracks_per_album: 3,
            ..MusicConfig::default()
        };
        let w = MusicWorld::generate(&cfg, 1);
        let artists = w.entities.iter().filter(|e| e.etype == EntityType::Artist).count();
        let albums = w.entities.iter().filter(|e| e.etype == EntityType::Album).count();
        let tracks = w.entities.iter().filter(|e| e.etype == EntityType::Track).count();
        assert_eq!(artists, 10);
        assert_eq!(albums, 20);
        assert_eq!(tracks, 60);
    }

    #[test]
    fn seen_sources_never_render_gender_c2() {
        let w = world();
        for r in &w.records {
            if r.source.0 < 3 {
                assert!(r.is_missing("gender"), "seen source rendered gender: {:?}", r.values);
                assert!(r.is_missing("name_native_language"));
            }
        }
        // ...but some unseen-source record does carry gender.
        assert!(w.records.iter().any(|r| r.source.0 >= 3 && !r.is_missing("gender")));
    }

    #[test]
    fn unseen_sources_abbreviate_names_c3() {
        let w = world();
        // Website 5 (index 4, 4 % 4 == 0) abbreviates: its names contain
        // periods in raw form.
        let abbreviated = w
            .records
            .iter()
            .filter(|r| r.source.0 == 4)
            .filter_map(|r| r.get("main_performer"))
            .filter(|v| v.contains('.'))
            .count();
        assert!(abbreviated > 0, "website 5 should abbreviate performer names");
    }

    #[test]
    fn source_attribute_always_present() {
        let w = world();
        for r in &w.records {
            assert!(!r.is_missing("source"));
        }
    }

    #[test]
    fn schema_is_the_nine_music_attributes() {
        let w = world();
        assert_eq!(w.schema().len(), 9);
        assert!(w.schema().index_of("gender").is_some());
    }

    #[test]
    fn records_of_filters_by_type_and_source() {
        let w = world();
        let artists = w.records_of(EntityType::Artist, Some(&[0, 1, 2]));
        assert!(!artists.is_empty());
        for r in &artists {
            assert!(r.source.0 < 3);
            assert_eq!(w.entity_type(r), EntityType::Artist);
        }
    }

    #[test]
    fn phrase_rotation_varies() {
        let p0 = phrase_rotation("rock", 0);
        let p1 = phrase_rotation("rock", 1);
        let p2 = phrase_rotation("rock", 2);
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
        assert!(p1.contains("rock"));
    }
}
