//! With tracing off, the encoding-path instrumentation — the
//! `encode_pairs` span, the per-new-record `encode_record` op span, and the
//! `encode.cache.{hit,miss}` counters — must be inert: no spans entered,
//! nothing in the registry, bit-identical encodings. This test file runs in
//! its own process, so forcing the process-global trace level is safe.

use adamel_schema::{EntityPair, FeatureExtractor, FeatureMode, Record, Schema, SourceId};
use adamel_text::HashedFastText;

fn extractor() -> FeatureExtractor {
    let schema = Schema::new(vec!["artist".into(), "title".into()]);
    FeatureExtractor::new(schema, HashedFastText::new(16, 3), 20, FeatureMode::Both)
}

fn pairs() -> Vec<EntityPair> {
    let rec = |id: u64, artist: &str, title: &str| {
        let mut r = Record::new(SourceId(0), id);
        if !artist.is_empty() {
            r.set("artist", artist);
        }
        if !title.is_empty() {
            r.set("title", title);
        }
        r
    };
    vec![
        EntityPair::unlabeled(rec(0, "the beatles", "hey jude"), rec(1, "beatles", "hey jude")),
        EntityPair::unlabeled(rec(2, "", "let it be"), rec(0, "the beatles", "hey jude")),
        EntityPair::unlabeled(rec(3, "", ""), rec(3, "", "")),
    ]
}

#[test]
fn trace_off_records_nothing_and_changes_nothing() {
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Off));
    adamel_obs::report::reset();

    let before = adamel_obs::spans_entered();
    let ex = extractor();
    // Two batches: the first builds cache slots (would emit encode_record op
    // spans and hit/miss counters when tracing), the second hits warm.
    let off_cold = ex.encode_pairs(&pairs());
    let off_warm = ex.encode_pairs(&pairs());
    assert_eq!(adamel_obs::spans_entered(), before, "trace-off encoding must not enter spans");
    let json = adamel_obs::report::render_json();
    assert!(json.contains("\"spans\": {}"), "registry picked up spans: {json}");
    assert!(json.contains("\"counters\": {}"), "registry picked up counters: {json}");
    // The memory ledger obeys the same off-means-off contract: the encode
    // cache and vocab observers add zero gauges while tracing is off.
    assert!(json.contains("\"gauges\": {}"), "registry picked up mem gauges: {json}");
    assert!(adamel_obs::mem::snapshot().is_empty(), "mem ledger populated while off");

    // Observation must never change numeric results: the same encode under
    // full tracing (fresh extractor, cold cache again) produces identical
    // bits, and the instrumentation now actually fires.
    adamel_obs::set_forced(Some(adamel_obs::TraceLevel::Full));
    let ex = extractor();
    let full_cold = ex.encode_pairs(&pairs());
    let full_warm = ex.encode_pairs(&pairs());
    assert_eq!(off_cold.as_slice(), full_cold.as_slice());
    assert_eq!(off_warm.as_slice(), full_warm.as_slice());
    assert!(adamel_obs::spans_entered() > before, "full tracing should enter encode spans");
    let json = adamel_obs::report::render_json();
    assert!(json.contains("encode_pairs"), "missing encode_pairs span: {json}");
    assert!(json.contains("encode_record"), "missing encode_record op span: {json}");
    assert!(json.contains("encode.cache.hit"), "missing cache hit counter: {json}");
    assert!(json.contains("encode.cache.miss"), "missing cache miss counter: {json}");
    assert!(json.contains("encode.embed_hash"), "missing embed_hash instrumentation: {json}");
    // With tracing on, the cache-build boundary reports both footprints.
    for gauge in ["schema.encode_cache.bytes", "text.vocab.bytes"] {
        assert!(
            adamel_obs::mem::peak(gauge).unwrap_or(0) > 0,
            "{gauge} gauge missing under full tracing"
        );
    }

    adamel_obs::set_forced(None);
    adamel_obs::report::reset();
}
