//! Parallel batch encoding must be byte-identical to the sequential
//! per-pair path, for any batch size, thread count, and attribute content
//! (including empty and missing values).

use adamel_schema::{EntityPair, FeatureExtractor, FeatureMode, Record, Schema, SourceId};
use adamel_tensor::parallel;
use adamel_text::HashedFastText;
use proptest::prelude::*;

fn extractor(mode: FeatureMode) -> FeatureExtractor {
    let schema = Schema::new(vec!["artist".into(), "title".into()]);
    FeatureExtractor::new(schema, HashedFastText::new(24, 7), 20, mode)
}

fn pair(la: &str, lt: &str, ra: &str, rt: &str) -> EntityPair {
    let mut l = Record::new(SourceId(0), 0);
    let mut r = Record::new(SourceId(1), 1);
    // Empty strings model a missing attribute: don't set the field at all.
    if !la.is_empty() {
        l.set("artist", la);
    }
    if !lt.is_empty() {
        l.set("title", lt);
    }
    if !ra.is_empty() {
        r.set("artist", ra);
    }
    if !rt.is_empty() {
        r.set("title", rt);
    }
    EntityPair::unlabeled(l, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn encode_pairs_parallel_matches_sequential(
        raw in proptest::collection::vec(
            ("[a-z ]{0,16}", "[a-z ]{0,16}", "[a-z ]{0,16}", "[a-z ]{0,16}"),
            0..10,
        ),
        threads in 2usize..9,
    ) {
        let ex = extractor(FeatureMode::Both);
        let pairs: Vec<EntityPair> =
            raw.iter().map(|(la, lt, ra, rt)| pair(la, lt, ra, rt)).collect();

        let batch = parallel::with_threads(threads, || ex.encode_pairs(&pairs));
        prop_assert_eq!(batch.shape(), (pairs.len(), ex.num_features() * ex.dim()));
        for (i, p) in pairs.iter().enumerate() {
            let row = ex.encode_pair(p);
            prop_assert_eq!(batch.row(i), row.as_slice());
        }
    }

    #[test]
    fn encode_pair_into_matches_encode_pair(
        attrs in ("[a-z0-9 ]{0,24}", "[a-z0-9 ]{0,24}", "[a-z0-9 ]{0,24}", "[a-z0-9 ]{0,24}"),
    ) {
        for mode in [FeatureMode::Both, FeatureMode::SharedOnly, FeatureMode::UniqueOnly] {
            let ex = extractor(mode);
            let (la, lt, ra, rt) = &attrs;
            let p = pair(la, lt, ra, rt);
            let mut buf = vec![f32::NAN; ex.num_features() * ex.dim()];
            ex.encode_pair_into(&p, &mut buf);
            let row = ex.encode_pair(&p);
            prop_assert_eq!(&buf[..], row.as_slice());
        }
    }
}

/// Deterministic Fisher–Yates over an LCG stream: record-order permutations
/// without pulling a rand dependency into the test.
fn permuted_indices(n: usize, mut seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The record-level cache must be pure memoization: bit-identical to the
    // uncached reference for every mode, at every thread count, whether the
    // cache is cold or warm, and regardless of the order records were first
    // seen in (interning order must never leak into the numerics). The tiny
    // alphabet forces repeated tokens (multiset partitions) and duplicate
    // records (real cache hits) to occur.
    #[test]
    fn cached_encoding_bit_identical_to_uncached(
        raw in proptest::collection::vec(
            ("[a-c ]{0,12}", "[a-c ]{0,12}", "[a-c ]{0,12}", "[a-c ]{0,12}"),
            1..12,
        ),
        perm_seed in 0u64..u64::MAX,
    ) {
        let pairs: Vec<EntityPair> =
            raw.iter().map(|(la, lt, ra, rt)| pair(la, lt, ra, rt)).collect();
        for mode in [FeatureMode::Both, FeatureMode::SharedOnly, FeatureMode::UniqueOnly] {
            let ex = extractor(mode);
            let width = ex.num_features() * ex.dim();
            let reference: Vec<Vec<f32>> = pairs
                .iter()
                .map(|p| {
                    let mut buf = vec![f32::NAN; width];
                    ex.encode_pair_uncached(p, &mut buf);
                    buf
                })
                .collect();
            let bits_equal = |a: &[f32], b: &[f32]| {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            };

            for threads in [1usize, 2, 4, 8] {
                let ex = extractor(mode); // fresh extractor => cold cache
                let cold = parallel::with_threads(threads, || ex.encode_pairs(&pairs));
                let warm = parallel::with_threads(threads, || ex.encode_pairs(&pairs));
                for (i, want) in reference.iter().enumerate() {
                    prop_assert!(
                        bits_equal(cold.row(i), want),
                        "cold cache row {i} != uncached ({mode:?}, {threads} threads)"
                    );
                    prop_assert!(
                        bits_equal(warm.row(i), want),
                        "warm cache row {i} != uncached ({mode:?}, {threads} threads)"
                    );
                }
            }

            // First-seen interning order must not matter: encode a permuted
            // batch with a fresh cache and compare against the per-pair
            // reference computed in original order.
            let order = permuted_indices(pairs.len(), perm_seed);
            let shuffled: Vec<EntityPair> = order.iter().map(|&i| pairs[i].clone()).collect();
            let ex = extractor(mode);
            let out = ex.encode_pairs(&shuffled);
            for (row, &orig) in order.iter().enumerate() {
                prop_assert!(
                    bits_equal(out.row(row), &reference[orig]),
                    "permuted row {row} (pair {orig}) != uncached ({mode:?})"
                );
            }
        }
    }
}

#[test]
fn encode_pairs_empty_batch() {
    let ex = extractor(FeatureMode::Both);
    let batch = ex.encode_pairs(&[]);
    assert_eq!(batch.shape(), (0, ex.num_features() * ex.dim()));
}
