//! Parallel batch encoding must be byte-identical to the sequential
//! per-pair path, for any batch size, thread count, and attribute content
//! (including empty and missing values).

use adamel_schema::{EntityPair, FeatureExtractor, FeatureMode, Record, Schema, SourceId};
use adamel_tensor::parallel;
use adamel_text::HashedFastText;
use proptest::prelude::*;

fn extractor(mode: FeatureMode) -> FeatureExtractor {
    let schema = Schema::new(vec!["artist".into(), "title".into()]);
    FeatureExtractor::new(schema, HashedFastText::new(24, 7), 20, mode)
}

fn pair(la: &str, lt: &str, ra: &str, rt: &str) -> EntityPair {
    let mut l = Record::new(SourceId(0), 0);
    let mut r = Record::new(SourceId(1), 1);
    // Empty strings model a missing attribute: don't set the field at all.
    if !la.is_empty() {
        l.set("artist", la);
    }
    if !lt.is_empty() {
        l.set("title", lt);
    }
    if !ra.is_empty() {
        r.set("artist", ra);
    }
    if !rt.is_empty() {
        r.set("title", rt);
    }
    EntityPair::unlabeled(l, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn encode_pairs_parallel_matches_sequential(
        raw in proptest::collection::vec(
            ("[a-z ]{0,16}", "[a-z ]{0,16}", "[a-z ]{0,16}", "[a-z ]{0,16}"),
            0..10,
        ),
        threads in 2usize..9,
    ) {
        let ex = extractor(FeatureMode::Both);
        let pairs: Vec<EntityPair> =
            raw.iter().map(|(la, lt, ra, rt)| pair(la, lt, ra, rt)).collect();

        let batch = parallel::with_threads(threads, || ex.encode_pairs(&pairs));
        prop_assert_eq!(batch.shape(), (pairs.len(), ex.num_features() * ex.dim()));
        for (i, p) in pairs.iter().enumerate() {
            let row = ex.encode_pair(p);
            prop_assert_eq!(batch.row(i), row.as_slice());
        }
    }

    #[test]
    fn encode_pair_into_matches_encode_pair(
        attrs in ("[a-z0-9 ]{0,24}", "[a-z0-9 ]{0,24}", "[a-z0-9 ]{0,24}", "[a-z0-9 ]{0,24}"),
    ) {
        for mode in [FeatureMode::Both, FeatureMode::SharedOnly, FeatureMode::UniqueOnly] {
            let ex = extractor(mode);
            let (la, lt, ra, rt) = &attrs;
            let p = pair(la, lt, ra, rt);
            let mut buf = vec![f32::NAN; ex.num_features() * ex.dim()];
            ex.encode_pair_into(&p, &mut buf);
            let row = ex.encode_pair(&p);
            prop_assert_eq!(&buf[..], row.as_slice());
        }
    }
}

#[test]
fn encode_pairs_empty_batch() {
    let ex = extractor(FeatureMode::Both);
    let batch = ex.encode_pairs(&[]);
    assert_eq!(batch.shape(), (0, ex.num_features() * ex.dim()));
}
