//! Property-based tests of schema alignment and feature extraction.

use adamel_schema::{EntityPair, FeatureExtractor, FeatureMode, Record, Schema, SourceId};
use adamel_text::HashedFastText;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (0u32..6, 0u64..40, proptest::collection::btree_map("[a-c]", "[a-z ]{0,12}", 0..4)).prop_map(
        |(src, id, kv)| {
            let mut r = Record::new(SourceId(src), id);
            for (k, v) in kv {
                r.set(k, v);
            }
            r
        },
    )
}

proptest! {
    #[test]
    fn schema_union_is_commutative_and_idempotent(a in arb_record(), b in arb_record()) {
        let sa = Schema::union_of([&a]);
        let sb = Schema::union_of([&b]);
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        let u = sa.union(&sb);
        prop_assert_eq!(u.union(&sa), u.clone());
        prop_assert_eq!(u.union(&u), u);
    }

    #[test]
    fn project_without_partition_schema(a in arb_record(), b in arb_record()) {
        let schema = Schema::union_of([&a, &b]);
        prop_assume!(!schema.is_empty());
        let keep: Vec<&str> = schema.attributes().iter().take(1).map(|s| s.as_str()).collect();
        let top = schema.project(&keep);
        let rest = schema.without(&keep);
        prop_assert_eq!(top.len() + rest.len(), schema.len());
        for attr in top.attributes() {
            prop_assert!(rest.index_of(attr).is_none());
        }
    }

    #[test]
    fn encoded_width_matches_contract(a in arb_record(), b in arb_record()) {
        let schema = Schema::new(vec!["a".into(), "b".into(), "c".into()]);
        for mode in [FeatureMode::Both, FeatureMode::SharedOnly, FeatureMode::UniqueOnly] {
            let ex = FeatureExtractor::new(
                schema.clone(),
                HashedFastText::new(8, 1),
                20,
                mode,
            );
            let pair = EntityPair::unlabeled(a.clone(), b.clone());
            let row = ex.encode_pair(&pair);
            prop_assert_eq!(row.shape(), (1, ex.num_features() * 8));
            prop_assert!(row.is_finite());
            prop_assert_eq!(ex.feature_names().len(), ex.num_features());
        }
    }

    #[test]
    fn encoding_is_symmetric_in_shared_block(v in "[a-z]{1,10}") {
        // A pair with identical single-token values: swapping sides must not
        // change the encoding (sim/uni are set operations).
        let schema = Schema::new(vec!["a".into()]);
        let ex = FeatureExtractor::new(schema, HashedFastText::new(8, 1), 20, FeatureMode::Both);
        let mut l = Record::new(SourceId(0), 1);
        l.set("a", v.clone());
        let mut r = Record::new(SourceId(1), 1);
        r.set("a", v);
        let fwd = ex.encode_pair(&EntityPair::unlabeled(l.clone(), r.clone()));
        let rev = ex.encode_pair(&EntityPair::unlabeled(r, l));
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn ground_truth_consistency(a in arb_record(), b in arb_record()) {
        let pair = EntityPair::unlabeled(a.clone(), b.clone());
        prop_assert_eq!(pair.ground_truth(), a.entity_id == b.entity_id);
    }
}
