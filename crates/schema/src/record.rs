//! Entity records, data sources, and schemas.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a data source (a website or database the record was
/// sampled from) — the paper's `r*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

/// An entity record: a bag of textual attribute values collected from one
/// data source.
///
/// `entity_id` is the generator's ground-truth identity used to derive
/// labels; models never see it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// The data source this record was crawled from.
    pub source: SourceId,
    /// Ground-truth entity identity (label derivation only).
    pub entity_id: u64,
    /// Attribute name → raw textual value. Missing attributes are simply
    /// absent; empty strings are treated as missing too (challenge C1).
    pub values: BTreeMap<String, String>,
}

impl Record {
    /// Creates a record with no attribute values.
    pub fn new(source: SourceId, entity_id: u64) -> Self {
        Self { source, entity_id, values: BTreeMap::new() }
    }

    /// Sets an attribute value, dropping it if empty after trimming.
    pub fn set(&mut self, attribute: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let value = value.into();
        if !value.trim().is_empty() {
            self.values.insert(attribute.into(), value);
        }
        self
    }

    /// The raw value of an attribute, if present and non-empty.
    pub fn get(&self, attribute: &str) -> Option<&str> {
        self.values.get(attribute).map(String::as_str).filter(|v| !v.trim().is_empty())
    }

    /// True when the attribute is missing or empty (challenge C1).
    pub fn is_missing(&self, attribute: &str) -> bool {
        self.get(attribute).is_none()
    }

    /// Attribute names present on this record.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

/// An ordered attribute schema — the paper's `A`.
///
/// Ordering is canonical (sorted) so feature indices are stable across runs
/// and data sources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Builds a schema from attribute names, sorting and deduplicating.
    pub fn new(mut attributes: Vec<String>) -> Self {
        attributes.sort();
        attributes.dedup();
        Self { attributes }
    }

    /// The aligned union ontology of every record's attributes — the paper's
    /// `A ∪ A'` alignment that gives source and target domains a shared
    /// feature space (§4.1).
    pub fn union_of<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut attrs: Vec<String> = Vec::new();
        for r in records {
            attrs.extend(r.attributes().map(str::to_owned));
        }
        Self::new(attrs)
    }

    /// Merges two schemas into their union.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut attrs = self.attributes.clone();
        attrs.extend(other.attributes.iter().cloned());
        Schema::new(attrs)
    }

    /// Restriction to a subset of attributes (Table 5's top-k experiments);
    /// unknown names are ignored.
    pub fn project(&self, keep: &[&str]) -> Schema {
        Schema::new(
            self.attributes.iter().filter(|a| keep.contains(&a.as_str())).cloned().collect(),
        )
    }

    /// Restriction to every attribute *not* in `drop` (Table 5's "other
    /// attributes" column).
    pub fn without(&self, drop: &[&str]) -> Schema {
        Schema::new(
            self.attributes.iter().filter(|a| !drop.contains(&a.as_str())).cloned().collect(),
        )
    }

    /// Attribute names in canonical order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes `|A|`.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True for the empty schema.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of an attribute in canonical order.
    pub fn index_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.binary_search_by(|a| a.as_str().cmp(attribute)).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: u32, id: u64, kv: &[(&str, &str)]) -> Record {
        let mut r = Record::new(SourceId(source), id);
        for (k, v) in kv {
            r.set(*k, *v);
        }
        r
    }

    #[test]
    fn set_get_missing() {
        let r = record(1, 10, &[("title", "Hey Jude"), ("artist", "")]);
        assert_eq!(r.get("title"), Some("Hey Jude"));
        assert!(r.is_missing("artist"));
        assert!(r.is_missing("gender"));
    }

    #[test]
    fn schema_union_is_sorted_and_deduped() {
        let a = record(1, 1, &[("title", "x"), ("artist", "y")]);
        let b = record(2, 2, &[("title", "z"), ("gender", "f")]);
        let s = Schema::union_of([&a, &b]);
        assert_eq!(s.attributes(), &["artist", "gender", "title"]);
        assert_eq!(s.index_of("gender"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn union_alignment_is_idempotent() {
        let a = record(1, 1, &[("title", "x")]);
        let s1 = Schema::union_of([&a]);
        let s2 = s1.union(&s1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn project_and_without_partition() {
        let s = Schema::new(vec!["a".into(), "b".into(), "c".into()]);
        let top = s.project(&["a", "c"]);
        let rest = s.without(&["a", "c"]);
        assert_eq!(top.attributes(), &["a", "c"]);
        assert_eq!(rest.attributes(), &["b"]);
        assert_eq!(top.len() + rest.len(), s.len());
    }

    #[test]
    fn empty_value_is_dropped_on_set() {
        let mut r = Record::new(SourceId(0), 0);
        r.set("x", "   ");
        assert!(r.is_missing("x"));
        assert_eq!(r.attributes().count(), 0);
    }
}
