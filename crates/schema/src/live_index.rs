//! An **incremental** blocking index for long-running services.
//!
//! [`BlockingIndex`](crate::blocking::BlockingIndex) is batch-built over a
//! borrowed record slice — the right shape for a one-shot `Linker::link`
//! call, the wrong shape for a daemon whose corpus mutates between
//! requests. [`LiveIndex`] owns its records, keyed by `(source,
//! entity_id)`, and maintains token posting lists under upsert/delete so
//! indexing cost is paid per *mutation*, not per *request*.
//!
//! ## Equivalence contract
//!
//! The candidate ranking is defined to match `BlockingIndex` exactly:
//! records ranked by (shared-token count descending, key ascending), capped
//! at `limit`. Because [`snapshot`](LiveIndex::snapshot) yields records in
//! key order, a `BlockingIndex` built over that snapshot ranks by position
//! ascending on ties — which *is* key order — so
//! [`candidates`](LiveIndex::candidates) agrees with
//! `BlockingIndex::candidates_for` on every query (property-tested below).
//! This is what lets `adamel-serve` score batches bit-identically to the
//! offline `Linker::link` path.

use crate::record::{Record, SourceId};
use adamel_text::tokenize;
use std::collections::{BTreeMap, BTreeSet};

/// The identity of a record inside a [`LiveIndex`]: source id + entity id.
pub type RecordKey = (SourceId, u64);

/// An owned, incrementally-maintained token blocking index.
#[derive(Debug, Clone)]
pub struct LiveIndex {
    block_attrs: Vec<String>,
    records: BTreeMap<RecordKey, Record>,
    by_token: BTreeMap<String, BTreeSet<RecordKey>>,
    /// Monotonic mutation counter; callers cache snapshots against it.
    generation: u64,
}

impl LiveIndex {
    /// An empty index blocking on the word tokens of `block_attrs`.
    pub fn new(block_attrs: Vec<String>) -> Self {
        Self { block_attrs, records: BTreeMap::new(), by_token: BTreeMap::new(), generation: 0 }
    }

    /// The blocking attributes this index tokenizes.
    pub fn block_attrs(&self) -> &[String] {
        &self.block_attrs
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct blocking tokens with at least one posting.
    pub fn num_blocks(&self) -> usize {
        self.by_token.len()
    }

    /// Monotonic mutation counter: bumped by every upsert/delete that
    /// changes the index, so callers can cache derived state (snapshots,
    /// position maps) and invalidate it cheaply.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Distinct blocking tokens of one record, in first-seen order
    /// (matching `BlockingIndex::new`'s per-record token walk).
    fn tokens_of(&self, r: &Record) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for attr in &self.block_attrs {
            if let Some(v) = r.get(attr) {
                for t in tokenize(v) {
                    if seen.insert(t.clone()) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    fn unindex(&mut self, key: RecordKey, record: &Record) {
        for t in self.tokens_of(record) {
            if let Some(postings) = self.by_token.get_mut(&t) {
                postings.remove(&key);
                if postings.is_empty() {
                    self.by_token.remove(&t);
                }
            }
        }
    }

    /// Inserts or replaces the record with the same `(source, entity_id)`
    /// key. Returns `true` when an existing record was replaced.
    pub fn upsert(&mut self, record: Record) -> bool {
        let key = (record.source, record.entity_id);
        let replaced = if let Some(old) = self.records.remove(&key) {
            self.unindex(key, &old);
            true
        } else {
            false
        };
        for t in self.tokens_of(&record) {
            self.by_token.entry(t).or_default().insert(key);
        }
        self.records.insert(key, record);
        self.generation += 1;
        replaced
    }

    /// Removes the record with the given key. Returns `true` when a record
    /// was actually removed.
    pub fn delete(&mut self, source: SourceId, entity_id: u64) -> bool {
        let key = (source, entity_id);
        match self.records.remove(&key) {
            Some(old) => {
                self.unindex(key, &old);
                self.generation += 1;
                true
            }
            None => false,
        }
    }

    /// The indexed record with the given key, if any.
    pub fn get(&self, source: SourceId, entity_id: u64) -> Option<&Record> {
        self.records.get(&(source, entity_id))
    }

    /// Clones the corpus in key order — the deterministic record order every
    /// position-based consumer (candidate positions, `Linker` match
    /// indices) is defined against.
    pub fn snapshot(&self) -> Vec<Record> {
        self.records.values().cloned().collect()
    }

    /// Keys in key order, aligned with [`snapshot`](Self::snapshot):
    /// `keys()[i]` identifies `snapshot()[i]`.
    pub fn keys(&self) -> Vec<RecordKey> {
        self.records.keys().copied().collect()
    }

    /// Keys of records sharing at least one blocking token with `query`,
    /// ranked by (shared-token count descending, key ascending) and capped
    /// at `limit` — the same ranking `BlockingIndex::candidates_for`
    /// produces over the key-order snapshot.
    pub fn candidates(&self, query: &Record, limit: usize) -> Vec<RecordKey> {
        let mut counts: BTreeMap<RecordKey, usize> = BTreeMap::new();
        for t in self.tokens_of(query) {
            if let Some(postings) = self.by_token.get(&t) {
                for &k in postings {
                    *counts.entry(k).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(RecordKey, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().take(limit).map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingIndex;
    use rand::{Rng, SeedableRng};

    fn rec(source: u32, id: u64, title: &str) -> Record {
        let mut r = Record::new(SourceId(source), id);
        r.set("title", title);
        r
    }

    fn idx(records: &[Record]) -> LiveIndex {
        let mut li = LiveIndex::new(vec!["title".into()]);
        for r in records {
            li.upsert(r.clone());
        }
        li
    }

    #[test]
    fn upsert_replaces_and_reindexes() {
        let mut li = idx(&[rec(0, 1, "hey jude")]);
        assert!(!li.candidates(&rec(9, 9, "jude"), 10).is_empty());
        assert!(li.upsert(rec(0, 1, "yellow submarine")), "same key must replace");
        assert!(li.candidates(&rec(9, 9, "jude"), 10).is_empty(), "old tokens must be gone");
        assert_eq!(li.candidates(&rec(9, 9, "yellow"), 10), vec![(SourceId(0), 1)]);
        assert_eq!(li.len(), 1);
    }

    #[test]
    fn delete_removes_postings() {
        let mut li = idx(&[rec(0, 1, "alpha beta"), rec(0, 2, "alpha gamma")]);
        assert!(li.delete(SourceId(0), 1));
        assert!(!li.delete(SourceId(0), 1), "double delete is a no-op");
        assert_eq!(li.candidates(&rec(9, 9, "alpha"), 10), vec![(SourceId(0), 2)]);
        assert_eq!(li.num_blocks(), 2, "beta posting list must be dropped entirely");
    }

    #[test]
    fn generation_tracks_mutations() {
        let mut li = LiveIndex::new(vec!["title".into()]);
        let g0 = li.generation();
        li.upsert(rec(0, 1, "a"));
        assert!(li.generation() > g0);
        let g1 = li.generation();
        li.delete(SourceId(0), 1);
        assert!(li.generation() > g1);
        let g2 = li.generation();
        li.delete(SourceId(0), 1); // miss: no change
        assert_eq!(li.generation(), g2);
    }

    #[test]
    fn snapshot_is_key_ordered_and_aligned_with_keys() {
        let li = idx(&[rec(2, 5, "c"), rec(0, 9, "a"), rec(2, 1, "b")]);
        let keys = li.keys();
        assert_eq!(keys, vec![(SourceId(0), 9), (SourceId(2), 1), (SourceId(2), 5)]);
        let snap = li.snapshot();
        for (k, r) in keys.iter().zip(snap.iter()) {
            assert_eq!(*k, (r.source, r.entity_id));
        }
    }

    /// The contract the serving path relies on: LiveIndex candidates over a
    /// mutating corpus agree with a fresh BlockingIndex over the snapshot,
    /// for every query, after every mutation.
    #[test]
    fn candidates_match_blocking_index_under_churn() {
        let vocab = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"];
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let title = |rng: &mut rand::rngs::StdRng| {
            let n = rng.gen_range(1usize..4);
            (0..n).map(|_| vocab[rng.gen_range(0usize..vocab.len())]).collect::<Vec<_>>().join(" ")
        };
        let mut li = LiveIndex::new(vec!["title".into()]);
        for step in 0..200u64 {
            let source = rng.gen_range(0u32..3);
            let id = rng.gen_range(0u64..30);
            if rng.gen_range(0u32..4) == 0 {
                li.delete(SourceId(source), id);
            } else {
                let t = title(&mut rng);
                li.upsert(rec(source, id, &t));
            }
            if step % 20 != 0 {
                continue;
            }
            let snap = li.snapshot();
            let keys = li.keys();
            let bi = BlockingIndex::new(&snap, &["title"]);
            for _ in 0..5 {
                let qt = title(&mut rng);
                let q = rec(9, 999, &qt);
                for limit in [1, 3, 100] {
                    let live = li.candidates(&q, limit);
                    let batch: Vec<RecordKey> = bi
                        .candidates_for(&q, &["title"], limit)
                        .into_iter()
                        .filter_map(|i| keys.get(i).copied())
                        .collect();
                    assert_eq!(live, batch, "query `{qt}` limit {limit} diverged");
                }
            }
        }
    }
}
