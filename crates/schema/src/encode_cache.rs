//! Record-level encoding cache behind [`crate::FeatureExtractor`].
//!
//! In candidate generation each *record* appears in many pairs, yet the
//! uncached feature path re-tokenizes, re-hashes, and re-embeds every
//! attribute per pair (Eq. 2–3). This module memoizes all per-record work
//! once — the cropped token-id list per attribute (via
//! [`adamel_text::TokenVocab`] interning) and the per-attribute summed
//! token-embedding precursor — so pair encoding reduces to a multiset
//! partition over two short `u32` lists plus adds/copies of cached embedding
//! rows. No `String` is allocated and no n-gram is hashed on the pair path.
//!
//! ## Bit-exactness contract
//!
//! The cached path must produce the *identical bits* of
//! `shared_and_unique` + `embed_tokens_into` (the uncached reference kept as
//! [`crate::FeatureExtractor::encode_pair_uncached`]). f32 addition is not
//! associative, so this holds only because every accumulation replays the
//! reference's exact operation order:
//!
//! * cached token rows are bit-identical `embed_token` outputs (interning is
//!   pure memoization);
//! * the partition replays `shared_and_unique`'s count semantics: left
//!   tokens in order (matched → shared, else unique), then leftover right
//!   tokens in order — so tokens are *added in the same sequence*;
//! * the per-attribute sum precursor is the fold of that attribute's token
//!   rows in list order, which equals the reference sum whenever a feature's
//!   token multiset is exactly one side's full list (identical values,
//!   one-side-missing) — the only cases where the precursor is used;
//! * an empty feature copies the embedder's fixed missing vector, exactly as
//!   `embed_tokens_into(&[])` does.
//!
//! ## Keying and invalidation
//!
//! Slots are keyed by a 128-bit FNV content hash over the record's values of
//! the extractor's schema attributes (in canonical order, `0xFF`-separated —
//! a byte UTF-8 never produces). Records are value-bags, so identical
//! content means identical encodings; clones and re-generated records share
//! slots. The cache never invalidates entries (records are immutable once
//! built); `EncodeCache::clear` drops everything, which
//! `FeatureExtractor::clear_cache` exposes to bound memory between corpora.
//!
//! ## Memory bounds
//!
//! Per distinct record: `|A|` ranges + the token-id arena (≤ `|A| * crop`
//! u32s) + `|A| * D` f32 sum precursors; plus `D` f32 per distinct token in
//! the vocabulary. For paper dims (13 attributes, D=300, crop=20) that is
//! ~16 KiB per distinct record — the same order as one encoded pair row.

use crate::features::FeatureMode;
use crate::record::{Record, Schema};
use adamel_tensor::parallel;
use adamel_text::{tokenize_cropped, HashedFastText, TokenId, TokenVocab};
use std::cell::RefCell;
use std::collections::HashMap;

/// Aggregate cache statistics, reported by
/// [`crate::FeatureExtractor::cache_stats`] and the `perfjson` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeCacheStats {
    /// Distinct records (by content key) currently cached.
    pub distinct_records: u64,
    /// Distinct token strings interned in the vocabulary.
    pub interned_tokens: u64,
    /// Record lookups that found an existing slot.
    pub hits: u64,
    /// Record lookups that built a new slot.
    pub misses: u64,
}

impl EncodeCacheStats {
    /// Hits over total lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

thread_local! {
    /// Per-thread multiset-partition scratch: `(token id, remaining count)`
    /// pairs for the right-hand token list. Lists are `crop`-bounded, so a
    /// linear-scan association list beats hashing and allocates only once
    /// per worker thread.
    static PARTITION_SCRATCH: RefCell<Vec<(u32, u32)>> = const { RefCell::new(Vec::new()) };
}

/// FNV-1a 64-bit over a byte stream, seeded; used for record content keys.
fn fnv1a(seed: u64, chunks: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in chunks {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The memoized per-record encodings plus the interning vocabulary.
#[derive(Debug, Clone)]
pub(crate) struct EncodeCache {
    vocab: TokenVocab,
    crop: usize,
    attrs: usize,
    /// Record content key → slot index. Lookup only, never iterated.
    slots: HashMap<u128, u32>,
    /// `(offset, len)` into `ids` for `slot * attrs + attr`.
    ranges: Vec<(u32, u32)>,
    /// Token-id arena: cropped per-attribute token lists, in order.
    ids: Vec<u32>,
    /// Per `(slot, attr)` sum precursor (`dim` f32 each): fold of the token
    /// rows in list order, or the missing vector for an empty list.
    sums: Vec<f32>,
    hits: u64,
    misses: u64,
}

impl EncodeCache {
    pub(crate) fn new(embedder: HashedFastText, crop: usize, attrs: usize) -> Self {
        Self {
            vocab: TokenVocab::new(embedder),
            crop,
            attrs,
            slots: HashMap::new(),
            ranges: Vec::new(),
            ids: Vec::new(),
            sums: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub(crate) fn stats(&self) -> EncodeCacheStats {
        EncodeCacheStats {
            distinct_records: self.slots.len() as u64,
            interned_tokens: self.vocab.len() as u64,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Drops every memoized record, the vocabulary, and the hit/miss
    /// counters — a full cold start.
    pub(crate) fn clear(&mut self) {
        let embedder = self.vocab.embedder().clone();
        *self = EncodeCache::new(embedder, self.crop, self.attrs);
        self.observe_mem();
    }

    /// Reports the cache's absolute logical footprint into the memory
    /// ledger: the arena/table capacities under `schema.encode_cache.bytes`
    /// and the interning vocabulary under `text.vocab.bytes`. One relaxed
    /// atomic load when tracing is off.
    fn observe_mem(&self) {
        if !adamel_obs::enabled() {
            return;
        }
        let bytes = self.ids.capacity() * 4
            + self.ranges.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.sums.capacity() * 4
            + self.slots.capacity() * std::mem::size_of::<(u128, u32)>();
        adamel_obs::mem::observe("schema.encode_cache.bytes", bytes as u64);
        adamel_obs::mem::observe("text.vocab.bytes", self.vocab.approx_bytes());
    }

    /// Content key of `record` under `schema`: values in canonical attribute
    /// order, `0xFF`-separated, hashed twice with independent seeds into a
    /// 128-bit key (collision odds are negligible at any realistic corpus).
    fn record_key(schema: &Schema, record: &Record) -> u128 {
        let bytes = |_: ()| {
            schema.attributes().iter().flat_map(|attr| {
                record
                    .get(attr)
                    .unwrap_or("")
                    .as_bytes()
                    .iter()
                    .copied()
                    .chain(std::iter::once(0xFFu8))
            })
        };
        let h1 = fnv1a(0, bytes(()));
        let h2 = fnv1a(0x9e37_79b9_7f4a_7c15, bytes(()));
        (u128::from(h1) << 64) | u128::from(h2)
    }

    /// Returns the slot of every record, building slots for records not yet
    /// cached. Building runs in phases so the expensive parts parallelize
    /// while id assignment stays deterministic:
    ///
    /// 1. tokenize new records in parallel (pure per-record work);
    /// 2. intern tokens and lay out id ranges serially, in record order, so
    ///    vocabulary ids never depend on the thread count;
    /// 3. embed new tokens in parallel (one independent row each);
    /// 4. fold the per-attribute sum precursors in parallel (one independent
    ///    `(slot, attr)` row each).
    ///
    /// Output bits never depend on id *values*, so even insertion-order
    /// differences between runs cannot change encodings.
    pub(crate) fn ensure_slots(&mut self, schema: &Schema, records: &[&Record]) -> Vec<u32> {
        debug_assert_eq!(schema.len(), self.attrs, "ensure_slots: schema width drifted");
        let first_new_slot = (self.ranges.len() / self.attrs.max(1)) as u32;
        let mut out = Vec::with_capacity(records.len());
        let mut new_records: Vec<&Record> = Vec::new();
        for &record in records {
            let key = Self::record_key(schema, record);
            match self.slots.get(&key) {
                Some(&slot) => {
                    self.hits += 1;
                    out.push(slot);
                }
                None => {
                    let slot = first_new_slot + new_records.len() as u32;
                    self.slots.insert(key, slot);
                    self.misses += 1;
                    new_records.push(record);
                    out.push(slot);
                }
            }
        }
        if !records.is_empty() {
            adamel_obs::trace_count!(
                "encode.cache.hit",
                (records.len() - new_records.len()) as u64
            );
            adamel_obs::trace_count!("encode.cache.miss", new_records.len() as u64);
        }
        if new_records.is_empty() {
            return out;
        }

        // Phase 1: tokenize (the only remaining String work) in parallel.
        let crop = self.crop;
        let attrs: Vec<&str> = schema.attributes().iter().map(String::as_str).collect();
        let tokenized: Vec<Vec<Vec<String>>> =
            parallel::parallel_map_collect(new_records.len(), attrs.len() * 512, |i| {
                attrs
                    .iter()
                    .map(|attr| {
                        new_records[i]
                            .get(attr)
                            .map(|v| tokenize_cropped(v, crop))
                            .unwrap_or_default()
                    })
                    .collect()
            });

        // Phase 2: intern + range layout, serial and order-deterministic.
        for record_tokens in &tokenized {
            adamel_obs::trace_op!("encode_record");
            for attr_tokens in record_tokens {
                let offset = self.ids.len() as u32;
                for token in attr_tokens {
                    self.ids.push(self.vocab.intern_deferred(token).0);
                }
                self.ranges.push((offset, attr_tokens.len() as u32));
            }
        }

        // Phase 3: embed newly interned tokens, one parallel row each.
        self.vocab.compute_pending();

        // Phase 4: fold the per-attribute sum precursors for the new slots.
        let dim = self.vocab.dim();
        let sums_start = self.sums.len();
        self.sums.resize(sums_start + new_records.len() * self.attrs * dim, 0.0);
        let first_range = first_new_slot as usize * self.attrs;
        let (vocab, ids, ranges) = (&self.vocab, &self.ids, &self.ranges);
        parallel::parallel_for_rows(&mut self.sums[sums_start..], dim, dim * 32, |i, row| {
            let (offset, len) = ranges[first_range + i];
            if len == 0 {
                row.copy_from_slice(vocab.missing());
            } else {
                row.fill(0.0);
                for &id in &ids[offset as usize..offset as usize + len as usize] {
                    for (acc, &v) in row.iter_mut().zip(vocab.embedding(TokenId(id))) {
                        *acc += v;
                    }
                }
            }
        });
        self.observe_mem();
        out
    }

    fn attr_ids(&self, slot: u32, attr: usize) -> &[u32] {
        let (offset, len) = self.ranges[slot as usize * self.attrs + attr];
        &self.ids[offset as usize..offset as usize + len as usize]
    }

    fn attr_sum(&self, slot: u32, attr: usize) -> &[f32] {
        let dim = self.vocab.dim();
        let row = slot as usize * self.attrs + attr;
        &self.sums[row * dim..(row + 1) * dim]
    }

    /// Encodes the pair `(left_slot, right_slot)` into `out` (one `dim`-wide
    /// block per feature in schema order) — the allocation-free hot path.
    pub(crate) fn encode_into(&self, left: u32, right: u32, mode: FeatureMode, out: &mut [f32]) {
        let dim = self.vocab.dim();
        let per = mode.per_attribute();
        debug_assert_eq!(out.len(), self.attrs * per * dim, "encode_into: buffer width mismatch");
        for attr in 0..self.attrs {
            let base = attr * per * dim;
            let (la, lb) = (self.attr_ids(left, attr), self.attr_ids(right, attr));
            let (sum_l, sum_r) = (self.attr_sum(left, attr), self.attr_sum(right, attr));
            match mode {
                FeatureMode::Both => {
                    let (sim, uni) = out[base..base + 2 * dim].split_at_mut(dim);
                    self.encode_attr(la, lb, sum_l, sum_r, Some(sim), Some(uni));
                }
                FeatureMode::SharedOnly => {
                    let sim = &mut out[base..base + dim];
                    self.encode_attr(la, lb, sum_l, sum_r, Some(sim), None);
                }
                FeatureMode::UniqueOnly => {
                    let uni = &mut out[base..base + dim];
                    self.encode_attr(la, lb, sum_l, sum_r, None, Some(uni));
                }
            }
        }
    }

    /// One attribute's `sim(A)` / `uni(A)` blocks from two cached token-id
    /// lists. An empty feature — a missing attribute on both sides (C1/C2)
    /// or a present-but-contrastively-empty token set — is written as the
    /// embedder's fixed non-zero missing vector, right here where the block
    /// is emitted, so every feature stays dense and its parameters receive
    /// gradient.
    fn encode_attr(
        &self,
        la: &[u32],
        lb: &[u32],
        sum_l: &[f32],
        sum_r: &[f32],
        mut sim: Option<&mut [f32]>,
        mut uni: Option<&mut [f32]>,
    ) {
        // Fast path: identical cropped token lists (covers both-missing).
        // shared == the full left list in order, unique is empty.
        if la == lb {
            if let Some(sim) = sim.as_deref_mut() {
                sim.copy_from_slice(sum_l);
            }
            if let Some(uni) = uni.as_deref_mut() {
                uni.copy_from_slice(self.vocab.missing());
            }
            return;
        }
        // Fast path: one side empty — nothing shared, unique == the other
        // side's full list in order, i.e. its cached sum precursor.
        if la.is_empty() || lb.is_empty() {
            if let Some(sim) = sim.as_deref_mut() {
                sim.copy_from_slice(self.vocab.missing());
            }
            if let Some(uni) = uni.as_deref_mut() {
                uni.copy_from_slice(if la.is_empty() { sum_r } else { sum_l });
            }
            return;
        }
        // General path: replay shared_and_unique's multiset partition on
        // ids, accumulating cached rows directly into the output blocks in
        // the reference's token order (left in order: matched → sim, else
        // uni; then unmatched right in order → uni).
        if let Some(sim) = sim.as_deref_mut() {
            sim.fill(0.0);
        }
        if let Some(uni) = uni.as_deref_mut() {
            uni.fill(0.0);
        }
        let (mut n_sim, mut n_uni) = (0usize, 0usize);
        PARTITION_SCRATCH.with(|scratch| {
            let mut counts = scratch.borrow_mut();
            counts.clear();
            for &t in lb {
                match counts.iter_mut().find(|e| e.0 == t) {
                    Some(e) => e.1 += 1,
                    None => counts.push((t, 1)),
                }
            }
            for &t in la {
                let row = self.vocab.embedding(TokenId(t));
                match counts.iter_mut().find(|e| e.0 == t && e.1 > 0) {
                    Some(e) => {
                        e.1 -= 1;
                        if let Some(sim) = sim.as_deref_mut() {
                            for (acc, &v) in sim.iter_mut().zip(row) {
                                *acc += v;
                            }
                        }
                        n_sim += 1;
                    }
                    None => {
                        if let Some(uni) = uni.as_deref_mut() {
                            for (acc, &v) in uni.iter_mut().zip(row) {
                                *acc += v;
                            }
                        }
                        n_uni += 1;
                    }
                }
            }
            for &t in lb {
                if let Some(e) = counts.iter_mut().find(|e| e.0 == t && e.1 > 0) {
                    e.1 -= 1;
                    if let Some(uni) = uni.as_deref_mut() {
                        let row = self.vocab.embedding(TokenId(t));
                        for (acc, &v) in uni.iter_mut().zip(row) {
                            *acc += v;
                        }
                    }
                    n_uni += 1;
                }
            }
        });
        if n_sim == 0 {
            if let Some(sim) = sim {
                sim.copy_from_slice(self.vocab.missing());
            }
        }
        if n_uni == 0 {
            if let Some(uni) = uni {
                uni.copy_from_slice(self.vocab.missing());
            }
        }
    }
}
