//! # adamel-schema
//!
//! The data model of the AdaMEL reproduction: entity [`Record`]s collected
//! from [`SourceId`]s, canonical attribute [`Schema`]s with union-ontology
//! alignment (the prerequisite for domain adaptation, paper §4.1),
//! labeled/unlabeled [`EntityPair`]s grouped into [`Domain`]s (`D_S`, `D_T`,
//! and the support set `S_U`), and the contrastive relational
//! [`FeatureExtractor`] implementing Eq. 2–3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod encode_cache;
pub mod features;
pub mod live_index;
pub mod pair;
pub mod record;

pub use blocking::BlockingIndex;
pub use encode_cache::EncodeCacheStats;
pub use features::{FeatureExtractor, FeatureMode};
pub use live_index::{LiveIndex, RecordKey};
pub use pair::{Domain, EntityPair};
pub use record::{Record, Schema, SourceId};
