//! Contrastive relational feature extraction (paper §4.2, Eq. 2–3).
//!
//! Each attribute `A` of a pair `(r, r')` is parsed into two features:
//! `sim(A)` — the word tokens shared by both records — and `uni(A)` — the
//! tokens appearing in exactly one. Token embeddings are summed per feature
//! and the missing-value case is embedded as the embedder's fixed normalized
//! non-zero vector, so every pair becomes a dense `F x D` block with
//! `F = 2|A|`.

use crate::pair::EntityPair;
use crate::record::Schema;
use adamel_tensor::{parallel, Matrix};
use adamel_text::{shared_and_unique, tokenize_cropped, HashedFastText};

/// Which contrastive features to extract — the Table 6 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMode {
    /// Only `sim(A)` features.
    SharedOnly,
    /// Only `uni(A)` features.
    UniqueOnly,
    /// Both, the paper's default (`F = 2|A|`).
    Both,
}

impl FeatureMode {
    /// Features produced per attribute.
    pub fn per_attribute(self) -> usize {
        match self {
            FeatureMode::Both => 2,
            _ => 1,
        }
    }
}

/// Turns aligned entity pairs into dense token-embedding features.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    schema: Schema,
    embedder: HashedFastText,
    crop: usize,
    mode: FeatureMode,
}

impl FeatureExtractor {
    /// Creates an extractor over `schema` using the paper's configuration
    /// interface: `crop` is the token cropping size (paper uses 20).
    pub fn new(schema: Schema, embedder: HashedFastText, crop: usize, mode: FeatureMode) -> Self {
        assert!(!schema.is_empty(), "FeatureExtractor requires a non-empty schema");
        Self { schema, embedder, crop, mode }
    }

    /// The aligned schema features are extracted against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of relational features `F` per pair.
    pub fn num_features(&self) -> usize {
        self.schema.len() * self.mode.per_attribute()
    }

    /// Embedding dimensionality `D` per feature.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// The extraction mode.
    pub fn mode(&self) -> FeatureMode {
        self.mode
    }

    /// Human-readable feature names in column order, e.g.
    /// `["artist_shared", "artist_unique", "title_shared", ...]` — used by
    /// the attention analysis (Table 4).
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.num_features());
        for attr in self.schema.attributes() {
            match self.mode {
                FeatureMode::SharedOnly => names.push(format!("{attr}_shared")),
                FeatureMode::UniqueOnly => names.push(format!("{attr}_unique")),
                FeatureMode::Both => {
                    names.push(format!("{attr}_shared"));
                    names.push(format!("{attr}_unique"));
                }
            }
        }
        names
    }

    /// Encodes one pair as a `1 x (F*D)` row: the concatenation of the `F`
    /// per-feature summed token embeddings `h_j` (Eq. 3).
    pub fn encode_pair(&self, pair: &EntityPair) -> Matrix {
        let mut row = Matrix::zeros(1, self.num_features() * self.dim());
        self.encode_pair_into(pair, row.as_mut_slice());
        row
    }

    /// Encodes one pair directly into a caller-provided `F*D`-length buffer,
    /// one `D`-wide block per feature in schema order. Batch encoding calls
    /// this per row of a preallocated matrix, so no per-pair `Matrix` is
    /// allocated and copied.
    pub fn encode_pair_into(&self, pair: &EntityPair, out: &mut [f32]) {
        let d = self.dim();
        assert_eq!(out.len(), self.num_features() * d, "encode_pair_into: buffer width mismatch");
        let mut blocks = out.chunks_exact_mut(d);
        for attr in self.schema.attributes() {
            let left =
                pair.left.get(attr).map(|v| tokenize_cropped(v, self.crop)).unwrap_or_default();
            let right =
                pair.right.get(attr).map(|v| tokenize_cropped(v, self.crop)).unwrap_or_default();
            let missing = left.is_empty() && right.is_empty();
            let (shared, unique) = shared_and_unique(&left, &right);
            let mut emit = |tokens: &[String]| {
                // C1/C2: a fully missing attribute on both sides becomes the
                // fixed non-zero vector so its parameters still receive
                // gradient; an *empty* contrast set on a present attribute is
                // genuine evidence and embeds as the missing vector too
                // (both records exist but share nothing / differ in nothing).
                let _ = missing;
                let block = blocks.next().expect("feature count disagrees with buffer width");
                self.embedder.embed_tokens_into(tokens, block);
            };
            match self.mode {
                FeatureMode::SharedOnly => emit(&shared),
                FeatureMode::UniqueOnly => emit(&unique),
                FeatureMode::Both => {
                    emit(&shared);
                    emit(&unique);
                }
            }
        }
    }

    /// Encodes a batch of pairs as an `n x (F*D)` matrix. Rows are encoded
    /// in parallel (each row only depends on its own pair), yielding the
    /// exact same bytes as a sequential `encode_pair` loop.
    pub fn encode_pairs(&self, pairs: &[EntityPair]) -> Matrix {
        adamel_obs::trace_span!("encode_pairs");
        adamel_obs::trace_count!("encode.pairs", pairs.len() as u64);
        let width = self.num_features() * self.dim();
        let mut data = vec![0.0f32; pairs.len() * width];
        // Rough per-row cost: every feature hashes ~crop tokens' worth of
        // n-gram vectors, each a dim-length stream — comfortably above the
        // matmul-style 2-flops-per-element scale, so weight width generously.
        parallel::parallel_for_rows(&mut data, width, width * 200, |i, row| {
            self.encode_pair_into(&pairs[i], row);
        });
        Matrix::from_vec(pairs.len(), width, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, SourceId};

    fn rec(kv: &[(&str, &str)]) -> Record {
        let mut r = Record::new(SourceId(0), 0);
        for (k, v) in kv {
            r.set(*k, *v);
        }
        r
    }

    fn extractor(mode: FeatureMode) -> FeatureExtractor {
        let schema = Schema::new(vec!["artist".into(), "title".into()]);
        FeatureExtractor::new(schema, HashedFastText::new(16, 1), 20, mode)
    }

    #[test]
    fn feature_count_follows_mode() {
        assert_eq!(extractor(FeatureMode::Both).num_features(), 4);
        assert_eq!(extractor(FeatureMode::SharedOnly).num_features(), 2);
        assert_eq!(extractor(FeatureMode::UniqueOnly).num_features(), 2);
    }

    #[test]
    fn feature_names_order() {
        let names = extractor(FeatureMode::Both).feature_names();
        assert_eq!(names, vec!["artist_shared", "artist_unique", "title_shared", "title_unique"]);
    }

    #[test]
    fn encode_shapes() {
        let ex = extractor(FeatureMode::Both);
        let pair = EntityPair::unlabeled(
            rec(&[("title", "hey jude"), ("artist", "beatles")]),
            rec(&[("title", "hey jude"), ("artist", "p m")]),
        );
        let row = ex.encode_pair(&pair);
        assert_eq!(row.shape(), (1, 4 * 16));
        let batch = ex.encode_pairs(&[pair.clone(), pair]);
        assert_eq!(batch.shape(), (2, 4 * 16));
    }

    #[test]
    fn identical_values_put_mass_in_shared_feature() {
        let ex = extractor(FeatureMode::Both);
        let pair =
            EntityPair::unlabeled(rec(&[("title", "hey jude")]), rec(&[("title", "hey jude")]));
        let row = ex.encode_pair(&pair);
        // title_shared is feature index 2 (artist_shared, artist_unique,
        // title_shared, title_unique); its block should differ from the
        // missing vector while title_unique equals the missing vector.
        let d = 16;
        let missing = HashedFastText::new(16, 1).missing_vector();
        let shared_block = &row.as_slice()[2 * d..3 * d];
        let unique_block = &row.as_slice()[3 * d..4 * d];
        assert_ne!(shared_block, missing.as_slice());
        assert_eq!(unique_block, missing.as_slice());
    }

    #[test]
    fn missing_attribute_embeds_missing_vector_everywhere() {
        let ex = extractor(FeatureMode::Both);
        let pair = EntityPair::unlabeled(rec(&[]), rec(&[]));
        let row = ex.encode_pair(&pair);
        let missing = HashedFastText::new(16, 1).missing_vector();
        for f in 0..4 {
            assert_eq!(&row.as_slice()[f * 16..(f + 1) * 16], missing.as_slice());
        }
    }

    #[test]
    fn schema_projection_changes_width() {
        let schema = Schema::new(vec!["artist".into(), "title".into()]);
        let top = schema.project(&["title"]);
        let ex = FeatureExtractor::new(top, HashedFastText::new(8, 1), 20, FeatureMode::Both);
        assert_eq!(ex.num_features(), 2);
        assert_eq!(ex.feature_names(), vec!["title_shared", "title_unique"]);
    }
}
