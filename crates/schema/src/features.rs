//! Contrastive relational feature extraction (paper §4.2, Eq. 2–3).
//!
//! Each attribute `A` of a pair `(r, r')` is parsed into two features:
//! `sim(A)` — the word tokens shared by both records — and `uni(A)` — the
//! tokens appearing in exactly one. Token embeddings are summed per feature
//! and the missing-value case is embedded as the embedder's fixed normalized
//! non-zero vector, so every pair becomes a dense `F x D` block with
//! `F = 2|A|`.
//!
//! Encoding is served from a record-level cache ([`crate::encode_cache`]):
//! per-record tokenization, hashing, and embedding happen once per distinct
//! record, and the pair path combines cached data bit-identically to the
//! uncached reference (kept as
//! [`encode_pair_uncached`](FeatureExtractor::encode_pair_uncached)).

use crate::encode_cache::{EncodeCache, EncodeCacheStats};
use crate::pair::EntityPair;
use crate::record::{Record, Schema};
use adamel_tensor::{parallel, Matrix};
use adamel_text::{shared_and_unique, tokenize_cropped, HashedFastText};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Which contrastive features to extract — the Table 6 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMode {
    /// Only `sim(A)` features.
    SharedOnly,
    /// Only `uni(A)` features.
    UniqueOnly,
    /// Both, the paper's default (`F = 2|A|`).
    Both,
}

impl FeatureMode {
    /// Features produced per attribute.
    pub fn per_attribute(self) -> usize {
        match self {
            FeatureMode::Both => 2,
            _ => 1,
        }
    }
}

/// Turns aligned entity pairs into dense token-embedding features.
///
/// Thread-safe: the interior encoding cache is mutex-guarded, and batch
/// encoding takes the lock once per batch, not per pair. Cloning snapshots
/// the cache (the clone starts with the same memoized records but its own
/// lock and counters).
#[derive(Debug)]
pub struct FeatureExtractor {
    schema: Schema,
    embedder: HashedFastText,
    crop: usize,
    mode: FeatureMode,
    cache: Mutex<EncodeCache>,
}

impl Clone for FeatureExtractor {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            embedder: self.embedder.clone(),
            crop: self.crop,
            mode: self.mode,
            cache: Mutex::new(self.lock_cache().clone()),
        }
    }
}

impl FeatureExtractor {
    /// Creates an extractor over `schema` using the paper's configuration
    /// interface: `crop` is the token cropping size (paper uses 20).
    pub fn new(schema: Schema, embedder: HashedFastText, crop: usize, mode: FeatureMode) -> Self {
        assert!(!schema.is_empty(), "FeatureExtractor requires a non-empty schema");
        let cache = Mutex::new(EncodeCache::new(embedder.clone(), crop, schema.len()));
        Self { schema, embedder, crop, mode, cache }
    }

    /// The aligned schema features are extracted against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of relational features `F` per pair.
    pub fn num_features(&self) -> usize {
        self.schema.len() * self.mode.per_attribute()
    }

    /// Embedding dimensionality `D` per feature.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// The extraction mode.
    pub fn mode(&self) -> FeatureMode {
        self.mode
    }

    /// Human-readable feature names in column order, e.g.
    /// `["artist_shared", "artist_unique", "title_shared", ...]` — used by
    /// the attention analysis (Table 4).
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.num_features());
        for attr in self.schema.attributes() {
            match self.mode {
                FeatureMode::SharedOnly => names.push(format!("{attr}_shared")),
                FeatureMode::UniqueOnly => names.push(format!("{attr}_unique")),
                FeatureMode::Both => {
                    names.push(format!("{attr}_shared"));
                    names.push(format!("{attr}_unique"));
                }
            }
        }
        names
    }

    /// Locks the encoding cache, recovering from a poisoned lock: the cache
    /// holds only memoized pure-function results, so a panic mid-update in
    /// another thread cannot leave observably wrong data (`ensure_slots`
    /// registers a slot only after its key is inserted; a torn build is
    /// rebuilt-or-reused by content key, never mixed).
    fn lock_cache(&self) -> MutexGuard<'_, EncodeCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drops every memoized record encoding, the interned vocabulary, and
    /// the hit/miss counters — a full cold start, used to bound memory
    /// between corpora and by the cold-path benchmarks.
    pub fn clear_cache(&self) {
        self.lock_cache().clear();
    }

    /// Current encoding-cache statistics.
    #[must_use = "cache stats are a snapshot; fetching them without reading is a no-op"]
    pub fn cache_stats(&self) -> EncodeCacheStats {
        self.lock_cache().stats()
    }

    /// Encodes one pair as a `1 x (F*D)` row: the concatenation of the `F`
    /// per-feature summed token embeddings `h_j` (Eq. 3).
    pub fn encode_pair(&self, pair: &EntityPair) -> Matrix {
        let mut row = Matrix::zeros(1, self.num_features() * self.dim());
        self.encode_pair_into(pair, row.as_mut_slice());
        row
    }

    /// Encodes one pair directly into a caller-provided `F*D`-length buffer,
    /// one `D`-wide block per feature in schema order. Served from the
    /// record-level cache; bit-identical to
    /// [`encode_pair_uncached`](Self::encode_pair_uncached).
    pub fn encode_pair_into(&self, pair: &EntityPair, out: &mut [f32]) {
        let d = self.dim();
        assert_eq!(out.len(), self.num_features() * d, "encode_pair_into: buffer width mismatch");
        let mut cache = self.lock_cache();
        let slots = cache.ensure_slots(&self.schema, &[&pair.left, &pair.right]);
        cache.encode_into(slots[0], slots[1], self.mode, out);
    }

    /// The uncached reference implementation of Eq. 2–3: tokenizes, hashes,
    /// and embeds everything from scratch, touching no shared state. The
    /// cached path is property-tested bit-identical against this.
    pub fn encode_pair_uncached(&self, pair: &EntityPair, out: &mut [f32]) {
        let d = self.dim();
        assert_eq!(
            out.len(),
            self.num_features() * d,
            "encode_pair_uncached: buffer width mismatch"
        );
        let per = self.mode.per_attribute();
        for (a, attr) in self.schema.attributes().iter().enumerate() {
            let left =
                pair.left.get(attr).map(|v| tokenize_cropped(v, self.crop)).unwrap_or_default();
            let right =
                pair.right.get(attr).map(|v| tokenize_cropped(v, self.crop)).unwrap_or_default();
            let (shared, unique) = shared_and_unique(&left, &right);
            let base = a * per * d;
            let mut emit = |slot: usize, tokens: &[String]| {
                // C1/C2 contract, applied where the block is written: an
                // empty token set — a fully missing attribute on both sides,
                // or an empty contrast set on present values (both records
                // exist but share nothing / differ in nothing) — embeds as
                // the fixed non-zero missing vector, so every feature block
                // stays dense and its parameters receive gradient.
                let block = &mut out[base + slot * d..base + (slot + 1) * d];
                self.embedder.embed_tokens_into(tokens, block);
            };
            match self.mode {
                FeatureMode::SharedOnly => emit(0, &shared),
                FeatureMode::UniqueOnly => emit(0, &unique),
                FeatureMode::Both => {
                    emit(0, &shared);
                    emit(1, &unique);
                }
            }
        }
    }

    /// Encodes a batch of pairs as an `n x (F*D)` matrix. Distinct records
    /// are memoized first (one pass, parallel where it pays), then rows are
    /// combined from cached data in parallel — the exact same bytes as a
    /// sequential `encode_pair_uncached` loop.
    pub fn encode_pairs(&self, pairs: &[EntityPair]) -> Matrix {
        adamel_obs::trace_span!("encode_pairs");
        adamel_obs::trace_count!("encode.pairs", pairs.len() as u64);
        let width = self.num_features() * self.dim();
        let mut data = vec![0.0f32; pairs.len() * width];
        let mut guard = self.lock_cache();
        let records: Vec<&Record> = pairs.iter().flat_map(|p| [&p.left, &p.right]).collect();
        let slots = guard.ensure_slots(&self.schema, &records);
        let cache: &EncodeCache = &guard;
        let mode = self.mode;
        // Warm rows are short id-list partitions plus adds/copies of cached
        // rows — O(width) with a small constant, nothing like the uncached
        // hash-everything cost the old weight (width * 200) modeled.
        parallel::parallel_for_rows(&mut data, width, width * 4, |i, row| {
            cache.encode_into(slots[2 * i], slots[2 * i + 1], mode, row);
        });
        drop(guard);
        Matrix::from_vec(pairs.len(), width, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, SourceId};

    fn rec(kv: &[(&str, &str)]) -> Record {
        let mut r = Record::new(SourceId(0), 0);
        for (k, v) in kv {
            r.set(*k, *v);
        }
        r
    }

    fn extractor(mode: FeatureMode) -> FeatureExtractor {
        let schema = Schema::new(vec!["artist".into(), "title".into()]);
        FeatureExtractor::new(schema, HashedFastText::new(16, 1), 20, mode)
    }

    #[test]
    fn feature_count_follows_mode() {
        assert_eq!(extractor(FeatureMode::Both).num_features(), 4);
        assert_eq!(extractor(FeatureMode::SharedOnly).num_features(), 2);
        assert_eq!(extractor(FeatureMode::UniqueOnly).num_features(), 2);
    }

    #[test]
    fn feature_names_order() {
        let names = extractor(FeatureMode::Both).feature_names();
        assert_eq!(names, vec!["artist_shared", "artist_unique", "title_shared", "title_unique"]);
    }

    #[test]
    fn encode_shapes() {
        let ex = extractor(FeatureMode::Both);
        let pair = EntityPair::unlabeled(
            rec(&[("title", "hey jude"), ("artist", "beatles")]),
            rec(&[("title", "hey jude"), ("artist", "p m")]),
        );
        let row = ex.encode_pair(&pair);
        assert_eq!(row.shape(), (1, 4 * 16));
        let batch = ex.encode_pairs(&[pair.clone(), pair]);
        assert_eq!(batch.shape(), (2, 4 * 16));
    }

    #[test]
    fn identical_values_put_mass_in_shared_feature() {
        let ex = extractor(FeatureMode::Both);
        let pair =
            EntityPair::unlabeled(rec(&[("title", "hey jude")]), rec(&[("title", "hey jude")]));
        let row = ex.encode_pair(&pair);
        // title_shared is feature index 2 (artist_shared, artist_unique,
        // title_shared, title_unique); its block should differ from the
        // missing vector while title_unique equals the missing vector.
        let d = 16;
        let missing = HashedFastText::new(16, 1).missing_vector();
        let shared_block = &row.as_slice()[2 * d..3 * d];
        let unique_block = &row.as_slice()[3 * d..4 * d];
        assert_ne!(shared_block, missing.as_slice());
        assert_eq!(unique_block, missing.as_slice());
    }

    #[test]
    fn missing_attribute_embeds_missing_vector_everywhere() {
        let ex = extractor(FeatureMode::Both);
        let pair = EntityPair::unlabeled(rec(&[]), rec(&[]));
        let row = ex.encode_pair(&pair);
        let missing = HashedFastText::new(16, 1).missing_vector();
        for f in 0..4 {
            assert_eq!(&row.as_slice()[f * 16..(f + 1) * 16], missing.as_slice());
        }
    }

    #[test]
    fn schema_projection_changes_width() {
        let schema = Schema::new(vec!["artist".into(), "title".into()]);
        let top = schema.project(&["title"]);
        let ex = FeatureExtractor::new(top, HashedFastText::new(8, 1), 20, FeatureMode::Both);
        assert_eq!(ex.num_features(), 2);
        assert_eq!(ex.feature_names(), vec!["title_shared", "title_unique"]);
    }

    #[test]
    fn cached_matches_uncached_and_warm_repeat_is_stable() {
        let pairs = vec![
            EntityPair::unlabeled(
                rec(&[("title", "hey jude"), ("artist", "the beatles")]),
                rec(&[("title", "hey jude remastered"), ("artist", "beatles")]),
            ),
            EntityPair::unlabeled(rec(&[("title", "let it be")]), rec(&[("artist", "beatles")])),
            EntityPair::unlabeled(rec(&[]), rec(&[])),
            EntityPair::unlabeled(
                rec(&[("title", "a a b"), ("artist", "x")]),
                rec(&[("title", "a b b a"), ("artist", "x")]),
            ),
        ];
        for mode in [FeatureMode::Both, FeatureMode::SharedOnly, FeatureMode::UniqueOnly] {
            let ex = extractor(mode);
            let width = ex.num_features() * ex.dim();
            let cold = ex.encode_pairs(&pairs);
            let warm = ex.encode_pairs(&pairs);
            assert_eq!(cold.as_slice(), warm.as_slice(), "warm repeat drifted ({mode:?})");
            let mut reference = vec![0.0f32; width];
            for (i, pair) in pairs.iter().enumerate() {
                ex.encode_pair_uncached(pair, &mut reference);
                let row = &cold.as_slice()[i * width..(i + 1) * width];
                let same = row.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "cached row {i} != uncached reference ({mode:?})");
            }
        }
        let ex = extractor(FeatureMode::Both);
        ex.encode_pairs(&pairs);
        let stats = ex.cache_stats();
        // 8 record references, 7 distinct contents (the two empty records
        // collide by content — same encoding, so sharing a slot is correct).
        assert_eq!(stats.distinct_records, 7);
        assert_eq!(stats.misses, 7);
        assert_eq!(stats.hits, 1);
        assert!(stats.interned_tokens > 0);
        ex.clear_cache();
        assert_eq!(ex.cache_stats(), EncodeCacheStats::default());
    }
}
