//! Token blocking for candidate generation.
//!
//! Scoring every cross pair of two record collections is quadratic;
//! production linkage pipelines first *block* records that share a key
//! token and only score those candidates. This is the inference-time
//! counterpart of the sampler used to build training corpora.

use crate::record::Record;
use adamel_text::tokenize;
use std::collections::{BTreeMap, BTreeSet};

/// A blocking index over one record collection.
pub struct BlockingIndex<'a> {
    records: &'a [Record],
    by_token: BTreeMap<String, Vec<usize>>,
}

impl<'a> BlockingIndex<'a> {
    /// Indexes `records` on the word tokens of `block_attrs` (records
    /// missing every blocking attribute are only reachable via
    /// [`candidates_for`](Self::candidates_for) fallback).
    pub fn new(records: &'a [Record], block_attrs: &[&str]) -> Self {
        let mut by_token: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for attr in block_attrs {
                if let Some(v) = r.get(attr) {
                    for t in tokenize(v) {
                        if seen.insert(t.clone()) {
                            by_token.entry(t).or_default().push(i);
                        }
                    }
                }
            }
        }
        Self { records, by_token }
    }

    /// The indexed records.
    pub fn records(&self) -> &[Record] {
        self.records
    }

    /// Indices of records sharing at least one blocking token with `query`
    /// under the given attributes, capped at `limit` (most-overlapping
    /// first).
    pub fn candidates_for(&self, query: &Record, block_attrs: &[&str], limit: usize) -> Vec<usize> {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen = BTreeSet::new();
        for attr in block_attrs {
            if let Some(v) = query.get(attr) {
                for t in tokenize(v) {
                    if !seen.insert(t.clone()) {
                        continue;
                    }
                    if let Some(members) = self.by_token.get(&t) {
                        for &m in members {
                            *counts.entry(m).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut ranked: Vec<(usize, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.into_iter().take(limit).map(|(i, _)| i).collect()
    }

    /// Number of distinct blocking tokens.
    pub fn num_blocks(&self) -> usize {
        self.by_token.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SourceId;

    fn rec(id: u64, title: &str) -> Record {
        let mut r = Record::new(SourceId(0), id);
        r.set("title", title);
        r
    }

    #[test]
    fn candidates_share_tokens() {
        let records =
            vec![rec(1, "hey jude"), rec(2, "hey there delilah"), rec(3, "yellow submarine")];
        let idx = BlockingIndex::new(&records, &["title"]);
        let q = rec(9, "hey jude remix");
        let cands = idx.candidates_for(&q, &["title"], 10);
        assert_eq!(cands, vec![0, 1]); // record 0 shares 2 tokens, 1 shares 1
    }

    #[test]
    fn limit_is_respected_and_ranked() {
        let records: Vec<Record> = (0..20).map(|i| rec(i, "common words here")).collect();
        let idx = BlockingIndex::new(&records, &["title"]);
        let q = rec(99, "common words");
        let cands = idx.candidates_for(&q, &["title"], 5);
        assert_eq!(cands.len(), 5);
    }

    #[test]
    fn no_shared_tokens_means_no_candidates() {
        let records = vec![rec(1, "alpha"), rec(2, "beta")];
        let idx = BlockingIndex::new(&records, &["title"]);
        assert!(idx.candidates_for(&rec(9, "gamma"), &["title"], 10).is_empty());
        assert_eq!(idx.num_blocks(), 2);
    }

    #[test]
    fn missing_blocking_attribute_is_fine() {
        let records = vec![rec(1, "alpha")];
        let idx = BlockingIndex::new(&records, &["title"]);
        let empty = Record::new(SourceId(1), 5);
        assert!(idx.candidates_for(&empty, &["title"], 10).is_empty());
    }
}
