//! Entity pairs and domains (source domain, target domain, support set).

use crate::record::{Record, Schema, SourceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A pair of entity records, optionally labeled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityPair {
    /// Left record.
    pub left: Record,
    /// Right record.
    pub right: Record,
    /// `Some(true)` = matching, `Some(false)` = non-matching, `None` =
    /// unlabeled (target-domain data).
    pub label: Option<bool>,
}

impl EntityPair {
    /// Creates a labeled pair.
    pub fn labeled(left: Record, right: Record, matching: bool) -> Self {
        Self { left, right, label: Some(matching) }
    }

    /// Creates an unlabeled pair.
    pub fn unlabeled(left: Record, right: Record) -> Self {
        Self { left, right, label: None }
    }

    /// Ground-truth match from the generator's entity ids (used when
    /// evaluating on "unlabeled" target pairs).
    pub fn ground_truth(&self) -> bool {
        self.left.entity_id == self.right.entity_id
    }

    /// The pair's two data sources.
    pub fn sources(&self) -> (SourceId, SourceId) {
        (self.left.source, self.right.source)
    }

    /// True when at least one side comes from a source in `unseen` — the
    /// membership test for the target domain (Definition 3.1).
    pub fn touches_sources(&self, unseen: &BTreeSet<SourceId>) -> bool {
        unseen.contains(&self.left.source) || unseen.contains(&self.right.source)
    }
}

/// A collection of entity pairs with convenience views — used for `D_S`,
/// `D_T`, and `S_U`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Domain {
    /// The pairs in this domain.
    pub pairs: Vec<EntityPair>,
}

impl Domain {
    /// Creates a domain from pairs.
    pub fn new(pairs: Vec<EntityPair>) -> Self {
        Self { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the domain has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The set of data sources occurring in this domain — the paper's `D*`.
    pub fn sources(&self) -> BTreeSet<SourceId> {
        let mut s = BTreeSet::new();
        for p in &self.pairs {
            s.insert(p.left.source);
            s.insert(p.right.source);
        }
        s
    }

    /// The aligned union schema over every record in the domain.
    pub fn schema(&self) -> Schema {
        Schema::union_of(self.pairs.iter().flat_map(|p| [&p.left, &p.right]))
    }

    /// Labels as 0/1 floats; panics on unlabeled pairs (use only on `D_S` /
    /// `S_U`).
    pub fn labels(&self) -> Vec<f32> {
        self.pairs
            .iter()
            .map(|p| f32::from(p.label.expect("Domain::labels called on unlabeled pair")))
            .collect()
    }

    /// Ground-truth labels as 0/1 floats (for evaluating on target pairs).
    pub fn ground_truth(&self) -> Vec<f32> {
        self.pairs.iter().map(|p| f32::from(p.ground_truth())).collect()
    }

    /// Count of positive labels.
    pub fn num_positive(&self) -> usize {
        self.pairs.iter().filter(|p| p.label == Some(true)).count()
    }

    /// Splits off the pairs at the given indices into a new domain.
    pub fn subset(&self, indices: &[usize]) -> Domain {
        Domain::new(indices.iter().map(|&i| self.pairs[i].clone()).collect())
    }

    /// Concatenates two domains.
    pub fn extend_from(&mut self, other: &Domain) {
        self.pairs.extend(other.pairs.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(source: u32, id: u64, title: &str) -> Record {
        let mut r = Record::new(SourceId(source), id);
        r.set("title", title);
        r
    }

    #[test]
    fn ground_truth_from_entity_ids() {
        let p = EntityPair::unlabeled(rec(1, 5, "a"), rec(2, 5, "b"));
        assert!(p.ground_truth());
        let n = EntityPair::unlabeled(rec(1, 5, "a"), rec(2, 6, "b"));
        assert!(!n.ground_truth());
    }

    #[test]
    fn touches_sources_detects_unseen() {
        let p = EntityPair::unlabeled(rec(1, 5, "a"), rec(9, 5, "b"));
        let unseen: BTreeSet<SourceId> = [SourceId(9)].into();
        assert!(p.touches_sources(&unseen));
        let seen_only: BTreeSet<SourceId> = [SourceId(3)].into();
        assert!(!p.touches_sources(&seen_only));
    }

    #[test]
    fn domain_sources_and_schema() {
        let d = Domain::new(vec![
            EntityPair::labeled(rec(1, 5, "a"), rec(2, 5, "b"), true),
            EntityPair::labeled(rec(1, 6, "c"), rec(3, 7, "d"), false),
        ]);
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.schema().attributes(), &["title"]);
        assert_eq!(d.labels(), vec![1.0, 0.0]);
        assert_eq!(d.num_positive(), 1);
    }

    #[test]
    #[should_panic(expected = "unlabeled")]
    fn labels_panic_on_unlabeled() {
        let d = Domain::new(vec![EntityPair::unlabeled(rec(1, 5, "a"), rec(2, 5, "b"))]);
        let _ = d.labels();
    }

    #[test]
    fn subset_preserves_order() {
        let d = Domain::new(vec![
            EntityPair::labeled(rec(1, 1, "a"), rec(2, 1, "a"), true),
            EntityPair::labeled(rec(1, 2, "b"), rec(2, 3, "c"), false),
            EntityPair::labeled(rec(1, 4, "d"), rec(2, 4, "d"), true),
        ]);
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pairs[0].left.entity_id, 4);
        assert_eq!(s.pairs[1].left.entity_id, 1);
    }
}
