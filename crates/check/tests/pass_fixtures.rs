//! Must-fail fixtures for the call-graph passes.
//!
//! CI runs these with the normal test suite: each new pass gets a fixture
//! that MUST produce a finding (so a regression that silently blinds a
//! pass fails the build, not just shrinks a report) and a matching clean
//! fixture that MUST stay silent (so a regression in the other direction —
//! noise — is equally loud). Fixtures are in-memory sources fed through
//! [`Workspace::from_sources`], the same entry the unit tests use, under
//! library-crate paths so the public-surface gating applies.

use adamel_check::callgraph;
use adamel_check::lints::Finding;
use adamel_check::passes;
use adamel_check::symbols::Workspace;

fn run_passes(sources: &[(&str, &str)]) -> Vec<Finding> {
    let ws = Workspace::from_sources(
        sources.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect(),
    );
    let graph = callgraph::build(&ws);
    passes::run_all(&ws, &graph)
}

fn lints<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.lint == lint).collect()
}

// --- panic-reachability ----------------------------------------------------

#[test]
fn panic_reachability_must_fail_fixture() {
    let findings = run_passes(&[(
        "crates/core/src/lib.rs",
        "pub fn api(xs: &[u32], i: usize) -> u32 { helper(xs, i) }\n\
         fn helper(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
    )]);
    let hits = lints(&findings, "panic-reachability");
    assert_eq!(hits.len(), 1, "fixture must fire exactly once: {findings:?}");
    let msg = &hits[0].message;
    assert!(msg.contains("api"), "witness path names the pub root: {msg}");
    assert!(msg.contains("helper"), "witness path names the panicking fn: {msg}");
}

#[test]
fn panic_reachability_clean_fixture_stays_silent() {
    let findings = run_passes(&[(
        "crates/core/src/lib.rs",
        "pub fn api(xs: &[u32], i: usize) -> Option<u32> { helper(xs, i) }\n\
         fn helper(xs: &[u32], i: usize) -> Option<u32> { xs.get(i).copied() }\n",
    )]);
    assert!(lints(&findings, "panic-reachability").is_empty(), "{findings:?}");
}

#[test]
fn panic_reachability_crosses_crate_boundaries() {
    // The call graph is workspace-wide: a panic in one crate reached from a
    // pub fn in another must still be witnessed.
    let findings = run_passes(&[
        ("crates/tensor/src/lib.rs", "pub fn kernel(xs: &[f32]) -> f32 { xs[0] }\n"),
        ("crates/core/src/lib.rs", "pub fn entry(xs: &[f32]) -> f32 { kernel(xs) }\n"),
    ]);
    let hits = lints(&findings, "panic-reachability");
    assert!(!hits.is_empty(), "{findings:?}");
}

// --- lock-across-dispatch --------------------------------------------------

#[test]
fn lock_across_dispatch_must_fail_fixture() {
    let findings = run_passes(&[(
        "crates/schema/src/lib.rs",
        "pub fn bad(m: &std::sync::Mutex<u8>) {\n\
         \x20   let guard = m.lock().unwrap_or_else(|p| p.into_inner());\n\
         \x20   parallel_for_rows(&mut [], 1, 1, |_, _| {});\n\
         \x20   let _ = *guard;\n\
         }\n",
    )]);
    let hits = lints(&findings, "lock-across-dispatch");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("`guard`"), "{}", hits[0].message);
}

#[test]
fn lock_across_dispatch_clean_fixture_stays_silent() {
    let findings = run_passes(&[(
        "crates/schema/src/lib.rs",
        "pub fn good(m: &std::sync::Mutex<u8>) {\n\
         \x20   { let _guard = m.lock().unwrap_or_else(|p| p.into_inner()); }\n\
         \x20   parallel_for_rows(&mut [], 1, 1, |_, _| {});\n\
         }\n",
    )]);
    assert!(lints(&findings, "lock-across-dispatch").is_empty(), "{findings:?}");
}

// --- nondeterministic-reduction --------------------------------------------

#[test]
fn nondet_reduction_must_fail_fixture() {
    let findings = run_passes(&[(
        "crates/metrics/src/lib.rs",
        "pub fn bad(rows: &mut [f32]) {\n\
         \x20   let mut total: f32 = 0.0;\n\
         \x20   parallel_for_rows(rows, 1, 1, |_, row| { total += row[0]; });\n\
         \x20   let _ = total;\n\
         }\n",
    )]);
    let hits = lints(&findings, "nondeterministic-reduction");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("total"), "{}", hits[0].message);
}

#[test]
fn nondet_reduction_clean_fixture_stays_silent() {
    // Accumulating into a closure-local is the sanctioned pattern: each
    // worker owns its accumulator and the merge happens deterministically
    // after the dispatch.
    let findings = run_passes(&[(
        "crates/metrics/src/lib.rs",
        "pub fn good(rows: &mut [f32]) {\n\
         \x20   parallel_for_rows(rows, 1, 1, |_, row| {\n\
         \x20       let mut local: f32 = 0.0;\n\
         \x20       local += row[0];\n\
         \x20       row[0] = local;\n\
         \x20   });\n\
         }\n",
    )]);
    assert!(lints(&findings, "nondeterministic-reduction").is_empty(), "{findings:?}");
}

// --- report plumbing -------------------------------------------------------

#[test]
fn findings_come_out_sorted_and_deduped() {
    let findings = run_passes(&[
        (
            "crates/core/src/lib.rs",
            "pub fn z(xs: &[u32]) -> u32 { xs[0] }\npub fn a(xs: &[u32]) -> u32 { xs[1] }\n",
        ),
        ("crates/data/src/lib.rs", "pub fn b(xs: &[u32]) -> u32 { xs[2] }\n"),
    ]);
    let keys: Vec<(&str, usize, &str)> =
        findings.iter().map(|f| (f.path.as_str(), f.line, f.lint)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted, "run_all output must be sorted and deduped");
    assert_eq!(findings.len(), 3, "{findings:?}");
}
