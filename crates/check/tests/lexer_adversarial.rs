//! Adversarial lexer inputs plus a workspace-wide span round-trip.
//!
//! The lints live or die on the lexer classifying weird-but-legal Rust the
//! same way rustc would: a raw string whose *contents* look like a comment
//! must stay one `Str` token, a nested block comment containing quotes must
//! vanish entirely, and `0..2` must come out as `Int ".." Int` rather than
//! a float. The round-trip test then pins the span invariants for every
//! real file in the workspace: spans are in order, non-overlapping, carry
//! the exact lexeme bytes, and the gaps between them are only whitespace
//! and comments — so concatenating gaps and spans reconstructs the source
//! byte-identically.

use adamel_check::lexer::{lex, TokKind};
use adamel_check::symbols::collect_rs_files;
use std::path::{Path, PathBuf};

fn kinds(src: &str) -> Vec<TokKind> {
    lex(src).into_iter().map(|t| t.kind).collect()
}

#[test]
fn raw_string_with_hash_delimiters_containing_line_comment() {
    // The "//" inside the raw string must not start a comment, and the
    // `#"`/`"#` fences must not terminate early on the inner quote.
    let src = r##"let s = r#"not a // comment, even with a " quote"#; x.unwrap();"##;
    let toks = lex(src);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1, "{toks:?}");
    // The unwrap after the raw string is still visible to the lints.
    assert!(toks.iter().any(|t| t.is_ident("unwrap")), "{toks:?}");
    // And the span covers the whole literal including both fences.
    let s = strs[0];
    assert!(src[s.start..s.end].starts_with("r#\""), "{:?}", &src[s.start..s.end]);
    assert!(src[s.start..s.end].ends_with("\"#"), "{:?}", &src[s.start..s.end]);
}

#[test]
fn raw_string_with_more_hashes_than_needed() {
    let src = r####"let s = r###"inner "# and "## stay inside"###;"####;
    let toks = lex(src);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1, "{toks:?}");
    assert!(toks.last().unwrap().is_punct(";"), "{toks:?}");
}

#[test]
fn nested_block_comment_containing_quotes_is_fully_discarded() {
    // Rust block comments nest; the inner `/*` must push depth so the
    // first `*/` does not end the comment, and the quote inside must not
    // open a string that swallows the rest of the file.
    let src = "before(); /* outer \" /* inner \" */ still comment */ after();";
    let toks = lex(src);
    assert!(toks.iter().any(|t| t.is_ident("before")), "{toks:?}");
    assert!(toks.iter().any(|t| t.is_ident("after")), "{toks:?}");
    assert!(!toks.iter().any(|t| t.is_ident("inner") || t.is_ident("comment")), "{toks:?}");
    assert!(!toks.iter().any(|t| t.kind == TokKind::Str), "{toks:?}");
}

#[test]
fn int_range_is_not_a_float() {
    // `0..2` must lex as Int ".." Int — treating `0.` as a float would
    // desynchronize every range expression in the workspace.
    let toks = lex("for i in 0..2 {}");
    let got: Vec<(TokKind, &str)> = toks.iter().map(|t| (t.kind, t.text.as_str())).collect();
    assert!(
        got.windows(3)
            .any(|w| w == [(TokKind::Int, "0"), (TokKind::Punct, ".."), (TokKind::Int, "2")]),
        "{got:?}"
    );
    // But a genuine trailing-dot float stays a float.
    assert_eq!(
        kinds("let x = 2.0;"),
        vec![TokKind::Ident, TokKind::Ident, TokKind::Punct, TokKind::Float, TokKind::Punct,]
    );
}

#[test]
fn inclusive_range_and_method_on_int() {
    let toks = lex("(0..=9).sum(); 1.max(2);");
    assert!(toks.iter().any(|t| t.is_punct("..=")), "{toks:?}");
    // `1.max(` — the dot belongs to the method call, not the literal.
    assert!(toks.windows(2).any(|w| w[0].kind == TokKind::Int && w[1].is_punct(".")), "{toks:?}");
}

/// Every token stream must reconstruct its source byte-for-byte: spans in
/// strictly increasing order, `text == src[start..end]` for textful kinds,
/// and the gaps holding nothing but whitespace and comments.
fn assert_round_trip(path: &Path, src: &str) {
    let toks = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev_end = 0usize;
    for (i, t) in toks.iter().enumerate() {
        assert!(
            t.start >= prev_end && t.end >= t.start && t.end <= src.len(),
            "{}: token {i} ({:?} {:?}) span {}..{} out of order (prev end {prev_end})",
            path.display(),
            t.kind,
            t.text,
            t.start,
            t.end,
        );
        let gap = &src[prev_end..t.start];
        assert!(
            only_whitespace_and_comments(gap),
            "{}: gap before token {i} contains lexeme bytes: {gap:?}",
            path.display(),
        );
        let slice = &src[t.start..t.end];
        // Str/Char drop their contents by design; everything else must
        // carry the exact source bytes.
        if !matches!(t.kind, TokKind::Str | TokKind::Char) {
            assert_eq!(t.text, slice, "{}: token {i} text diverges from its span", path.display());
        }
        rebuilt.push_str(gap);
        rebuilt.push_str(slice);
        prev_end = t.end;
    }
    let tail = &src[prev_end..];
    assert!(
        only_whitespace_and_comments(tail),
        "{}: trailing bytes after last token: {tail:?}",
        path.display(),
    );
    rebuilt.push_str(tail);
    assert_eq!(rebuilt, src, "{}: reconstruction is not byte-identical", path.display());
}

/// True when `s` is only whitespace, line comments, and (nested) block
/// comments — the classes of bytes the lexer is allowed to drop.
fn only_whitespace_and_comments(s: &str) -> bool {
    let b: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_whitespace() {
            i += 1;
        } else if b[i] == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
        } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else {
            return false;
        }
    }
    true
}

#[test]
fn every_workspace_file_round_trips() {
    // Integration tests run with the crate root as CWD; the workspace root
    // is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crates = root.join("crates");
    assert!(crates.is_dir(), "workspace crates/ not found at {}", crates.display());
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(&crates, &mut files).expect("walk crates/");
    assert!(files.len() > 50, "expected a real workspace, found {} files", files.len());
    for path in files {
        let src = std::fs::read_to_string(&path).expect("read workspace source");
        assert_round_trip(&path, &src);
    }
}
