//! Report rendering for `adamel-check` — the stable JSON format.
//!
//! `adamel-check --format json` emits a single object with a versioned
//! `schema` field (`adamel-check/v1`) so downstream tooling (the CI
//! artifact, ad-hoc `jq` queries) can detect format changes instead of
//! silently misparsing. Ordering is stable: findings arrive pre-sorted from
//! the driver and are serialized in order, and every object's keys are
//! written in a fixed sequence. Serialization is hand-rolled string
//! building — the workspace builds offline, so there is no serde to lean
//! on; the escaping covers everything [`crate::lints::Finding`] can carry.

use crate::allow::StaleEntry;
use crate::lints::Finding;

/// The JSON schema identifier the report carries.
pub const SCHEMA: &str = "adamel-check/v1";

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"lint\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
        escape(f.lint),
        escape(&f.path),
        f.line,
        escape(&f.message),
        escape(&f.snippet)
    )
}

fn stale_json(s: &StaleEntry) -> String {
    let shadow = match &s.shadowed_by {
        Some((by_line, lint, path, line)) => format!(
            "{{\"allow_line\":{by_line},\"lint\":\"{}\",\"path\":\"{}\",\"line\":{line}}}",
            escape(lint),
            escape(path)
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"allow_line\":{},\"lint\":\"{}\",\"path\":\"{}\",\"snippet\":\"{}\",\
         \"shadowed_by\":{shadow}}}",
        s.entry.line,
        escape(s.entry.scope()),
        escape(&s.entry.path),
        escape(&s.entry.snippet)
    )
}

/// Renders the full report. `findings` are the unsuppressed findings in
/// their final (sorted) order; `suppressed` and `stale` document the
/// allowlist's effect; `scanned` is the file count.
pub fn json_report(
    findings: &[Finding],
    suppressed: &[Finding],
    stale: &[StaleEntry],
    scanned: usize,
) -> String {
    let clean = findings.is_empty() && stale.is_empty();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"clean\": {clean},\n"));
    out.push_str(&format!("  \"files_scanned\": {scanned},\n"));
    for (key, list) in [("findings", findings), ("suppressed", suppressed)] {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, f) in list.iter().enumerate() {
            let comma = if i + 1 < list.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", finding_json(f)));
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"stale_allow_entries\": [\n");
    for (i, s) in stale.iter().enumerate() {
        let comma = if i + 1 < stale.len() { "," } else { "" };
        out.push_str(&format!("    {}{comma}\n", stale_json(s)));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::AllowEntry;

    fn finding() -> Finding {
        Finding {
            lint: "no-panic",
            path: "crates/core/src/a.rs".to_string(),
            line: 3,
            message: "say \"no\"\tplease".to_string(),
            snippet: "x.unwrap()".to_string(),
        }
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_is_schema_versioned_and_order_preserving() {
        let a = finding();
        let mut b = finding();
        b.line = 9;
        let out = json_report(&[a, b], &[], &[], 42);
        assert!(out.contains("\"schema\": \"adamel-check/v1\""));
        assert!(out.contains("\"clean\": false"));
        assert!(out.contains("\"files_scanned\": 42"));
        let first = out.find("\"line\":3").expect("first finding present");
        let second = out.find("\"line\":9").expect("second finding present");
        assert!(first < second, "serialization preserves input order");
        assert!(out.contains("say \\\"no\\\"\\tplease"));
    }

    #[test]
    fn stale_entries_serialize_their_shadow() {
        let entry = AllowEntry {
            lint: Some("no-panic".to_string()),
            path: "crates/core/src/a.rs".to_string(),
            snippet: "unwrap".to_string(),
            reason: "dup".to_string(),
            line: 7,
        };
        let stale = StaleEntry {
            entry,
            shadowed_by: Some((2, "no-panic".to_string(), "crates/core/src/a.rs".to_string(), 3)),
        };
        let out = json_report(&[], &[], &[stale], 1);
        assert!(out.contains("\"allow_line\":7"));
        assert!(out.contains("\"shadowed_by\":{\"allow_line\":2"));
        assert!(out.contains("\"clean\": false"), "stale entries are not clean");
    }
}
