//! A lightweight Rust lexer — just enough to drive the project lints.
//!
//! The workspace builds offline, so pulling a real parser (`syn`,
//! `proc-macro2`) is not an option; this mirrors the `compat/` approach of
//! implementing exactly the surface the repo needs. The lexer produces a
//! flat token stream with line numbers and *discards* comments, string
//! contents, and char literals, which is what makes the lints immune to
//! `// x.unwrap()` in a comment or `"panic!"` in a message string. It is
//! not a parser: the lints work on token patterns plus brace matching.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000`).
    Int,
    /// Float literal (`0.0`, `1e-7`, `2.5f32`).
    Float,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operator, with maximal munch for the multi-char
    /// operators the lints care about (`::`, `==`, `!=`, ...).
    Punct,
}

/// One lexeme with its source line (1-based) and byte span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// The lexeme text. Empty for `Str`/`Char` (contents are irrelevant to
    /// the lints and dropping them avoids false positives); the byte span
    /// still covers the full literal, so `src[start..end]` recovers it.
    pub text: String,
    /// 1-based line where the lexeme starts.
    pub line: usize,
    /// Byte offset of the first byte of the lexeme in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the lexeme.
    pub end: usize,
}

impl Token {
    fn new(kind: TokKind, text: impl Into<String>, line: usize) -> Self {
        Self { kind, text: text.into(), line, start: 0, end: 0 }
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-char operators, longest first so maximal munch works by prefix
/// testing. Only operators that change lint behavior need to merge; merging
/// the rest anyway keeps the stream close to rustc's.
const OPS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    byte: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            self.byte += c.len_utf8();
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

/// Tokenizes Rust source. Unterminated constructs (string, comment) consume
/// to end of input rather than erroring: the lints prefer a best-effort
/// stream over rejecting a file rustc itself would reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { chars: src.chars().collect(), i: 0, line: 1, byte: 0 };
    let mut out = Vec::new();

    fn spanned(mut t: Token, start: usize, end: usize) -> Token {
        t.start = start;
        t.end = end;
        t
    }

    while let Some(c) = cur.peek(0) {
        let sb = cur.byte;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Strings.
        if c == '"' {
            let line = cur.line;
            cur.bump();
            scan_string_body(&mut cur);
            out.push(spanned(Token::new(TokKind::Str, "", line), sb, cur.byte));
            continue;
        }
        // Lifetimes and char literals.
        if c == '\'' {
            let line = cur.line;
            // 'a, 'static (lifetime) vs 'a' / '\n' (char literal): a
            // lifetime is a quote + identifier *not* followed by a closing
            // quote.
            let one = cur.peek(1);
            let two = cur.peek(2);
            let is_lifetime =
                one.is_some_and(is_ident_start) && two != Some('\'') || one == Some('_');
            if is_lifetime {
                cur.bump();
                let mut text = String::from("'");
                while cur.peek(0).is_some_and(is_ident_continue) {
                    text.push(cur.bump().unwrap_or('_'));
                }
                out.push(spanned(Token::new(TokKind::Lifetime, text, line), sb, cur.byte));
            } else {
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c == '\\' {
                        cur.bump();
                        cur.bump();
                        continue;
                    }
                    cur.bump();
                    if c == '\'' {
                        break;
                    }
                }
                out.push(spanned(Token::new(TokKind::Char, "", line), sb, cur.byte));
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let line = cur.line;
            let (text, kind) = scan_number(&mut cur);
            out.push(spanned(Token::new(kind, text, line), sb, cur.byte));
            continue;
        }
        // Identifiers — including the raw-string / byte-string prefixes.
        if is_ident_start(c) {
            let line = cur.line;
            let mut text = String::new();
            while cur.peek(0).is_some_and(is_ident_continue) {
                text.push(cur.bump().unwrap_or('_'));
            }
            // r"..." / r#"..."# / b"..." / br#"..."# are strings, not idents.
            if matches!(text.as_str(), "r" | "b" | "br" | "rb") && scan_raw_string(&mut cur) {
                out.push(spanned(Token::new(TokKind::Str, "", line), sb, cur.byte));
            } else {
                out.push(spanned(Token::new(TokKind::Ident, text, line), sb, cur.byte));
            }
            continue;
        }
        // Punctuation with maximal munch.
        let line = cur.line;
        let mut matched = None;
        for op in OPS {
            if op.chars().enumerate().all(|(k, oc)| cur.peek(k) == Some(oc)) {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.push(spanned(Token::new(TokKind::Punct, op, line), sb, cur.byte));
        } else {
            cur.bump();
            out.push(spanned(Token::new(TokKind::Punct, c.to_string(), line), sb, cur.byte));
        }
    }
    out
}

/// Consumes a `"..."` body (opening quote already consumed).
fn scan_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        cur.bump();
        if c == '"' {
            break;
        }
    }
}

/// After a `r`/`b`/`br`/`rb` identifier, consumes a raw/byte string if one
/// follows. Returns false (consuming nothing) for plain identifiers and raw
/// identifiers like `r#match`.
fn scan_raw_string(cur: &mut Cursor) -> bool {
    match cur.peek(0) {
        Some('"') => {
            cur.bump();
            scan_string_body(cur);
            true
        }
        Some('#') => {
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) != Some('"') {
                return false; // raw identifier like r#match
            }
            for _ in 0..=hashes {
                cur.bump();
            }
            // Scan until `"` followed by `hashes` hashes.
            while cur.peek(0).is_some() {
                if cur.peek(0) == Some('"') && (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) {
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    return true;
                }
                cur.bump();
            }
            true
        }
        _ => false,
    }
}

/// Scans a numeric literal, deciding int vs float. Handles `0x`/`0b`/`0o`
/// prefixes, `_` separators, `1.5`, `1.` (but not `1..5` or `1.max(2)`),
/// exponents, and `f32`/`f64` suffixes.
fn scan_number(cur: &mut Cursor) -> (String, TokKind) {
    let mut text = String::new();
    let mut float = false;

    let radix_prefix = cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('X') | Some('b') | Some('B') | Some('o'));
    if radix_prefix {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while cur.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            text.push(cur.bump().unwrap_or('0'));
        }
        return (text, TokKind::Int);
    }

    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        text.push(cur.bump().unwrap_or('0'));
    }
    // A `.` continues the literal only when not `..` (range) and not
    // `1.method()` (identifier follows).
    if cur.peek(0) == Some('.')
        && cur.peek(1) != Some('.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        float = true;
        text.push(cur.bump().unwrap_or('.'));
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            text.push(cur.bump().unwrap_or('0'));
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().unwrap_or('0'));
            }
        }
    }
    // Type suffix (f32 / f64 / u8 / usize / ...).
    if cur.peek(0).is_some_and(is_ident_start) {
        let mut suffix = String::new();
        while cur.peek(0).is_some_and(is_ident_continue) {
            suffix.push(cur.bump().unwrap_or('_'));
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
    }
    (text, if float { TokKind::Float } else { TokKind::Int })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds("// x.unwrap()\n/* panic! /* nested */ */ let s = \"y.unwrap()\";");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "s".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Str, "".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let a = r#"x.unwrap()"#; let r#match = 1;"##);
        assert_eq!(toks[3].0, TokKind::Str);
        // r#match lexes as ident `r` + `#` + ident `match` is avoided: the
        // raw-ident path keeps `r` as a plain ident and `#match` follows.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "match"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("0.0")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-7")[0].0, TokKind::Float);
        assert_eq!(kinds("2f32")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokKind::Int);
        let range = kinds("0..5");
        assert_eq!(range[0].0, TokKind::Int);
        assert_eq!(range[1], (TokKind::Punct, "..".into()));
        assert_eq!(range[2].0, TokKind::Int);
        let method = kinds("1.max(2)");
        assert_eq!(method[0].0, TokKind::Int);
        assert_eq!(method[1], (TokKind::Punct, ".".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn multi_char_operators_merge() {
        let toks = kinds("a == b != c :: d");
        let puncts: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }
}
