//! Workspace loading and the function symbol table.
//!
//! [`Workspace`] holds every lexed + item-parsed source file under
//! `crates/*/src` and flattens the item trees into one list of function
//! symbols ([`FnSym`]) with crate / module / self-type provenance —
//! the name index the approximate call graph ([`crate::callgraph`])
//! resolves against.

use crate::lexer::{lex, Token};
use crate::parse::{parse_items, Item, ItemKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw source text.
    pub src: String,
    /// Token stream.
    pub toks: Vec<Token>,
    /// Parsed item tree.
    pub items: Vec<Item>,
    /// Crate directory name under `crates/` (`tensor`, `core`, ...).
    pub crate_name: String,
    /// True for binary sources (`src/bin/**` or `src/main.rs`): their
    /// functions are never public-API roots.
    pub is_bin: bool,
}

/// One function in the workspace.
#[derive(Debug)]
pub struct FnSym {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing impl's self type (last path segment), for methods.
    pub self_type: Option<String>,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Bare `pub` on the `fn` itself.
    pub is_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]` scope.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Signature token range (see [`Item::sig`]).
    pub sig: (usize, usize),
    /// Body brace token range, if the function has a body.
    pub body: Option<(usize, usize)>,
}

/// All parsed sources plus the flattened function table.
#[derive(Debug)]
pub struct Workspace {
    /// Parsed library/binary sources under `crates/*/src`, sorted by path.
    pub files: Vec<SourceFile>,
    /// Every function, in file order.
    pub fns: Vec<FnSym>,
    /// Function ids grouped by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl FnSym {
    /// Human-readable qualified name:
    /// `crate/module::Type::name` (modules joined with `::`).
    pub fn qualified(&self, ws: &Workspace) -> String {
        let mut parts: Vec<&str> = vec![&ws.files[self.file].crate_name];
        parts.extend(self.module.iter().map(String::as_str));
        if let Some(t) = &self.self_type {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

impl Workspace {
    /// Loads and parses every `.rs` file under `<root>/crates/*/src`.
    pub fn load(root: &Path) -> Result<Self, String> {
        let crates_dir = root.join("crates");
        let mut files = Vec::new();
        collect_rs_files(&crates_dir, &mut files)
            .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
        files.sort();
        let mut sources = Vec::new();
        for file in files {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            if !rel.contains("/src/") {
                continue; // integration tests and fixtures are not analyzed
            }
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            sources.push((rel, src));
        }
        Ok(Self::from_sources(sources))
    }

    /// Builds a workspace from `(workspace-relative path, source)` pairs —
    /// the in-memory entry point the fixture tests use.
    pub fn from_sources(sources: Vec<(String, String)>) -> Self {
        let mut files = Vec::new();
        for (path, src) in sources {
            let toks = lex(&src);
            let items = parse_items(&toks);
            let crate_name = path
                .strip_prefix("crates/")
                .and_then(|p| p.split('/').next())
                .unwrap_or("")
                .to_string();
            let is_bin = path.contains("/src/bin/") || path.ends_with("/src/main.rs");
            files.push(SourceFile { path, src, toks, items, crate_name, is_bin });
        }
        let mut ws = Workspace { files, fns: Vec::new(), by_name: BTreeMap::new() };
        for fi in 0..ws.files.len() {
            let module = file_module_path(&ws.files[fi].path);
            let items = std::mem::take(&mut ws.files[fi].items);
            for item in &items {
                collect_fns(&mut ws, fi, item, &module, None);
            }
            ws.files[fi].items = items;
        }
        for (id, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(id);
        }
        ws
    }

    /// The source line (trimmed) a finding at `line` in `file` should carry
    /// as its snippet.
    pub fn snippet(&self, file: usize, line: usize) -> String {
        self.files[file].src.lines().nth(line.saturating_sub(1)).unwrap_or("").trim().to_string()
    }
}

/// Module path implied by the file's location under `src/`: `lib.rs`,
/// `main.rs`, and `mod.rs` name the enclosing directory chain; any other
/// file appends its stem.
fn file_module_path(path: &str) -> Vec<String> {
    let Some(idx) = path.find("/src/") else { return Vec::new() };
    let tail = &path[idx + 5..];
    let mut parts: Vec<String> = tail.split('/').map(str::to_string).collect();
    let last = parts.pop().unwrap_or_default();
    let stem = last.strip_suffix(".rs").unwrap_or(&last);
    if !matches!(stem, "lib" | "main" | "mod") {
        parts.push(stem.to_string());
    }
    parts
}

fn collect_fns(ws: &mut Workspace, file: usize, item: &Item, module: &[String], ty: Option<&str>) {
    match item.kind {
        ItemKind::Fn => ws.fns.push(FnSym {
            file,
            name: item.name.clone(),
            self_type: ty.map(str::to_string),
            module: module.to_vec(),
            is_pub: item.is_pub,
            is_test: item.is_test,
            line: item.line,
            sig: item.sig,
            body: item.body,
        }),
        ItemKind::Mod => {
            let mut inner = module.to_vec();
            inner.push(item.name.clone());
            for child in &item.children {
                collect_fns(ws, file, child, &inner, None);
            }
        }
        ItemKind::Impl => {
            for child in &item.children {
                collect_fns(ws, file, child, module, Some(&item.name));
            }
        }
        ItemKind::Trait => {
            for child in &item.children {
                collect_fns(ws, file, child, module, Some(&item.name));
            }
        }
    }
}

/// Recursively collects `.rs` files, skipping build output and hidden dirs.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect())
    }

    #[test]
    fn symbols_carry_crate_module_and_type() {
        let ws = ws(&[
            ("crates/tensor/src/lib.rs", "pub fn top() {}"),
            (
                "crates/tensor/src/matrix.rs",
                "pub struct Matrix;\nimpl Matrix { pub fn get(&self) {} }\nfn helper() {}",
            ),
        ]);
        assert_eq!(ws.fns.len(), 3);
        let get = &ws.fns[ws.by_name["get"][0]];
        assert_eq!(get.self_type.as_deref(), Some("Matrix"));
        assert_eq!(get.qualified(&ws), "tensor::matrix::Matrix::get");
        let top = &ws.fns[ws.by_name["top"][0]];
        assert_eq!(top.qualified(&ws), "tensor::top");
        assert!(top.is_pub);
        let helper = &ws.fns[ws.by_name["helper"][0]];
        assert!(!helper.is_pub);
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let ws = ws(&[(
            "crates/core/src/train.rs",
            "mod inner { pub fn deep() {} }\n#[cfg(test)]\nmod tests { fn t() {} }",
        )]);
        let deep = &ws.fns[ws.by_name["deep"][0]];
        assert_eq!(deep.module, vec!["train", "inner"]);
        assert!(!deep.is_test);
        let t = &ws.fns[ws.by_name["t"][0]];
        assert!(t.is_test);
    }

    #[test]
    fn bin_sources_are_marked() {
        let ws = ws(&[
            ("crates/bench/src/bin/perfjson.rs", "pub fn tool() {}"),
            ("crates/check/src/main.rs", "fn main() {}"),
            ("crates/core/src/lib.rs", "pub fn lib() {}"),
        ]);
        assert!(ws.files[ws.fns[ws.by_name["tool"][0]].file].is_bin);
        assert!(ws.files[ws.fns[ws.by_name["main"][0]].file].is_bin);
        assert!(!ws.files[ws.fns[ws.by_name["lib"][0]].file].is_bin);
    }
}
