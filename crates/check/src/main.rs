//! `adamel-check`: run the project lints and call-graph passes over the
//! workspace.
//!
//! ```text
//! cargo run -p adamel-check                      # lint the workspace at cwd
//! cargo run -p adamel-check -- <root>            # explicit workspace root
//! cargo run -p adamel-check -- --format json     # machine-readable report
//! ```
//!
//! Exit codes: 0 — clean (possibly with allowlisted findings), 1 — findings
//! remain, 2 — usage or I/O error. Stale allowlist entries are findings too:
//! the allowlist documents *current* deliberate violations, not history.

#![forbid(unsafe_code)]

use adamel_check::lints::{lint_file, Finding};
use adamel_check::symbols::Workspace;
use adamel_check::{allow, callgraph, output, passes};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Output format, selected with `--format`.
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("usage: adamel-check [workspace-root] [--format text|json]");
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "adamel-check: error: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            other => root = PathBuf::from(other),
        }
    }
    match run(&root, &format) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("adamel-check: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(root: &Path, format: &Format) -> Result<bool, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; run from the workspace root or pass it as the first \
             argument",
            root.display()
        ));
    }

    let allow_path = root.join("lint.allow");
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };

    // Token lints: every .rs file under crates/ (scoping is per-lint).
    let mut files = Vec::new();
    adamel_check::symbols::collect_rs_files(&crates_dir, &mut files)
        .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        findings.extend(lint_file(&rel, &src));
    }

    // Call-graph passes: the parsed `crates/*/src` workspace.
    let ws = Workspace::load(root)?;
    let graph = callgraph::build(&ws);
    findings.extend(passes::run_all(&ws, &graph));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.message).cmp(&(&b.path, b.line, b.lint, &b.message))
    });

    let scanned = files.len();
    let (kept, suppressed, stale) = allow::apply(findings, &entries);
    let clean = kept.is_empty() && stale.is_empty();

    match format {
        Format::Json => {
            print!("{}", output::json_report(&kept, &suppressed, &stale, scanned));
        }
        Format::Text => {
            for f in &kept {
                println!("{}:{}: [{}] {}", f.path, f.line, f.lint, f.message);
            }
            for s in &stale {
                let e = &s.entry;
                match &s.shadowed_by {
                    Some((by_line, lint, path, line)) => println!(
                        "lint.allow:{}: [stale-allow] entry for `{}` in {} is redundant: its \
                         last match ([{lint}] {path}:{line}) is claimed by lint.allow:{by_line}; \
                         remove it",
                        e.line,
                        e.scope(),
                        e.path
                    ),
                    None => println!(
                        "lint.allow:{}: [stale-allow] entry for `{}` in {} matches nothing; \
                         remove it",
                        e.line,
                        e.scope(),
                        e.path
                    ),
                }
            }
            println!(
                "adamel-check: {} file(s) scanned, {} finding(s), {} allowlisted, {} stale allow \
                 entr{} — {}",
                scanned,
                kept.len(),
                suppressed.len(),
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" },
                if clean { "clean" } else { "FAILED" }
            );
        }
    }
    Ok(clean)
}
