//! `adamel-check`: run the project lints over the workspace.
//!
//! ```text
//! cargo run -p adamel-check            # lint the workspace rooted at cwd
//! cargo run -p adamel-check -- <root>  # lint an explicit workspace root
//! ```
//!
//! Exit codes: 0 — clean (possibly with allowlisted findings), 1 — findings
//! remain, 2 — usage or I/O error. Stale allowlist entries are findings too:
//! the allowlist documents *current* deliberate violations, not history.

#![forbid(unsafe_code)]

use adamel_check::allow;
use adamel_check::lints::{lint_file, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) if arg == "--help" || arg == "-h" => {
            println!("usage: adamel-check [workspace-root]");
            return ExitCode::SUCCESS;
        }
        Some(arg) => PathBuf::from(arg),
        None => PathBuf::from("."),
    };
    match run(&root) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("adamel-check: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(root: &Path) -> Result<bool, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory; run from the workspace root or pass it as the first \
             argument",
            root.display()
        ));
    }

    let allow_path = root.join("lint.allow");
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };

    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)
        .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        findings.extend(lint_file(&rel, &src));
    }

    let scanned = files.len();
    let (kept, suppressed, unused) = allow::apply(findings, &entries);

    for f in &kept {
        println!("{}:{}: [{}] {}", f.path, f.line, f.lint, f.message);
    }
    for e in &unused {
        println!(
            "lint.allow:{}: [stale-allow] entry for `{}` in {} matches nothing; remove it",
            e.line, e.lint, e.path
        );
    }

    let clean = kept.is_empty() && unused.is_empty();
    println!(
        "adamel-check: {} file(s) scanned, {} finding(s), {} allowlisted, {} stale allow \
         entr{} — {}",
        scanned,
        kept.len(),
        suppressed.len(),
        unused.len(),
        if unused.len() == 1 { "y" } else { "ies" },
        if clean { "clean" } else { "FAILED" }
    );
    Ok(clean)
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
