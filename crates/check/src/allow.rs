//! Allowlist for deliberate lint violations.
//!
//! Format (`lint.allow` at the workspace root): one entry per line,
//! four `|`-separated fields — lint id, workspace-relative path, a snippet
//! the offending source line must contain, and a non-empty reason:
//!
//! ```text
//! # comment
//! no-float-eq | crates/tensor/src/matrix.rs | a_ip == 0.0 | bit-exact sparsity skip
//! ```
//!
//! Snippet matching (rather than line numbers) keeps entries stable under
//! unrelated edits; the reason is mandatory so every suppression documents
//! *why* the rule does not apply. Entries that match nothing are reported so
//! the file cannot rot.

use crate::lints::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Lint id this entry suppresses.
    pub lint: String,
    /// Workspace-relative path the finding must be in.
    pub path: String,
    /// Substring the finding's source line must contain.
    pub snippet: String,
    /// Why this violation is deliberate (mandatory).
    pub reason: String,
    /// Source line in the allowlist file (for diagnostics).
    pub line: usize,
}

impl AllowEntry {
    /// True when this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.lint == f.lint && self.path == f.path && f.snippet.contains(&self.snippet)
    }
}

/// Parses allowlist text. Returns `Err` with a description for malformed
/// lines (wrong field count, empty field, missing reason).
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!(
                "lint.allow:{line}: expected 4 `|`-separated fields \
                 (lint | path | snippet | reason), got {}",
                fields.len()
            ));
        }
        if fields.iter().any(|f| f.is_empty()) {
            return Err(format!(
                "lint.allow:{line}: empty field; every entry needs lint, path, snippet, and a \
                 reason"
            ));
        }
        entries.push(AllowEntry {
            lint: fields[0].to_string(),
            path: fields[1].to_string(),
            snippet: fields[2].to_string(),
            reason: fields[3].to_string(),
            line,
        });
    }
    Ok(entries)
}

/// Splits findings into (kept, suppressed) and returns the entries that
/// matched nothing (stale — reported so the allowlist cannot rot).
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<AllowEntry>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    for f in findings {
        match entries.iter().position(|e| e.matches(&f)) {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => kept.push(f),
        }
    }
    let unused = entries.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();
    (kept, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::lint_file;

    const ENTRY: &str =
        "# a comment\n\nno-panic | crates/core/src/foo.rs | x.unwrap() | documented invariant\n";

    fn findings() -> Vec<Finding> {
        lint_file("crates/core/src/foo.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap() }")
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let entries = parse(ENTRY).expect("entry parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint, "no-panic");
        assert_eq!(entries[0].reason, "documented invariant");
    }

    #[test]
    fn parse_rejects_missing_reason() {
        assert!(parse("no-panic | a.rs | x.unwrap()\n").is_err());
        assert!(parse("no-panic | a.rs | x.unwrap() | \n").is_err());
    }

    #[test]
    fn matching_entry_suppresses_finding() {
        let entries = parse(ENTRY).expect("entry parses");
        let (kept, suppressed, unused) = apply(findings(), &entries);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn wrong_path_or_lint_does_not_suppress() {
        let entries = parse("no-panic | crates/core/src/other.rs | x.unwrap() | wrong file\n")
            .expect("entry parses");
        let (kept, suppressed, unused) = apply(findings(), &entries);
        assert_eq!(kept.len(), 1);
        assert!(suppressed.is_empty());
        assert_eq!(unused.len(), 1, "stale entry must be reported");
    }
}
